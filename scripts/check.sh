#!/usr/bin/env bash
# Full local gate: build, tests, lints, bench smoke, fault matrix, and
# the CLI smoke suites.  Run from anywhere.
#
#   CHRONOS_SKIP_BENCH=1 scripts/check.sh    # skip the criterion smoke
#
# Every workdir is a mktemp -d cleaned up on any exit path, and every
# batch heredoc's exit code is checked — the CLI exits non-zero when a
# statement fails, so a broken script can't pass silently.
set -euo pipefail
cd "$(dirname "$0")/.."

workdirs=()
cleanup() {
  if [ "${#workdirs[@]}" -gt 0 ]; then
    rm -rf "${workdirs[@]}"
  fi
}
trap cleanup EXIT
die() {
  echo "$1" >&2
  shift
  for extra in "$@"; do echo "$extra"; done
  exit 1
}

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> proptest regressions policy (counterexamples must be committed)"
if [ -n "$(git status --porcelain -- '*.proptest-regressions' 2>/dev/null)" ]; then
  git status --porcelain -- '*.proptest-regressions'
  die "proptest found new counterexamples: commit the *.proptest-regressions files"
fi

if [ "${CHRONOS_SKIP_BENCH:-0}" = "1" ]; then
  echo "==> bench smoke skipped (CHRONOS_SKIP_BENCH=1)"
else
  echo "==> bench smoke (cargo bench -p chronos-bench -- --test)"
  cargo bench -p chronos-bench --offline -- --test
fi

echo "==> fault matrix (every crash site: workload -> crash -> recover -> verify)"
EXPERIMENTS_ONLY=faults ./target/release/experiments \
  || die "fault matrix failed"

echo "==> observability smoke (explain per relation class + overhead budget)"
# One explain per relation class through the CLI; the span tree must
# name the tquel and storage layers for each.
explain_out=$(./target/release/chronos --batch <<'EOF'
create s_rel (name = str, rank = str) as static
create r_rel (name = str, rank = str) as rollback
create h_rel (name = str, rank = str) as historical
create t_rel (name = str, rank = str) as temporal

append to s_rel (name = "Merrie", rank = "full")

append to r_rel (name = "Merrie", rank = "full")

append to h_rel (name = "Merrie", rank = "full")

append to t_rel (name = "Merrie", rank = "full")

range of s is s_rel
range of r is r_rel
range of h is h_rel
range of t is t_rel

explain retrieve (s.rank)

explain retrieve (r.rank)

explain retrieve (h.rank)

explain retrieve (t.rank)

profile select (t.rank) where t.name = "Merrie"
EOF
) || die "explain smoke: batch script failed"
[ "$(grep -c 'tquel/exec' <<<"$explain_out")" -eq 5 ] \
  || die "explain smoke: expected 5 span trees" "$explain_out"
grep -q 'storage/scan' <<<"$explain_out" \
  || die "explain smoke: storage span missing" "$explain_out"
grep -q 'counters:' <<<"$explain_out" \
  || die "explain smoke: counter line missing" "$explain_out"
# T9 asserts the disabled recorder stays within the <5% overhead budget;
# T10 does the same for the slow-query wrapper and measures /metrics
# scrape latency under load; T11 for the background stats sampler on
# the timeslice workload; T13 for tracing + pipeline telemetry under
# 8-writer group-commit load; T14 for query fingerprinting + analyze on
# a read-dominant workload.  Running all five keeps every section of
# BENCH_observability.json fresh (the writer emits the whole file).
t9_out=$(EXPERIMENTS_ONLY=T9,T10,T11,T13,T14 ./target/release/experiments) \
  || die "observability experiments failed"
[ "$(grep -c 'within budget' <<<"$t9_out")" -eq 5 ] \
  || die "observability overhead budget exceeded" "$t9_out"

echo "==> operational surface smoke (/healthz + /metrics over raw TCP)"
obs_dir=$(mktemp -d)
workdirs+=("$obs_dir")
obs_out=$(./target/release/chronos --batch --obs-addr 127.0.0.1:0 \
            --slow-threshold-ns 0 "$obs_dir/db" <<'EOF'
create faculty (name = str, rank = str) as temporal

append to faculty (name = "Merrie", rank = "associate")

\sample
\obs /healthz
\obs /metrics
\obs /slow
\obs /sessions
\obs /wal
\obs /storage
\obs /readyz
\slow
\sessions
\q
EOF
) || die "obs smoke: batch script failed"
grep -q '^200 /healthz' <<<"$obs_out" \
  || die "obs smoke: /healthz not 200" "$obs_out"
grep -q '^200 /metrics' <<<"$obs_out" \
  || die "obs smoke: /metrics not 200" "$obs_out"
grep -q '^200 /slow' <<<"$obs_out" \
  || die "obs smoke: /slow not 200" "$obs_out"
grep -q '^200 /sessions' <<<"$obs_out" \
  || die "obs smoke: /sessions not 200" "$obs_out"
grep -q '"sessions"' <<<"$obs_out" \
  || die "obs smoke: /sessions body missing the sessions list" "$obs_out"
grep -q '^200 /wal' <<<"$obs_out" \
  || die "obs smoke: /wal not 200" "$obs_out"
grep -q '"stat": "frames"' <<<"$obs_out" \
  || die "obs smoke: /wal body missing the frame stats" "$obs_out"
grep -q '^200 /storage' <<<"$obs_out" \
  || die "obs smoke: /storage not 200" "$obs_out"
grep -q '"relation": "faculty"' <<<"$obs_out" \
  || die "obs smoke: /storage body missing the faculty row" "$obs_out"
grep -q '^200 /readyz' <<<"$obs_out" \
  || die "obs smoke: /readyz not 200" "$obs_out"
grep -q 'no live sessions\|idle' <<<"$obs_out" \
  || die "obs smoke: \\sessions produced nothing" "$obs_out"
grep -q 'chronos_wal_appends 1' <<<"$obs_out" \
  || die "obs smoke: scrape missing live counters" "$obs_out"
grep -q 'session/statement' <<<"$obs_out" \
  || die "obs smoke: slow log missing span tree" "$obs_out"
# The event journal the run produced must be well-formed JSONL.
./target/release/chronos --check-jsonl "$obs_dir/db/events.jsonl" \
  || die "obs smoke: events.jsonl malformed"

echo "==> temporal introspection smoke (sys\$stats via TQuel + /history)"
intro_dir=$(mktemp -d)
workdirs+=("$intro_dir")
intro_out=$(./target/release/chronos --batch --obs-addr 127.0.0.1:0 \
              --sample-interval-ms 20 "$intro_dir/db" <<'EOF'
\advance 01/01/80
create faculty (name = str, rank = str) as temporal

append to faculty (name = "Merrie", rank = "associate")

\sample
range of s is sys$stats
retrieve (s.metric, s.value) where s.metric = "commits"

range of r is sys$relations
retrieve (r.name, r.class, r.tuples)

\top
\obs /stats
\obs /history?metric=commits&n=8
\obs /events?n=16
\obs /readyz
\q
EOF
) || die "introspection smoke: batch script failed"
grep -q 'commits | 1' <<<"$intro_out" \
  || die "introspection smoke: sys\$stats missing the commit sample" "$intro_out"
grep -q 'faculty | temporal' <<<"$intro_out" \
  || die "introspection smoke: sys\$relations missing the catalog row" "$intro_out"
grep -q 'top operators' <<<"$intro_out" \
  || die "introspection smoke: \\top produced nothing" "$intro_out"
grep -q '200 /stats' <<<"$intro_out" \
  || die "introspection smoke: /stats not 200" "$intro_out"
grep -q '"telemetry"' <<<"$intro_out" \
  || die "introspection smoke: /stats missing telemetry section" "$intro_out"
grep -q '200 /history' <<<"$intro_out" \
  || die "introspection smoke: /history not 200" "$intro_out"
grep -q '"metric": "commits"' <<<"$intro_out" \
  || die "introspection smoke: /history body wrong" "$intro_out"
grep -q '200 /events' <<<"$intro_out" \
  || die "introspection smoke: /events not 200" "$intro_out"
grep -q '"sampler_running": true' <<<"$intro_out" \
  || die "introspection smoke: /readyz missing sampler flag" "$intro_out"
# The /stats and /history bodies must be well-formed JSON; reuse the
# JSONL validator by extracting each body onto one line.
grep -A1 '^200 /stats' <<<"$intro_out" | tail -1 > "$intro_dir/bodies.jsonl"
grep -A1 '^200 /history' <<<"$intro_out" | tail -1 >> "$intro_dir/bodies.jsonl"
./target/release/chronos --check-jsonl "$intro_dir/bodies.jsonl" \
  || die "introspection smoke: HTTP bodies malformed"
# The run's journal records the sampler lifecycle.
grep -q 'sampler_start' "$intro_dir/db/events.jsonl" \
  || die "introspection smoke: sampler_start not journaled"

echo "==> workload analytics smoke (analyze / sys\$tablestats / sys\$queries / --stats-json)"
wa_dir=$(mktemp -d)
workdirs+=("$wa_dir")
wa_out=$(./target/release/chronos --batch --obs-addr 127.0.0.1:0 "$wa_dir/db" <<'EOF'
\advance 01/01/80
create faculty (name = str, rank = str) as temporal

append to faculty (name = "Merrie", rank = "associate")

append to faculty (name = "Tom", rank = "assistant")

range of f is faculty
retrieve (f.rank) where f.name = "Merrie"

retrieve (f.rank) where f.name = "Tom"

analyze faculty

range of ts is sys$tablestats
retrieve (ts.stat, ts.value) where ts.relation = "faculty" and ts.stat = "versions"

range of q is sys$queries
retrieve (q.statement, q.calls) where q.kind = "retrieve"

\top
\obs /queries
\q
EOF
) || die "analytics smoke: batch script failed"
grep -q 'analyzed faculty' <<<"$wa_out" \
  || die "analytics smoke: analyze produced no confirmation" "$wa_out"
grep -q 'versions | 2' <<<"$wa_out" \
  || die "analytics smoke: sys\$tablestats missing the versions stat" "$wa_out"
# Two literal variations of the same retrieve shape: one fingerprint,
# two calls, literals normalized to "?".
grep -Eq 'f\.name = "\?" *\| 2' <<<"$wa_out" \
  || die "analytics smoke: fingerprint dedup failed" "$wa_out"
grep -q '200 /queries' <<<"$wa_out" \
  || die "analytics smoke: /queries not 200" "$wa_out"
grep -q '"queries"' <<<"$wa_out" \
  || die "analytics smoke: /queries body missing the queries list" "$wa_out"
grep -q 'workload fingerprints' <<<"$wa_out" \
  || die "analytics smoke: \\top missing the fingerprint section" "$wa_out"
# --stats-json: one engine-stats snapshot on stdout, well-formed JSON.
./target/release/chronos --stats-json "$wa_dir/db" > "$wa_dir/stats.json" \
  || die "analytics smoke: --stats-json failed"
./target/release/chronos --check-jsonl "$wa_dir/stats.json" \
  || die "analytics smoke: --stats-json output malformed"
grep -q '"metrics"' "$wa_dir/stats.json" \
  || die "analytics smoke: --stats-json missing the metrics section"

echo "==> TQuel service smoke (--serve / --connect over loopback)"
svc_dir=$(mktemp -d)
workdirs+=("$svc_dir")
svc_log="$svc_dir/serve.log"
# Hold the serving shell's stdin open on a fifo so it idles while the
# client runs; closing fd 9 later gives it EOF and a clean shutdown.
mkfifo "$svc_dir/stdin"
./target/release/chronos --batch --serve 127.0.0.1:0 --obs-addr 127.0.0.1:0 \
  --slow-threshold-ns 0 "$svc_dir/db" \
  < "$svc_dir/stdin" > "$svc_log" 2>&1 &
svc_pid=$!
exec 9> "$svc_dir/stdin"
svc_addr=""
for _ in $(seq 1 100); do
  svc_addr=$(sed -n 's/.*TQuel service at \([0-9.:]*\).*/\1/p' "$svc_log" | head -1)
  [ -n "$svc_addr" ] && break
  sleep 0.1
done
[ -n "$svc_addr" ] || die "service smoke: server never announced its address" "$(cat "$svc_log")"
svc_obs=$(sed -n 's|.*observability at http://\([0-9.:]*\)/.*|\1|p' "$svc_log" | head -1)
[ -n "$svc_obs" ] || die "service smoke: server never announced its exporter" "$(cat "$svc_log")"
connect_out=$(./target/release/chronos --batch --connect "$svc_addr" <<'EOF'
create faculty (name = str, rank = str) as temporal

append to faculty (name = "Merrie", rank = "associate")

range of f is faculty
retrieve (f.name, f.rank)
EOF
) || die "service smoke: --connect batch replay failed" "$connect_out"
grep -q 'Merrie' <<<"$connect_out" \
  || die "service smoke: remote retrieve missing the committed row" "$connect_out"
# End-to-end trace correlation: a client-chosen trace id must come back
# in the response AND show up in the server's slow-query log, live
# session registry, and events journal.
traced_out=$(./target/release/chronos --batch --connect "$svc_addr" \
               --trace-id tr-check-1 2>&1 <<'EOF'
range of f is faculty
retrieve (f.name, f.rank)
EOF
) || die "service smoke: traced --connect replay failed" "$traced_out"
grep -q '\[trace tr-check-1\]' <<<"$traced_out" \
  || die "service smoke: response did not echo the client trace id" "$traced_out"
slow_body=$(./target/release/chronos --get "$svc_obs" /slow) \
  || die "service smoke: GET /slow failed"
grep -q 'tr-check-1' <<<"$slow_body" \
  || die "service smoke: trace id missing from the slow-query log" "$slow_body"
sessions_body=$(./target/release/chronos --get "$svc_obs" /sessions) \
  || die "service smoke: GET /sessions failed"
grep -q '"sessions"' <<<"$sessions_body" \
  || die "service smoke: /sessions body missing the sessions list" "$sessions_body"
# A statement error over the wire must exit non-zero, like local batch.
if echo 'retrieve (zzz.name)' | ./target/release/chronos --batch --connect "$svc_addr" >/dev/null 2>&1; then
  die "service smoke: remote statement error did not exit non-zero"
fi
exec 9>&-
wait "$svc_pid" || die "service smoke: serving shell exited non-zero" "$(cat "$svc_log")"
# The commit arrived over the wire but must be durably on disk.
svc_rows=$(./target/release/chronos --batch "$svc_dir/db" <<'EOF'
range of f is faculty
retrieve (f.name, f.rank)
EOF
) || die "service smoke: reopening the served database failed"
grep -q 'Merrie' <<<"$svc_rows" \
  || die "service smoke: remote commit not durable after shutdown" "$svc_rows"
# The traced statement's slow_query event was journaled with its id.
grep -q 'tr-check-1' "$svc_dir/db/events.jsonl" \
  || die "service smoke: trace id missing from the events journal"

echo "==> negative checks (deliberate corruption must be caught)"
neg_dir=$(mktemp -d)
workdirs+=("$neg_dir")
# Build a small durable database to corrupt.
./target/release/chronos --batch "$neg_dir/db" >/dev/null <<'EOF'
\advance 01/01/80
create faculty (name = str, rank = str) as temporal

append to faculty (name = "Merrie", rank = "associate")

append to faculty (name = "Tom", rank = "assistant")
EOF
# 1. A statement error in batch mode exits non-zero.
if echo 'append to nosuch (x = "y")' | ./target/release/chronos --batch >/dev/null 2>&1; then
  die "negative: batch statement error did not exit non-zero"
fi
# 2. A corrupted catalog refuses to open (checksums are load-bearing).
printf '\xAA' >> "$neg_dir/db/catalog"
if ./target/release/chronos --batch "$neg_dir/db" </dev/null >/dev/null 2>&1; then
  die "negative: corrupted catalog opened cleanly"
fi
# Undo the catalog damage for the WAL check below.
rm -rf "$neg_dir/db"
./target/release/chronos --batch "$neg_dir/db" >/dev/null <<'EOF'
\advance 01/01/80
create faculty (name = str, rank = str) as temporal

append to faculty (name = "Merrie", rank = "associate")

append to faculty (name = "Tom", rank = "assistant")
EOF
# 3. The offline doctor passes a clean database (exit 0, clean verdict)
#    without touching it.
inspect_out=$(./target/release/chronos --inspect "$neg_dir/db") \
  || die "inspect smoke: clean database did not inspect clean" "$inspect_out"
grep -q 'verdict: clean' <<<"$inspect_out" \
  || die "inspect smoke: clean verdict missing" "$inspect_out"
./target/release/chronos --inspect-json "$neg_dir/db" | grep -q '"tail": "clean"' \
  || die "inspect smoke: JSONL dump missing the clean tail verdict"
# 4. A torn WAL tail: the doctor diagnoses it (exit 2, offset named,
#    file unmodified), then recovery degrades gracefully AND the
#    degradation is journaled as a wal_truncated event.
wal_len=$(wc -c < "$neg_dir/db/wal")
truncate -s $((wal_len - 3)) "$neg_dir/db/wal"
if inspect_out=$(./target/release/chronos --inspect "$neg_dir/db"); then
  die "inspect smoke: torn WAL inspected clean" "$inspect_out"
fi
grep -q 'torn tail' <<<"$inspect_out" \
  || die "inspect smoke: torn-tail diagnosis missing" "$inspect_out"
grep -q 'at offset' <<<"$inspect_out" \
  || die "inspect smoke: torn-tail offset missing" "$inspect_out"
[ "$(wc -c < "$neg_dir/db/wal")" -eq $((wal_len - 3)) ] \
  || die "inspect smoke: the doctor mutated the WAL"
./target/release/chronos --batch "$neg_dir/db" </dev/null >/dev/null 2>&1 \
  || die "negative: torn WAL tail must degrade gracefully, not fail"
grep -q '"event": "wal_truncated"' "$neg_dir/db/events.jsonl" \
  || die "negative: torn-tail recovery was not journaled"

echo "==> frozen segment smoke (freeze / sys\$pages / --inspect / torn segment)"
seg_dir=$(mktemp -d)
workdirs+=("$seg_dir")
# Replacement churn closes six Merrie versions and one Tom version;
# `freeze` migrates all seven into segments/faculty-0.seg.
seg_out=$(./target/release/chronos --batch "$seg_dir/db" <<'EOF'
\advance 01/01/80
create faculty (name = str, rank = str) as temporal

append to faculty (name = "Merrie", rank = "rank0")

range of f is faculty
replace f (rank = "rank1") where f.name = "Merrie"

replace f (rank = "rank2") where f.name = "Merrie"

replace f (rank = "rank3") where f.name = "Merrie"

replace f (rank = "rank4") where f.name = "Merrie"

replace f (rank = "rank5") where f.name = "Merrie"

replace f (rank = "rank6") where f.name = "Merrie"

append to faculty (name = "Tom", rank = "assistant")

range of g is faculty
delete g where g.name = "Tom"

freeze faculty

retrieve (f.name, f.rank)

retrieve (f.name, f.rank) as of "01/01/80"

range of p is sys$pages
retrieve (p.relation, p.versions, p.dup_factor_x1000) where p.class = "segment"

retrieve (p.relation, p.bytes_disk) where p.relation = "file:segments/faculty-0.seg"
EOF
) || die "segment smoke: batch script failed" "$seg_out"
grep -q 'froze faculty: 7 version(s)' <<<"$seg_out" \
  || die "segment smoke: freeze did not move the 7 closed versions" "$seg_out"
grep -q 'Merrie' <<<"$seg_out" \
  || die "segment smoke: retrieve after freeze lost rows" "$seg_out"
[ -f "$seg_dir/db/segments/faculty-0.seg" ] \
  || die "segment smoke: segment file missing"
# The sys$pages segment row must show near-1.0x duplication — the
# delta codec's whole point (the heap row for the same history sits
# well above it; T16 quantifies both).
seg_dup=$(awk -F'|' '/faculty +\|/ { gsub(/ /, "", $3); print $3 }' <<<"$seg_out" | head -1)
[ -n "$seg_dup" ] || die "segment smoke: sys\$pages segment row missing" "$seg_out"
[ "$seg_dup" -le 1300 ] \
  || die "segment smoke: segment dup_factor_x1000=$seg_dup, want ≤1300 (near 1.0x)" "$seg_out"
grep -q 'file:segments/faculty-0.seg' <<<"$seg_out" \
  || die "segment smoke: sys\$pages missing the segment file pseudo-row" "$seg_out"
# The offline doctor lists and checksum-validates the segment.
inspect_out=$(./target/release/chronos --inspect "$seg_dir/db") \
  || die "segment smoke: clean frozen database did not inspect clean" "$inspect_out"
grep -q 'faculty-0.seg' <<<"$inspect_out" \
  || die "segment smoke: --inspect did not list the segment" "$inspect_out"
grep -q 'crc ok' <<<"$inspect_out" \
  || die "segment smoke: --inspect did not validate the segment checksum" "$inspect_out"
# A torn (bit-flipped) segment must be diagnosed with its byte offset,
# exit code 2 — and recovery must still open fine (segments are a
# rebuildable cache; the heap stays authoritative).
seg_file="$seg_dir/db/segments/faculty-0.seg"
seg_len=$(wc -c < "$seg_file")
printf '\xAA' | dd of="$seg_file" bs=1 seek=$((seg_len / 2)) conv=notrunc 2>/dev/null
if inspect_out=$(./target/release/chronos --inspect "$seg_dir/db"); then
  die "segment smoke: torn segment inspected clean" "$inspect_out"
fi
grep -q 'faculty-0.seg' <<<"$inspect_out" \
  || die "segment smoke: torn-segment diagnosis missing the file" "$inspect_out"
grep -q 'byte offset' <<<"$inspect_out" \
  || die "segment smoke: torn-segment diagnosis missing the offset" "$inspect_out"
seg_rows=$(./target/release/chronos --batch "$seg_dir/db" <<'EOF'
range of f is faculty
retrieve (f.name, f.rank)
EOF
) || die "segment smoke: reopen with a torn segment failed (heap must stay authoritative)"
grep -q 'Merrie' <<<"$seg_rows" \
  || die "segment smoke: rows lost after reopening past a torn segment" "$seg_rows"

echo "==> all checks passed"
