#!/usr/bin/env bash
# Full local gate: build, tests, lints, bench smoke.  Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> bench smoke (cargo bench -p chronos-bench -- --test)"
cargo bench -p chronos-bench --offline -- --test

echo "==> observability smoke (explain per relation class + overhead budget)"
# One explain per relation class through the CLI; the span tree must
# name the tquel and storage layers for each.
explain_out=$(./target/release/chronos --batch <<'EOF'
create s_rel (name = str, rank = str) as static
create r_rel (name = str, rank = str) as rollback
create h_rel (name = str, rank = str) as historical
create t_rel (name = str, rank = str) as temporal

append to s_rel (name = "Merrie", rank = "full")

append to r_rel (name = "Merrie", rank = "full")

append to h_rel (name = "Merrie", rank = "full")

append to t_rel (name = "Merrie", rank = "full")

range of s is s_rel
range of r is r_rel
range of h is h_rel
range of t is t_rel

explain retrieve (s.rank)

explain retrieve (r.rank)

explain retrieve (h.rank)

explain retrieve (t.rank)

profile select (t.rank) where t.name = "Merrie"
EOF
)
[ "$(grep -c 'tquel/exec' <<<"$explain_out")" -eq 5 ] \
  || { echo "explain smoke: expected 5 span trees"; echo "$explain_out"; exit 1; }
grep -q 'storage/scan' <<<"$explain_out" \
  || { echo "explain smoke: storage span missing"; echo "$explain_out"; exit 1; }
grep -q 'counters:' <<<"$explain_out" \
  || { echo "explain smoke: counter line missing"; echo "$explain_out"; exit 1; }
# T9 asserts the disabled recorder stays within the <5% overhead budget;
# T10 does the same for the slow-query wrapper and measures /metrics
# scrape latency under load; T11 for the background stats sampler on
# the timeslice workload.
t9_out=$(EXPERIMENTS_ONLY=T9,T10,T11 ./target/release/experiments)
[ "$(grep -c 'within budget' <<<"$t9_out")" -eq 3 ] \
  || { echo "observability overhead budget exceeded"; echo "$t9_out"; exit 1; }

echo "==> clippy over the obs modules (-D warnings)"
cargo clippy -p chronos-obs --offline -- -D warnings

echo "==> operational surface smoke (/healthz + /metrics over raw TCP)"
obs_dir=$(mktemp -d)
obs_out=$(./target/release/chronos --batch --obs-addr 127.0.0.1:0 \
            --slow-threshold-ns 0 "$obs_dir/db" <<'EOF'
create faculty (name = str, rank = str) as temporal

append to faculty (name = "Merrie", rank = "associate")

\obs /healthz
\obs /metrics
\obs /slow
\obs /readyz
\slow
\q
EOF
)
grep -q '^200 /healthz' <<<"$obs_out" \
  || { echo "obs smoke: /healthz not 200"; echo "$obs_out"; exit 1; }
grep -q '^200 /metrics' <<<"$obs_out" \
  || { echo "obs smoke: /metrics not 200"; echo "$obs_out"; exit 1; }
grep -q '^200 /slow' <<<"$obs_out" \
  || { echo "obs smoke: /slow not 200"; echo "$obs_out"; exit 1; }
grep -q '^200 /readyz' <<<"$obs_out" \
  || { echo "obs smoke: /readyz not 200"; echo "$obs_out"; exit 1; }
grep -q 'chronos_wal_appends 1' <<<"$obs_out" \
  || { echo "obs smoke: scrape missing live counters"; echo "$obs_out"; exit 1; }
grep -q 'session/statement' <<<"$obs_out" \
  || { echo "obs smoke: slow log missing span tree"; echo "$obs_out"; exit 1; }
# The event journal the run produced must be well-formed JSONL.
./target/release/chronos --check-jsonl "$obs_dir/db/events.jsonl" \
  || { echo "obs smoke: events.jsonl malformed"; exit 1; }
rm -rf "$obs_dir"

echo "==> temporal introspection smoke (sys\$stats via TQuel + /history)"
intro_dir=$(mktemp -d)
intro_out=$(./target/release/chronos --batch --obs-addr 127.0.0.1:0 \
              --sample-interval-ms 20 "$intro_dir/db" <<'EOF'
\advance 01/01/80
create faculty (name = str, rank = str) as temporal

append to faculty (name = "Merrie", rank = "associate")

\sample
range of s is sys$stats
retrieve (s.metric, s.value) where s.metric = "commits"

range of r is sys$relations
retrieve (r.name, r.class, r.tuples)

\top
\obs /stats
\obs /history?metric=commits&n=8
\obs /events?n=16
\obs /readyz
\q
EOF
)
grep -q 'commits | 1' <<<"$intro_out" \
  || { echo "introspection smoke: sys\$stats missing the commit sample"; echo "$intro_out"; exit 1; }
grep -q 'faculty | temporal' <<<"$intro_out" \
  || { echo "introspection smoke: sys\$relations missing the catalog row"; echo "$intro_out"; exit 1; }
grep -q 'top operators' <<<"$intro_out" \
  || { echo "introspection smoke: \\top produced nothing"; echo "$intro_out"; exit 1; }
grep -q '200 /stats' <<<"$intro_out" \
  || { echo "introspection smoke: /stats not 200"; echo "$intro_out"; exit 1; }
grep -q '"telemetry"' <<<"$intro_out" \
  || { echo "introspection smoke: /stats missing telemetry section"; echo "$intro_out"; exit 1; }
grep -q '200 /history' <<<"$intro_out" \
  || { echo "introspection smoke: /history not 200"; echo "$intro_out"; exit 1; }
grep -q '"metric": "commits"' <<<"$intro_out" \
  || { echo "introspection smoke: /history body wrong"; echo "$intro_out"; exit 1; }
grep -q '200 /events' <<<"$intro_out" \
  || { echo "introspection smoke: /events not 200"; echo "$intro_out"; exit 1; }
grep -q '"sampler_running": true' <<<"$intro_out" \
  || { echo "introspection smoke: /readyz missing sampler flag"; echo "$intro_out"; exit 1; }
# The /stats and /history bodies must be well-formed JSON; reuse the
# JSONL validator by extracting each body onto one line.
grep -A1 '^200 /stats' <<<"$intro_out" | tail -1 > "$intro_dir/bodies.jsonl"
grep -A1 '^200 /history' <<<"$intro_out" | tail -1 >> "$intro_dir/bodies.jsonl"
./target/release/chronos --check-jsonl "$intro_dir/bodies.jsonl" \
  || { echo "introspection smoke: HTTP bodies malformed"; exit 1; }
# The run's journal records the sampler lifecycle.
grep -q 'sampler_start' "$intro_dir/db/events.jsonl" \
  || { echo "introspection smoke: sampler_start not journaled"; exit 1; }
rm -rf "$intro_dir"

echo "==> all checks passed"
