#!/usr/bin/env bash
# Full local gate: build, tests, lints, bench smoke.  Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> bench smoke (cargo bench -p chronos-bench -- --test)"
cargo bench -p chronos-bench --offline -- --test

echo "==> all checks passed"
