//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crate registry, so the workspace vendors
//! the small API subset it actually uses: `Mutex` and `RwLock` with
//! non-poisoning lock methods (a panicked holder just passes the data
//! on, matching parking_lot's semantics closely enough for our uses).

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion primitive whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
