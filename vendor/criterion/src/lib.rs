//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness with the same source-level API surface
//! the benches use (`benchmark_group`, `bench_with_input`, `iter`,
//! `Throughput`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros). Measurement model: warm up, pick an iteration count that
//! runs ~40 ms, take the best of three samples, and print one line per
//! benchmark. `--test` on the command line (criterion's smoke mode, used
//! by `cargo bench -- --test`) runs every closure exactly once.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut quick = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => quick = true,
                // Flags cargo/criterion pass through that we can ignore.
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { quick, filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        run_one(self.quick, &self.filter, &label, &mut f);
        self
    }

    fn matches(&self, label: &str) -> bool {
        match &self.filter {
            Some(f) => label.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        if self.parent.matches(&label) {
            run_one(self.parent.quick, &None, &label, &mut |b: &mut Bencher| {
                f(b, input)
            });
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        if self.parent.matches(&label) {
            run_one(self.parent.quick, &None, &label, &mut f);
        }
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(quick: bool, filter: &Option<String>, label: &str, f: &mut F) {
    if let Some(flt) = filter {
        if !label.contains(flt.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        quick,
        best_ns_per_iter: f64::INFINITY,
        iters: 0,
    };
    f(&mut b);
    if quick {
        println!("{label}: ok (smoke)");
    } else {
        println!(
            "{label}  time: {:>12.1} ns/iter  ({} iters/sample)",
            b.best_ns_per_iter, b.iters
        );
    }
}

/// Passed to the benchmark closure; `iter` does the measuring.
pub struct Bencher {
    quick: bool,
    best_ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.quick {
            black_box(f());
            self.iters = 1;
            self.best_ns_per_iter = 0.0;
            return;
        }
        // Warm-up + calibration: run until ~5 ms or 1k iters to size the
        // measured batches.
        let cal_start = Instant::now();
        let mut cal_iters = 0u64;
        while cal_start.elapsed().as_millis() < 5 && cal_iters < 1000 {
            black_box(f());
            cal_iters += 1;
        }
        let per_iter = cal_start.elapsed().as_nanos() as f64 / cal_iters as f64;
        let target_ns = 40_000_000.0; // ~40 ms per sample
        let n = ((target_ns / per_iter.max(1.0)) as u64).clamp(1, 10_000_000);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / n as f64;
            if ns < best {
                best = ns;
            }
        }
        self.best_ns_per_iter = best;
        self.iters = n;
    }
}

/// Benchmark identifier: `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Accepted and recorded for API compatibility; not used in output.
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
