//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic `StdRng` (xorshift* seeded through
//! splitmix64) with the `SeedableRng`/`Rng` subset the workload
//! generators use: `seed_from_u64`, `gen_range` over integer ranges,
//! and `gen_bool`. Streams are stable across runs for a given seed,
//! which is all the benchmarks and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (only the `u64` convenience constructor).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator. Not the real `StdRng`
    /// algorithm, but the workspace only needs a stable seeded stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // Splitmix the seed so small seeds diverge immediately.
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}
