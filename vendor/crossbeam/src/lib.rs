//! Offline stand-in for the `crossbeam` crate.
//!
//! The tests only use `crossbeam::scope` with `Scope::spawn`, which
//! maps directly onto `std::thread::scope` (stable since Rust 1.63).
//! Differences from the real crate: a panicking child thread aborts the
//! scope by propagating the panic instead of surfacing it through the
//! returned `Result` — equivalent for test assertions.

pub mod thread {
    /// Scoped-thread handle mirroring `crossbeam_utils::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from the enclosing scope. The
        /// closure receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Run `f` with a scope whose spawned threads are all joined before
    /// this returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;
