//! Offline stand-in for the `bytes` crate.
//!
//! Implements only what the storage layer uses: a `Vec<u8>`-backed
//! `BytesMut` and the `Buf`/`BufMut` little-endian accessors on byte
//! slices. Semantics match the real crate for this subset (reads and
//! writes advance the slice cursor).

use std::ops::{Deref, DerefMut};

/// A growable, mutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut {
            inner: vec![0; len],
        }
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.inner.resize(new_len, value);
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> BytesMut {
        BytesMut { inner }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

/// Sequential little-endian reads from a byte source, advancing past
/// what was read. Panics when the source is too short, like the real
/// crate.
pub trait Buf {
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes(head.try_into().expect("two bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("four bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("eight bytes"))
    }
}

/// Sequential little-endian writes into a byte sink, advancing past
/// what was written.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for &mut [u8] {
    fn put_u8(&mut self, v: u8) {
        let (head, rest) = std::mem::take(self).split_at_mut(1);
        head[0] = v;
        *self = rest;
    }

    fn put_u16_le(&mut self, v: u16) {
        let (head, rest) = std::mem::take(self).split_at_mut(2);
        head.copy_from_slice(&v.to_le_bytes());
        *self = rest;
    }

    fn put_u32_le(&mut self, v: u32) {
        let (head, rest) = std::mem::take(self).split_at_mut(4);
        head.copy_from_slice(&v.to_le_bytes());
        *self = rest;
    }

    fn put_u64_le(&mut self, v: u64) {
        let (head, rest) = std::mem::take(self).split_at_mut(8);
        head.copy_from_slice(&v.to_le_bytes());
        *self = rest;
    }
}
