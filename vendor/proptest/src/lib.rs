//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this vendored crate
//! implements the API subset the workspace's property tests use, with
//! the same source-level semantics:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_recursive` and `boxed`; strategies for integer ranges,
//!   tuples, `Just`, and simple character-class regex string patterns;
//! * `any::<T>()` for the primitive types the tests draw from;
//! * `prop::collection::{vec, hash_set}`, `prop::option::of`,
//!   `prop::sample::Index`;
//! * the `proptest!`, `prop_oneof!` (weighted and unweighted),
//!   `prop_compose!`, `prop_assert!`, `prop_assert_eq!` and
//!   `prop_assert_ne!` macros; `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: generation is a deterministic
//! splitmix64 stream seeded per test (override with `PROPTEST_SEED`),
//! and failing cases are reported without shrinking.

pub mod test_runner {
    use std::fmt;

    /// Deterministic generator state threaded through all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// splitmix64 step.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform draw in the inclusive integer interval.
        pub fn int_between(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            let off = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
            lo + off as i128
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }

    /// Failure raised from inside a test case body (via `?` or the
    /// `prop_assert*` macros).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Stable per-test seed: FNV-1a over the test path, mixed with the
    /// optional `PROPTEST_SEED` environment override.
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Something that can produce values of one type from the rng.
    ///
    /// Unlike the real crate there is no value tree: a strategy yields
    /// plain values and failures are not shrunk.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: Into<String>,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason: reason.into(),
                f,
            }
        }

        /// Bounded recursive strategy: `recurse` wraps the strategy for
        /// one nesting level; generation picks a depth in `[0, depth]`.
        /// The size-hint arguments of the real API are accepted and
        /// ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                base: self.boxed(),
                expand: Rc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
        }
    }

    /// Type-erased strategy; cheap to clone.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    pub struct Filter<S, F> {
        source: S,
        reason: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.source.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
        }
    }

    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        expand: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Strategy for Recursive<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(u64::from(self.depth) + 1) as u32;
            let mut s = self.base.clone();
            for _ in 0..levels {
                s = (self.expand)(s);
            }
            s.new_value(rng)
        }
    }

    /// Weighted choice between same-valued strategies; built by
    /// `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.int_between(self.start as i128, self.end as i128 - 1) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.int_between(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    // ----- regex-lite string strategies ------------------------------

    /// One regex atom: a way of drawing a single char.
    enum CharSet {
        Lit(char),
        /// Inclusive ranges; single literals are `(c, c)`.
        Class(Vec<(char, char)>),
        /// `\PC` — any printable character (ASCII subset here).
        Printable,
    }

    struct Quantified {
        set: CharSet,
        min: u32,
        max: u32,
    }

    /// Compile the tiny regex subset used by the tests: literal chars,
    /// escapes, `[...]` classes with ranges, `\PC`, and the `{m,n}`,
    /// `{n}`, `?`, `*`, `+` quantifiers.
    fn compile_pattern(pattern: &str) -> Vec<Quantified> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        // `a-z` range, unless '-' is the class's last char.
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi = if chars[i] == '\\' {
                                i += 1;
                                unescape(chars[i])
                            } else {
                                chars[i]
                            };
                            i += 1;
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // consume ']'
                    CharSet::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    if c == 'P' {
                        assert_eq!(chars[i], 'C', "only \\PC is supported");
                        i += 1;
                        CharSet::Printable
                    } else {
                        CharSet::Lit(unescape(c))
                    }
                }
                c => {
                    i += 1;
                    CharSet::Lit(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        i += 1;
                        let mut m = 0u32;
                        while chars[i].is_ascii_digit() {
                            m = m * 10 + chars[i].to_digit(10).expect("digit");
                            i += 1;
                        }
                        let n = if chars[i] == ',' {
                            i += 1;
                            let mut n = 0u32;
                            while chars[i].is_ascii_digit() {
                                n = n * 10 + chars[i].to_digit(10).expect("digit");
                                i += 1;
                            }
                            n
                        } else {
                            m
                        };
                        assert_eq!(chars[i], '}', "unterminated quantifier in {pattern:?}");
                        i += 1;
                        (m, n)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            out.push(Quantified { set, min, max });
        }
        out
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn sample_char(set: &CharSet, rng: &mut TestRng) -> char {
        match set {
            CharSet::Lit(c) => *c,
            CharSet::Printable => char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable"),
            CharSet::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| u64::from(*hi as u32) - u64::from(*lo as u32) + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = u64::from(*hi as u32) - u64::from(*lo as u32) + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32).expect("class char");
                    }
                    pick -= span;
                }
                unreachable!("spans sum to total")
            }
        }
    }

    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            let atoms = compile_pattern(self);
            let mut out = String::new();
            for q in &atoms {
                let count = q.min + rng.below(u64::from(q.max - q.min) + 1) as u32;
                for _ in 0..count {
                    out.push(sample_char(&q.set, rng));
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "draw anything" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<A>(PhantomData<A>);

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII, occasionally any scalar value.
            if rng.below(4) == 0 {
                loop {
                    if let Some(c) = char::from_u32(rng.next_u64() as u32 & 0x10_FFFF) {
                        return c;
                    }
                }
            }
            char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii")
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(4) {
                // Exact small quarters: friendly to text round-trips.
                0 => (rng.int_between(-40_000, 40_000) as f64) / 4.0,
                1 => 0.0,
                // Any non-NaN bit pattern (NaN breaks `==`-based
                // assertions; the real crate also excludes it by default).
                _ => {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_nan() {
                        -1.5
                    } else {
                        v
                    }
                }
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    pub struct VecOf<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` of values with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecOf<S> {
        assert!(size.start < size.end, "empty size range");
        VecOf { elem, size }
    }

    impl<S: Strategy> Strategy for VecOf<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start
                + rng.below((self.size.end - self.size.start) as u64) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    pub struct HashSetOf<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `HashSet` of distinct values with a size drawn from `size`
    /// (best-effort when the element domain is too small).
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetOf<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetOf { elem, size }
    }

    impl<S> Strategy for HashSetOf<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.start
                + rng.below((self.size.end - self.size.start) as u64) as usize;
            let mut out = HashSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.elem.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionOf<S> {
        inner: S,
    }

    /// `None` a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionOf<S> {
        OptionOf { inner }
    }

    impl<S: Strategy> Strategy for OptionOf<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use
    /// time; `index(len)` maps it uniformly into `[0, len)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };

    /// Namespace mirror of the real crate's `prop` module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

// ----- macros --------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($binding:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategies = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::new($crate::test_runner::seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                ));
                for case in 0..config.cases {
                    let ($($binding,)+) =
                        $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err(e) => {
                            panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e)
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($binding:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($binding,)+)| $body,
            )
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right` (both `{:?}`)",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right` (both `{:?}`): {}",
            left,
            format!($($fmt)*)
        );
    }};
}
