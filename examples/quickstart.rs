//! Quickstart: the paper's `faculty` story, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Creates a temporal (bitemporal) relation, applies the six
//! transactions behind the paper's Figure 8 using TQuel, then asks the
//! paper's four queries — including the flagship pair showing that the
//! database remembers *what it believed and when*.

use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::clock::ManualClock;
use chronos_db::Database;
use chronos_tquel::printer::render;

fn main() {
    // The engine never reads wall time; transactions are stamped from
    // this clock, which we move through the paper's dates.
    let clock = Arc::new(ManualClock::new(date("01/01/77").unwrap()));
    let mut db = Database::in_memory(clock.clone());

    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .expect("create");

    let mut at = |day: &str, stmt: &str| {
        clock.advance_to(date(day).unwrap());
        db.session()
            .run(stmt)
            .unwrap_or_else(|e| panic!("{stmt}: {e}"));
        println!(
            "[{day}] {}",
            stmt.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    };

    // Merrie is hired (recorded a week early — postactive).
    at(
        "08/25/77",
        r#"append to faculty (name = "Merrie", rank = "associate") valid from "09/01/77" to forever"#,
    );
    // Tom is entered as full…
    at(
        "12/01/82",
        r#"append to faculty (name = "Tom", rank = "full") valid from "12/05/82" to forever"#,
    );
    // …and corrected to associate.
    at(
        "12/07/82",
        r#"range of f is faculty
          replace f (rank = "associate") valid from "12/05/82" to forever where f.name = "Tom""#,
    );
    // Merrie's promotion is recorded two weeks late — retroactive.
    at(
        "12/15/82",
        r#"range of f is faculty
          replace f (rank = "full") valid from "12/01/82" to forever where f.name = "Merrie""#,
    );
    // Mike is hired, and later leaves effective 03/01/84.
    at(
        "01/10/83",
        r#"append to faculty (name = "Mike", rank = "assistant") valid from "01/01/83" to forever"#,
    );
    at(
        "02/25/84",
        r#"range of f is faculty
          replace f (rank = "assistant") valid from "01/01/83" to "03/01/84" where f.name = "Mike""#,
    );

    clock.advance_to(date("01/01/85").unwrap());
    let mut q = |title: &str, src: &str| {
        println!("\n--- {title}");
        let result = db.session().query(src).expect("query");
        print!("{}", render(&result));
        result
    };

    q(
        "Current knowledge (historical query): Merrie's rank when Tom arrived",
        r#"range of f1 is faculty
           range of f2 is faculty
           retrieve (f1.rank)
           where f1.name = "Merrie" and f2.name = "Tom"
           when f1 overlap start of f2"#,
    );

    let early = q(
        "What the database believed on 12/10/82 (bitemporal query)",
        r#"range of f1 is faculty
           range of f2 is faculty
           retrieve (f1.rank)
           where f1.name = "Merrie" and f2.name = "Tom"
           when f1 overlap start of f2
           as of "12/10/82""#,
    );
    assert_eq!(early.column_strings(0), ["associate"]);

    let late = q(
        "…and on 12/20/82, after the retroactive correction",
        r#"range of f1 is faculty
           range of f2 is faculty
           retrieve (f1.rank)
           where f1.name = "Merrie" and f2.name = "Tom"
           when f1 overlap start of f2
           as of "12/20/82""#,
    );
    assert_eq!(late.column_strings(0), ["full"]);

    println!(
        "\nThe database was inconsistent with reality from 12/01/82 to 12/15/82 —\n\
         and, being temporal, it can prove it."
    );
}
