//! Trend analysis — "How did the number of faculty change over the last
//! 5 years?" (paper §4.1, the query a static database cannot answer).
//!
//! ```text
//! cargo run --example trend_analysis
//! ```
//!
//! Builds a department's hiring/leaving history in a historical
//! relation, then derives the head-count step function and samples it
//! yearly — plus a salary-budget step function over an integer
//! attribute.

use chronos_algebra::aggregate::{count_over_time, sample, sum_over_time};
use chronos_core::calendar::{date, Date};
use chronos_core::period::Period;
use chronos_core::prelude::*;
use chronos_core::value::Value;

fn main() {
    let schema = Schema::new(vec![
        Attribute::new("name", AttrType::Str),
        Attribute::new("salary", AttrType::Int),
    ])
    .expect("valid schema");
    let mut dept = HistoricalRelation::new(schema, TemporalSignature::Interval);

    let mut serve = |name: &str, salary: i64, from: &str, to: Option<&str>| {
        let validity = match to {
            Some(to) => Period::new(date(from).unwrap(), date(to).unwrap()).unwrap(),
            None => Period::from_start(date(from).unwrap()),
        };
        dept.insert(
            Tuple::new(vec![Value::str(name), Value::Int(salary)]),
            validity,
        )
        .expect("fresh row");
    };

    // A decade of department history.
    serve("Merrie", 4000, "09/01/77", None);
    serve("Tom", 3500, "12/05/82", None);
    serve("Mike", 3000, "01/01/83", Some("03/01/84"));
    serve("Ilsoo", 3200, "08/15/83", None);
    serve("Rick", 3300, "01/15/80", Some("06/30/85"));
    serve("Jane", 3600, "09/01/79", Some("09/01/81"));
    serve("Alex", 2900, "02/01/84", None);

    // Head count over the last five years (1980–1985), sampled yearly.
    let heads = count_over_time(&dept);
    println!("faculty head count, sampled each Jan 1:");
    let series = sample(
        &heads,
        date("01/01/80").unwrap(),
        date("01/01/85").unwrap(),
        365,
    );
    for (t, v) in &series {
        let bar: String = "#".repeat(*v as usize);
        println!("  {}  {:>2}  {}", Date::from_chronon(*t), v, bar);
    }

    // Where were the peaks?
    let window = Period::new(date("01/01/80").unwrap(), date("01/01/85").unwrap()).unwrap();
    println!(
        "\npeak head count in window: {} (min {})",
        heads.max_in(window).unwrap(),
        heads.min_in(window).unwrap()
    );

    // The exact change points, not just samples — a step function knows
    // where it changes.
    println!("\nevery head-count change:");
    for (p, v) in heads.pieces_in(window) {
        println!(
            "  {:>10} .. {:<10}  {v}",
            p.start().to_string(),
            p.end().to_string()
        );
    }

    // Monthly salary budget over time.
    let budget = sum_over_time(&dept, 1).expect("salary is an int attribute");
    println!("\nmonthly salary budget, sampled each Jan 1:");
    for (t, v) in sample(
        &budget,
        date("01/01/80").unwrap(),
        date("01/01/85").unwrap(),
        365,
    ) {
        println!("  {}  ${v}", Date::from_chronon(t));
    }

    // Sanity against point queries.
    // Serving on 06/01/83: Merrie, Tom, Mike, Rick (Ilsoo starts
    // 08/15/83; Jane left 09/01/81; Alex starts 02/01/84).
    assert_eq!(heads.value_at(date("06/01/83").unwrap()), 4);
    assert_eq!(
        budget.value_at(date("06/01/83").unwrap()),
        4000 + 3500 + 3000 + 3300, // the same four
    );
    println!("\n(trend queries require valid time — a static snapshot cannot answer them)");
}
