//! Retroactive salary changes — the paper's §2/§3 motivating example.
//!
//! ```text
//! cargo run --example payroll
//! ```
//!
//! "An example often cited … is a retroactive salary raise, where the
//! time at which the raise was recorded (say, 12/1/83) [differs from]
//! the time at which the raise was to take effect (say, 8/1/83)."
//!
//! Payroll cut checks each month from the salary the database showed *at
//! that time*; after the retroactive raise, the amount owed is computed
//! from what the database *now* knows was true back then.  The
//! difference is the back pay — computable only because the relation is
//! bitemporal.

use std::sync::Arc;

use chronos_core::calendar::{date, Date};
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_db::Database;

fn main() {
    let clock = Arc::new(ManualClock::new(date("01/01/83").unwrap()));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create salary (name = str, monthly = int) as temporal")
        .expect("create");

    let mut at = |day: &str, stmt: &str| {
        clock.advance_to(date(day).unwrap());
        db.session()
            .run(stmt)
            .unwrap_or_else(|e| panic!("{stmt}: {e}"));
    };

    // Merrie's salary is $4,000/month from the start of 1983.
    at(
        "01/01/83",
        r#"append to salary (name = "Merrie", monthly = 4000) valid from "01/01/83" to forever"#,
    );
    // On 12/01/83 a raise to $5,000 is recorded, retroactive to 08/01/83.
    at(
        "12/01/83",
        r#"range of s is salary
          replace s (monthly = 5000) valid from "08/01/83" to forever
          where s.name = "Merrie""#,
    );

    // Payroll ran on the first of each month, paying what the database
    // said *on that day* (a rollback query per pay date).
    let rel = db.relation("salary").expect("exists").as_temporal();
    println!("month     | paid (as of pay date) | correct (current knowledge)");
    println!("----------+-----------------------+----------------------------");
    let mut paid_total = 0i64;
    let mut owed_total = 0i64;
    for month in 1..=12u8 {
        let pay_date = Date::new(1983, month, 1).expect("valid").to_chronon();
        let paid = salary_at(rel, pay_date, pay_date);
        let correct = salary_at(rel, pay_date, date("12/31/83").unwrap());
        paid_total += paid;
        owed_total += correct;
        println!(
            "{:>9} | {:>21} | {:>27}",
            Date::from_chronon(pay_date).to_string(),
            format!("${paid}"),
            format!("${correct}")
        );
    }
    let back_pay = owed_total - paid_total;
    println!("----------+-----------------------+----------------------------");
    println!("totals    | ${paid_total:>20} | ${owed_total:>26}");
    println!("\nBack pay owed to Merrie: ${back_pay}");
    // Aug–Nov were paid at 4000 but should have been 5000.
    assert_eq!(back_pay, 4 * 1000);

    // The audit trail: what did the database believe about August's
    // salary, and when did that belief change?
    println!("\nBelief history for valid time 08/01/83:");
    for as_of in ["08/01/83", "11/30/83", "12/01/83"] {
        let v = salary_at(rel, date("08/01/83").unwrap(), date(as_of).unwrap());
        println!("  as of {as_of}: ${v}");
    }
}

/// The monthly salary valid at `valid`, as the database stored it at
/// `as_of` (0 if no row — the bitemporal point query of §4.4).
fn salary_at(
    rel: &chronos_storage::table::StoredBitemporalTable,
    valid: Chronon,
    as_of: Chronon,
) -> i64 {
    rel.valid_at_as_of(valid, as_of)
        .expect("scan")
        .first()
        .and_then(|row| row.tuple.get(1).as_int())
        .unwrap_or(0)
}
