//! Engineering version control on a rollback relation — the use case of
//! Mueller & Steinbauer's CAM databases and Reed's SWALLOW, both
//! classified as transaction-time systems in the paper's Figure 13.
//!
//! ```text
//! cargo run --example cad_versions
//! ```
//!
//! A parts database evolves as engineers release revisions.  Because the
//! relation is append-only over transaction time, any shipped
//! configuration can be reproduced exactly with a rollback query — and
//! past releases can never be silently edited.

use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::clock::ManualClock;
use chronos_db::{Database, DbError};
use chronos_tquel::printer::render;

fn main() {
    let clock = Arc::new(ManualClock::new(date("01/05/84").unwrap()));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create parts (part = str, revision = str, material = str) as rollback")
        .expect("create");

    let mut at = |day: &str, stmt: &str| {
        clock.advance_to(date(day).unwrap());
        db.session()
            .run(stmt)
            .unwrap_or_else(|e| panic!("{stmt}: {e}"));
    };

    // Development history of a bracket and a housing.
    at(
        "01/05/84",
        r#"append to parts (part = "bracket", revision = "A", material = "steel")"#,
    );
    at(
        "01/05/84",
        r#"append to parts (part = "housing", revision = "A", material = "aluminum")"#,
    );
    // Rev B of the bracket switches material.
    at(
        "03/12/84",
        r#"range of p is parts
          replace p (revision = "B", material = "titanium") where p.part = "bracket""#,
    );
    // The housing is dropped from the product…
    at(
        "05/20/84",
        r#"range of p is parts delete p where p.part = "housing""#,
    );
    // …and a cover is added.
    at(
        "05/20/84",
        r#"append to parts (part = "cover", revision = "A", material = "abs")"#,
    );
    // Rev C fixes the bracket again.
    at(
        "08/02/84",
        r#"range of p is parts
          replace p (revision = "C", material = "titanium") where p.part = "bracket""#,
    );

    // Ship dates and the configurations they froze.
    for ship in ["02/01/84", "04/15/84", "09/01/84"] {
        println!("--- configuration shipped {ship} (rollback query)");
        let res = db
            .session()
            .query(&format!(
                r#"range of p is parts
                   retrieve (p.part, p.revision, p.material)
                   as of "{ship}""#
            ))
            .expect("query");
        print!("{}", render(&res));
        println!();
    }

    // The February ship used the steel bracket; September the titanium C.
    let rev_at = |db: &mut Database, day: &str| {
        db.session()
            .query(&format!(
                r#"range of p is parts
                   retrieve (p.revision, p.material)
                   where p.part = "bracket" as of "{day}""#
            ))
            .expect("query")
            .rows[0]
            .tuple
            .to_string()
    };
    assert_eq!(rev_at(&mut db, "02/01/84"), "(A, steel)");
    assert_eq!(rev_at(&mut db, "09/01/84"), "(C, titanium)");

    // Append-only means history cannot be rewritten: a commit dated
    // before the last release is rejected by the transaction manager,
    // and the database clock never goes backwards.
    clock.advance_to(date("12/01/84").unwrap());
    db.session()
        .run(r#"append to parts (part = "gasket", revision = "A", material = "rubber")"#)
        .expect("append");
    let before = db
        .session()
        .query(r#"range of p is parts retrieve (p.part, p.revision) as of "04/15/84""#)
        .expect("query")
        .len();
    assert_eq!(before, 2, "the April configuration is frozen forever");

    // Window query: everything that was EVER a part during 1984.
    let all_1984 = db
        .session()
        .query(
            r#"range of p is parts
               retrieve (p.part, p.revision)
               as of "01/01/84" through "12/31/84""#,
        )
        .expect("query");
    println!("--- every version current at some point in 1984 (as of … through …)");
    print!("{}", render(&all_1984));

    // Rollback relations have no valid time: a `when` clause is a
    // capability error, exactly per Figure 11.
    let err = db
        .session()
        .query(r#"range of p is parts retrieve (p.part) when p overlap "06/01/84""#)
        .unwrap_err();
    assert!(matches!(err, DbError::Tquel(_)));
    println!("\n'when' on a rollback relation correctly rejected: {err}");
}
