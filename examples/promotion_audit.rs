//! User-defined time — auditing the `promotion` event relation of the
//! paper's Figure 9.
//!
//! ```text
//! cargo run --example promotion_audit
//! ```
//!
//! The `effective` date "is merely a date which appears on the promotion
//! letter" — user-defined time, stored but never interpreted by the
//! engine.  The *valid* time is when the promotion was signed; the
//! *transaction* time is when it reached the database.  Comparing the
//! three exposes paperwork lag and retroactive decisions.

use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::relation::Validity;
use chronos_db::Database;

fn main() {
    let clock = Arc::new(ManualClock::new(date("01/01/77").unwrap()));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create promotion (name = str, rank = str, effective = date) as temporal event")
        .expect("create");

    // The six events of Figure 9: (entered-on, signed-on, effective-on).
    let events: &[(&str, &str, &str, &str, &str)] = &[
        ("08/25/77", "08/25/77", "Merrie", "associate", "09/01/77"),
        ("12/01/82", "12/05/82", "Tom", "full", "12/05/82"),
        ("12/07/82", "12/07/82", "Tom", "associate", "12/05/82"),
        ("12/15/82", "12/11/82", "Merrie", "full", "12/01/82"),
        ("01/10/83", "01/01/83", "Mike", "assistant", "01/01/83"),
        ("02/25/84", "02/25/84", "Mike", "left", "03/01/84"),
    ];
    for (entered, signed, name, rank, effective) in events {
        clock.advance_to(date(entered).unwrap());
        db.session()
            .run(&format!(
                r#"append to promotion (name = "{name}", rank = "{rank}", effective = "{effective}")
                   valid at "{signed}""#
            ))
            .expect("append");
    }

    // Query through TQuel: when was Merrie's full professorship signed?
    let res = db
        .session()
        .query(
            r#"range of p is promotion
               retrieve (p.effective)
               where p.name = "Merrie" and p.rank = "full""#,
        )
        .expect("query");
    println!(
        "Merrie's promotion to full was effective {}",
        res.rows[0].tuple.get(0)
    );
    assert_eq!(res.column_strings(0), ["12/01/82"]);

    // Audit: compare the three kinds of time per event.
    println!("\naudit of the three kinds of time per promotion letter:");
    println!(
        "{:<8} {:<10} | {:>10} | {:>10} | {:>10} | finding",
        "name", "rank", "effective", "signed", "recorded"
    );
    let rel = db.relation("promotion").expect("exists").as_temporal();
    for row in rel.scan_rows().expect("scan") {
        let name = row.tuple.get(0).to_string();
        let rank = row.tuple.get(1).to_string();
        let effective = row.tuple.get(2).as_date().expect("date attr");
        let signed = match row.validity {
            Validity::Event(c) => c,
            Validity::Interval(_) => unreachable!("event relation"),
        };
        let recorded = row
            .tx
            .start()
            .finite()
            .expect("transaction starts are finite");
        let finding = classify(effective, signed, recorded);
        println!(
            "{:<8} {:<10} | {:>10} | {:>10} | {:>10} | {finding}",
            name,
            rank,
            effective.to_string(),
            signed.to_string(),
            recorded.to_string()
        );
    }

    println!("\n(the engine never interpreted `effective`; the audit logic did)");
}

/// Classifies a promotion record by the relationship of its three times.
fn classify(effective: Chronon, signed: Chronon, recorded: Chronon) -> &'static str {
    if effective < signed {
        "retroactive decision (effective before signing)"
    } else if effective > recorded {
        "postactive record (takes effect after recording)"
    } else if recorded > signed {
        "paperwork lag (recorded after signing)"
    } else {
        "same-day processing"
    }
}
