//! Lexical analysis.
//!
//! TQuel keywords are reserved case-insensitively (the paper writes them
//! lowercase).  String literals are double-quoted; in temporal positions
//! they carry date values (`as of "12/10/82"`), which the semantic
//! analyzer interprets.

use std::fmt;

use crate::error::{TquelError, TquelResult};

/// A lexical token with its byte offset.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Token kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// An identifier (relation, range variable, or attribute name).
    Ident(String),
    /// A keyword.
    Keyword(Keyword),
    /// A double-quoted string literal (unescaped content).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Keyword(k) => write!(f, "keyword {k}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Float(x) => write!(f, "float {x}"),
            TokenKind::LParen => f.pad("'('"),
            TokenKind::RParen => f.pad("')'"),
            TokenKind::Comma => f.pad("','"),
            TokenKind::Dot => f.pad("'.'"),
            TokenKind::Eq => f.pad("'='"),
            TokenKind::Ne => f.pad("'!='"),
            TokenKind::Lt => f.pad("'<'"),
            TokenKind::Le => f.pad("'<='"),
            TokenKind::Gt => f.pad("'>'"),
            TokenKind::Ge => f.pad("'>='"),
            TokenKind::Eof => f.pad("end of input"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Reserved words of Quel/TQuel.
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        pub enum Keyword {
            $(#[doc = $text] $variant),+
        }

        impl Keyword {
            /// Parses a keyword (case-insensitive).
            pub fn from_str_ci(s: &str) -> Option<Keyword> {
                let lower = s.to_ascii_lowercase();
                match lower.as_str() {
                    $($text => Some(Keyword::$variant),)+
                    _ => None,
                }
            }

            /// The canonical (lowercase) spelling.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text,)+
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.pad(self.as_str())
            }
        }
    };
}

keywords! {
    Range => "range",
    Of => "of",
    Is => "is",
    Retrieve => "retrieve",
    Into => "into",
    Where => "where",
    When => "when",
    Valid => "valid",
    From => "from",
    To => "to",
    At => "at",
    As => "as",
    Through => "through",
    Append => "append",
    Delete => "delete",
    Replace => "replace",
    Create => "create",
    Destroy => "destroy",
    Start => "start",
    End => "end",
    Extend => "extend",
    Overlap => "overlap",
    Precede => "precede",
    Equal => "equal",
    And => "and",
    Or => "or",
    Not => "not",
    Forever => "forever",
    Event => "event",
    Interval => "interval",
    Static => "static",
    Rollback => "rollback",
    Historical => "historical",
    Temporal => "temporal",
}

/// Tokenizes a source string.
pub fn lex(src: &str) -> TquelResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            '#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(TquelError::Lex {
                        message: "'!' must be followed by '='".into(),
                        offset: start,
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '"' => {
                i += 1;
                let mut content = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(TquelError::Lex {
                                message: "unterminated string literal".into(),
                                offset: start,
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            // Simple escapes: \" \\ \n \t
                            match bytes.get(i + 1) {
                                Some(b'"') => content.push('"'),
                                Some(b'\\') => content.push('\\'),
                                Some(b'n') => content.push('\n'),
                                Some(b't') => content.push('\t'),
                                _ => {
                                    return Err(TquelError::Lex {
                                        message: "bad escape in string".into(),
                                        offset: i,
                                    })
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            content.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(content),
                    offset: start,
                });
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                i += 1;
                let mut is_float = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || (bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| TquelError::Lex {
                        message: format!("bad float literal {text:?}"),
                        offset: start,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| TquelError::Lex {
                        message: format!("bad integer literal {text:?}"),
                        offset: start,
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                i += 1;
                // `$` continues an identifier (but cannot start one):
                // the engine's system relations live in the reserved
                // `sys$` namespace (`sys$stats`, `sys$relations`, …).
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'$')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let kind = match Keyword::from_str_ci(text) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(text.to_string()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            other => {
                return Err(TquelError::Lex {
                    message: format!("unexpected character {other:?}"),
                    offset: start,
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_paper_query() {
        let toks = kinds(r#"retrieve (f.rank) where f.name = "Merrie" as of "12/10/82""#);
        use super::Keyword as K;
        use TokenKind::*;
        assert_eq!(
            toks,
            vec![
                Keyword(K::Retrieve),
                LParen,
                Ident("f".into()),
                Dot,
                Ident("rank".into()),
                RParen,
                Keyword(K::Where),
                Ident("f".into()),
                Dot,
                Ident("name".into()),
                Eq,
                Str("Merrie".into()),
                Keyword(K::As),
                Keyword(K::Of),
                Str("12/10/82".into()),
                Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("RETRIEVE Retrieve retrieve").len(), 4);
        assert!(matches!(
            kinds("WHEN")[0],
            TokenKind::Keyword(Keyword::When)
        ));
    }

    #[test]
    fn numbers_and_operators() {
        let toks = kinds("x >= 42 y != -3.5 z < 7");
        assert!(toks.contains(&TokenKind::Ge));
        assert!(toks.contains(&TokenKind::Int(42)));
        assert!(toks.contains(&TokenKind::Ne));
        assert!(toks.contains(&TokenKind::Float(-3.5)));
        assert!(toks.contains(&TokenKind::Lt));
    }

    #[test]
    fn comments_and_escapes() {
        let toks = kinds("a # the rest is ignored\n b");
        assert_eq!(toks.len(), 3);
        let toks = kinds(r#""he said \"hi\"\n""#);
        assert_eq!(toks[0], TokenKind::Str("he said \"hi\"\n".into()));
    }

    #[test]
    fn dollar_continues_identifiers_for_system_relations() {
        let toks = kinds(r#"range of s is sys$stats retrieve (s.value)"#);
        assert!(toks.contains(&TokenKind::Ident("sys$stats".into())));
        // `$` still cannot *start* an identifier.
        assert!(lex("$stats").is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        match lex("abc $") {
            Err(TquelError::Lex { offset, .. }) => assert_eq!(offset, 4),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn dots_in_numbers_vs_projections() {
        // `f.2` must lex as ident, dot, int — not a float.
        let toks = kinds("f.2 1.5");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("f".into()),
                TokenKind::Dot,
                TokenKind::Int(2),
                TokenKind::Float(1.5),
                TokenKind::Eof
            ]
        );
    }
}
