//! Semantic analysis: from parsed AST to an executable plan.
//!
//! Analysis resolves range variables against their declared relations,
//! attribute names against schemas, lowers `where` expressions to
//! flat-index [`Predicate`]s and `when`/`valid` clauses to
//! [`TemporalPred`]/[`TemporalExpr`]s over variable indices, and decides
//! the class of the derived relation:
//!
//! * the result carries **valid time** iff any referenced variable ranges
//!   over a historical or temporal relation;
//! * it carries **transaction time** iff it carries valid time and every
//!   *target-list* variable ranges over a temporal relation (the paper's
//!   Figure 8 result carries the transaction time of the target
//!   variable's row);
//! * a rollback (`as of`) query over a static-rollback relation yields a
//!   **pure static relation** (paper §4.2).
//!
//! Default timestamps follow the paper's worked examples: when no
//! `valid` clause is given, a derived tuple's valid time is the
//! intersection of the valid times of the variables appearing in the
//! target list, and its transaction time likewise.

use std::collections::HashMap;

use chronos_algebra::expr::{CmpOp, Expr, Predicate};
use chronos_algebra::when::{TemporalExpr, TemporalPred};
use chronos_core::calendar::date;
use chronos_core::period::Period;
use chronos_core::schema::{Attribute, RelationClass, Schema, TemporalSignature};
use chronos_core::value::{AttrType, Value};

use crate::ast::{
    AggFunc, AsOfClause, AttrRef, CmpOpAst, Operand, Retrieve, Target, TargetExpr, TexprAst,
    ValidClause, WhenExpr, WhereExpr,
};
use crate::error::{TquelError, TquelResult};
use crate::provider::{AsOfSpec, RelationInfo, RelationProvider};

/// A range variable bound in a plan.
#[derive(Clone, Debug)]
pub struct VarBinding {
    /// The variable name.
    pub name: String,
    /// The relation it ranges over.
    pub relation: String,
    /// Catalog info for the relation.
    pub info: RelationInfo,
    /// Offset of this variable's attributes in the flat tuple.
    pub offset: usize,
}

impl VarBinding {
    /// Whether the variable's rows carry valid time.
    pub fn has_valid_time(&self) -> bool {
        matches!(
            self.info.class,
            RelationClass::Historical | RelationClass::Temporal
        )
    }

    /// Whether the variable's relation supports rollback.
    pub fn has_transaction_time(&self) -> bool {
        matches!(
            self.info.class,
            RelationClass::StaticRollback | RelationClass::Temporal
        )
    }
}

/// The lowered `valid` clause.
#[derive(Clone, Debug)]
pub enum ValidPlan {
    /// `valid at e` — the result is event-stamped.
    At(TemporalExpr),
    /// `valid from e1 to e2` — the result period is
    /// `[start of e1, end of e2)`.
    FromTo(TemporalExpr, TemporalExpr),
}

/// One resolved target-list entry.
#[derive(Clone, Copy, Debug)]
pub enum TargetPlan {
    /// Project the flat attribute at this index.
    Attr(usize),
    /// Aggregate over the flat attribute at this index.
    Aggregate(AggFunc, usize),
}

/// An executable retrieve plan.
#[derive(Clone, Debug)]
pub struct RetrievePlan {
    /// Destination relation name for `retrieve into`.
    pub into: Option<String>,
    /// Range variables in binding order (flat-tuple layout).
    pub vars: Vec<VarBinding>,
    /// `(output name, what to compute)` per target.
    pub targets: Vec<(String, TargetPlan)>,
    /// True iff the target list aggregates (the result is then a single
    /// static tuple over the qualifying rows).
    pub aggregated: bool,
    /// Distinct variable indices referenced by the target list, in
    /// order — the variables whose timestamps the result inherits.
    pub target_vars: Vec<usize>,
    /// The `where` predicate over the flat tuple.
    pub predicate: Predicate,
    /// The `when` predicate over variable valid times.
    pub when: TemporalPred,
    /// The `valid` clause, if any.
    pub valid: Option<ValidPlan>,
    /// The resolved `as of` clause, if any.
    pub as_of: Option<AsOfSpec>,
    /// Does the result carry valid time?
    pub result_valid: bool,
    /// Does the result carry transaction time?
    pub result_tx: bool,
    /// Signature of the result's valid time.
    pub result_signature: TemporalSignature,
    /// Schema of the result relation.
    pub out_schema: Schema,
}

/// Analyzes a parsed retrieve against range declarations and a catalog.
pub fn analyze_retrieve(
    stmt: &Retrieve,
    ranges: &HashMap<String, String>,
    provider: &dyn RelationProvider,
) -> TquelResult<RetrievePlan> {
    let mut binder = Binder::new(ranges, provider);

    // Bind variables in order of first appearance: targets, where, when,
    // valid.
    for t in &stmt.targets {
        match &t.expr {
            TargetExpr::Attr(r) | TargetExpr::Aggregate(_, r) => binder.bind(&r.var)?,
        }
    }
    if let Some(w) = &stmt.where_clause {
        binder.bind_where_vars(w)?;
    }
    if let Some(w) = &stmt.when_clause {
        binder.bind_when_vars(w)?;
    }
    match &stmt.valid {
        Some(ValidClause::At(e)) => binder.bind_texpr_vars(e)?,
        Some(ValidClause::FromTo(a, b)) => {
            binder.bind_texpr_vars(a)?;
            binder.bind_texpr_vars(b)?;
        }
        None => {}
    }

    let vars = binder.vars;
    let var_index: HashMap<&str, usize> = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.name.as_str(), i))
        .collect();

    // Resolve targets.
    let aggregated = stmt
        .targets
        .iter()
        .any(|t| matches!(t.expr, TargetExpr::Aggregate(..)));
    if aggregated
        && stmt
            .targets
            .iter()
            .any(|t| matches!(t.expr, TargetExpr::Attr(_)))
    {
        return Err(TquelError::Semantic(
            "cannot mix aggregates with plain attributes in a target list \
             (grouping is not supported)"
                .into(),
        ));
    }
    let mut targets = Vec::with_capacity(stmt.targets.len());
    let mut target_vars: Vec<usize> = Vec::new();
    let mut out_attrs: Vec<Attribute> = Vec::new();
    for Target { name, expr } in &stmt.targets {
        let (plan, out_name, out_type, attr) = match expr {
            TargetExpr::Attr(attr) => {
                let (flat, a) = resolve_attr(attr, &vars, &var_index)?;
                (
                    TargetPlan::Attr(flat),
                    name.clone().unwrap_or_else(|| attr.attr.clone()),
                    a.attr_type(),
                    attr,
                )
            }
            TargetExpr::Aggregate(func, attr) => {
                let (flat, a) = resolve_attr(attr, &vars, &var_index)?;
                let ty = aggregate_type(*func, a.attr_type(), &attr.attr)?;
                (
                    TargetPlan::Aggregate(*func, flat),
                    name.clone().unwrap_or_else(|| func.as_str().to_string()),
                    ty,
                    attr,
                )
            }
        };
        if out_attrs.iter().any(|x| x.name() == out_name) {
            return Err(TquelError::Semantic(format!(
                "duplicate result attribute {out_name:?} (rename with 'name = var.attr')"
            )));
        }
        out_attrs.push(Attribute::new(&out_name, out_type));
        targets.push((out_name, plan));
        let vi = var_index[attr.var.as_str()];
        if !target_vars.contains(&vi) {
            target_vars.push(vi);
        }
    }
    let out_schema = Schema::new(out_attrs).map_err(|e| TquelError::Semantic(e.to_string()))?;

    // Lower the where clause.
    let predicate = match &stmt.where_clause {
        Some(w) => lower_where(w, &vars, &var_index)?,
        None => Predicate::True,
    };

    // Lower the when clause; variables in temporal positions must carry
    // valid time.
    let when = match &stmt.when_clause {
        Some(w) => lower_when(w, &vars, &var_index)?,
        None => TemporalPred::True,
    };

    // Lower the valid clause.
    let valid = match &stmt.valid {
        Some(ValidClause::At(e)) => Some(ValidPlan::At(lower_texpr(e, &vars, &var_index)?)),
        Some(ValidClause::FromTo(a, b)) => Some(ValidPlan::FromTo(
            lower_texpr(a, &vars, &var_index)?,
            lower_texpr(b, &vars, &var_index)?,
        )),
        None => None,
    };

    // Resolve the as-of clause (constants only) and check capability.
    let as_of = match &stmt.as_of {
        Some(clause) => Some(resolve_as_of(clause)?),
        None => None,
    };
    if as_of.is_some() {
        for v in &vars {
            if !v.has_transaction_time() {
                return Err(TquelError::Semantic(format!(
                    "'as of' requires rollback support, but {} ranges over {} — a {} relation",
                    v.name, v.relation, v.info.class
                )));
            }
        }
    }

    // Result class: an explicit valid clause always yields a
    // timestamped result; otherwise the result inherits valid time from
    // the target-list variables.  Aggregates summarize over time and
    // yield a pure static relation.
    let result_valid =
        !aggregated && (valid.is_some() || target_vars.iter().any(|&i| vars[i].has_valid_time()));
    let result_tx = result_valid
        && !target_vars.is_empty()
        && target_vars
            .iter()
            .all(|&i| vars[i].info.class == RelationClass::Temporal);
    let result_signature = match &valid {
        Some(ValidPlan::At(_)) => TemporalSignature::Event,
        Some(ValidPlan::FromTo(..)) => TemporalSignature::Interval,
        None => {
            // Inherit: event only if every timestamped target var is event.
            let sigs: Vec<TemporalSignature> = target_vars
                .iter()
                .filter(|&&i| vars[i].has_valid_time())
                .map(|&i| vars[i].info.signature)
                .collect();
            if !sigs.is_empty() && sigs.iter().all(|s| *s == TemporalSignature::Event) {
                TemporalSignature::Event
            } else {
                TemporalSignature::Interval
            }
        }
    };

    Ok(RetrievePlan {
        into: stmt.into.clone(),
        vars,
        targets,
        aggregated,
        target_vars,
        predicate,
        when,
        valid,
        as_of,
        result_valid,
        result_tx,
        result_signature,
        out_schema,
    })
}

struct Binder<'a> {
    ranges: &'a HashMap<String, String>,
    provider: &'a dyn RelationProvider,
    vars: Vec<VarBinding>,
    next_offset: usize,
}

impl<'a> Binder<'a> {
    fn new(ranges: &'a HashMap<String, String>, provider: &'a dyn RelationProvider) -> Self {
        Binder {
            ranges,
            provider,
            vars: Vec::new(),
            next_offset: 0,
        }
    }

    fn bind(&mut self, var: &str) -> TquelResult<()> {
        if self.vars.iter().any(|v| v.name == var) {
            return Ok(());
        }
        let relation = self.ranges.get(var).ok_or_else(|| {
            TquelError::Semantic(format!(
                "range variable {var:?} is not declared (use 'range of {var} is <relation>')"
            ))
        })?;
        let info = self
            .provider
            .info(relation)
            .ok_or_else(|| TquelError::Semantic(format!("unknown relation {relation:?}")))?;
        let offset = self.next_offset;
        self.next_offset += info.schema.arity();
        self.vars.push(VarBinding {
            name: var.to_string(),
            relation: relation.clone(),
            info,
            offset,
        });
        Ok(())
    }

    fn bind_where_vars(&mut self, w: &WhereExpr) -> TquelResult<()> {
        match w {
            WhereExpr::Cmp(_, a, b) => {
                for op in [a, b] {
                    if let Operand::Attr(r) = op {
                        self.bind(&r.var)?;
                    }
                }
                Ok(())
            }
            WhereExpr::And(a, b) | WhereExpr::Or(a, b) => {
                self.bind_where_vars(a)?;
                self.bind_where_vars(b)
            }
            WhereExpr::Not(a) => self.bind_where_vars(a),
        }
    }

    fn bind_when_vars(&mut self, w: &WhenExpr) -> TquelResult<()> {
        match w {
            WhenExpr::Overlap(a, b) | WhenExpr::Precede(a, b) | WhenExpr::Equal(a, b) => {
                self.bind_texpr_vars(a)?;
                self.bind_texpr_vars(b)
            }
            WhenExpr::And(a, b) | WhenExpr::Or(a, b) => {
                self.bind_when_vars(a)?;
                self.bind_when_vars(b)
            }
            WhenExpr::Not(a) => self.bind_when_vars(a),
        }
    }

    fn bind_texpr_vars(&mut self, e: &TexprAst) -> TquelResult<()> {
        match e {
            TexprAst::Var(v) => self.bind(v),
            TexprAst::Date(_) | TexprAst::Forever => Ok(()),
            TexprAst::StartOf(a) | TexprAst::EndOf(a) => self.bind_texpr_vars(a),
            TexprAst::Extend(a, b) | TexprAst::Overlap(a, b) => {
                self.bind_texpr_vars(a)?;
                self.bind_texpr_vars(b)
            }
        }
    }
}

fn resolve_attr<'v>(
    r: &AttrRef,
    vars: &'v [VarBinding],
    var_index: &HashMap<&str, usize>,
) -> TquelResult<(usize, &'v Attribute)> {
    let vi = *var_index.get(r.var.as_str()).ok_or_else(|| {
        TquelError::Semantic(format!("range variable {:?} is not declared", r.var))
    })?;
    let v = &vars[vi];
    let ai = v.info.schema.index_of(&r.attr).ok_or_else(|| {
        TquelError::Semantic(format!(
            "relation {:?} has no attribute {:?} (schema {})",
            v.relation, r.attr, v.info.schema
        ))
    })?;
    Ok((v.offset + ai, v.info.schema.attribute(ai)))
}

fn operand_type(
    op: &Operand,
    vars: &[VarBinding],
    var_index: &HashMap<&str, usize>,
) -> TquelResult<(Expr, AttrType)> {
    match op {
        Operand::Attr(r) => {
            let (flat, a) = resolve_attr(r, vars, var_index)?;
            Ok((Expr::Attr(flat), a.attr_type()))
        }
        Operand::Str(s) => {
            // A quoted literal compared against a date attribute is a
            // date; the executor handles that coercion at lowering time
            // (see lower_where).
            Ok((Expr::Const(Value::str(s)), AttrType::Str))
        }
        Operand::Int(i) => Ok((Expr::Const(Value::Int(*i)), AttrType::Int)),
        Operand::Float(x) => Ok((Expr::Const(Value::Float(*x)), AttrType::Float)),
    }
}

fn lower_where(
    w: &WhereExpr,
    vars: &[VarBinding],
    var_index: &HashMap<&str, usize>,
) -> TquelResult<Predicate> {
    match w {
        WhereExpr::Cmp(op, a, b) => {
            let (mut ea, mut ta) = operand_type(a, vars, var_index)?;
            let (mut eb, mut tb) = operand_type(b, vars, var_index)?;
            // Coerce string literals to dates when compared with a date
            // attribute (user-defined time: "merely a date" §4.5).
            if ta == AttrType::Date && tb == AttrType::Str {
                if let (Expr::Const(Value::Str(s)), Operand::Str(_)) = (&eb, b) {
                    let c = date(s).map_err(|e| TquelError::Semantic(e.to_string()))?;
                    eb = Expr::Const(Value::Date(c));
                    tb = AttrType::Date;
                }
            }
            if tb == AttrType::Date && ta == AttrType::Str {
                if let (Expr::Const(Value::Str(s)), Operand::Str(_)) = (&ea, a) {
                    let c = date(s).map_err(|e| TquelError::Semantic(e.to_string()))?;
                    ea = Expr::Const(Value::Date(c));
                    ta = AttrType::Date;
                }
            }
            if ta != tb {
                return Err(TquelError::Semantic(format!(
                    "type mismatch in comparison: {ta} vs {tb}"
                )));
            }
            let op = match op {
                CmpOpAst::Eq => CmpOp::Eq,
                CmpOpAst::Ne => CmpOp::Ne,
                CmpOpAst::Lt => CmpOp::Lt,
                CmpOpAst::Le => CmpOp::Le,
                CmpOpAst::Gt => CmpOp::Gt,
                CmpOpAst::Ge => CmpOp::Ge,
            };
            Ok(Predicate::Cmp(op, ea, eb))
        }
        WhereExpr::And(a, b) => {
            Ok(lower_where(a, vars, var_index)?.and(lower_where(b, vars, var_index)?))
        }
        WhereExpr::Or(a, b) => {
            Ok(lower_where(a, vars, var_index)?.or(lower_where(b, vars, var_index)?))
        }
        WhereExpr::Not(a) => Ok(lower_where(a, vars, var_index)?.not()),
    }
}

fn lower_when(
    w: &WhenExpr,
    vars: &[VarBinding],
    var_index: &HashMap<&str, usize>,
) -> TquelResult<TemporalPred> {
    match w {
        WhenExpr::Overlap(a, b) => Ok(TemporalPred::Overlap(
            lower_texpr(a, vars, var_index)?,
            lower_texpr(b, vars, var_index)?,
        )),
        WhenExpr::Precede(a, b) => Ok(TemporalPred::Precede(
            lower_texpr(a, vars, var_index)?,
            lower_texpr(b, vars, var_index)?,
        )),
        WhenExpr::Equal(a, b) => Ok(TemporalPred::Equal(
            lower_texpr(a, vars, var_index)?,
            lower_texpr(b, vars, var_index)?,
        )),
        WhenExpr::And(a, b) => {
            Ok(lower_when(a, vars, var_index)?.and(lower_when(b, vars, var_index)?))
        }
        WhenExpr::Or(a, b) => Ok(TemporalPred::Or(
            Box::new(lower_when(a, vars, var_index)?),
            Box::new(lower_when(b, vars, var_index)?),
        )),
        WhenExpr::Not(a) => Ok(TemporalPred::Not(Box::new(lower_when(a, vars, var_index)?))),
    }
}

fn lower_texpr(
    e: &TexprAst,
    vars: &[VarBinding],
    var_index: &HashMap<&str, usize>,
) -> TquelResult<TemporalExpr> {
    match e {
        TexprAst::Var(v) => {
            let vi = *var_index.get(v.as_str()).ok_or_else(|| {
                TquelError::Semantic(format!("range variable {v:?} is not declared"))
            })?;
            if !vars[vi].has_valid_time() {
                return Err(TquelError::Semantic(format!(
                    "{v:?} ranges over a {} relation, which carries no valid time",
                    vars[vi].info.class
                )));
            }
            Ok(TemporalExpr::Var(vi))
        }
        TexprAst::Date(s) => {
            let c = date(s).map_err(|e| TquelError::Semantic(e.to_string()))?;
            Ok(TemporalExpr::Const(Period::instant(c)))
        }
        TexprAst::Forever => Ok(TemporalExpr::Const(Period::instant_at(
            chronos_core::timepoint::TimePoint::PlusInfinity,
        ))),
        TexprAst::StartOf(a) => Ok(lower_texpr(a, vars, var_index)?.start_of()),
        TexprAst::EndOf(a) => Ok(lower_texpr(a, vars, var_index)?.end_of()),
        TexprAst::Extend(a, b) => {
            Ok(lower_texpr(a, vars, var_index)?.extend(lower_texpr(b, vars, var_index)?))
        }
        TexprAst::Overlap(a, b) => Ok(TemporalExpr::Intersect(
            Box::new(lower_texpr(a, vars, var_index)?),
            Box::new(lower_texpr(b, vars, var_index)?),
        )),
    }
}

/// Resolves an `as of` clause, which must be constant (no range
/// variables).
pub fn resolve_as_of(clause: &AsOfClause) -> TquelResult<AsOfSpec> {
    let at = const_instant(&clause.at)?;
    match &clause.through {
        None => Ok(AsOfSpec::At(at)),
        Some(e) => {
            let through = const_instant(e)?;
            if through < at {
                return Err(TquelError::Semantic(format!(
                    "'as of … through …' runs backwards: {at} > {through}"
                )));
            }
            Ok(AsOfSpec::Through(at, through))
        }
    }
}

fn const_instant(e: &TexprAst) -> TquelResult<chronos_core::chronon::Chronon> {
    match e {
        TexprAst::Date(s) => date(s).map_err(|e| TquelError::Semantic(e.to_string())),
        other => Err(TquelError::Semantic(format!(
            "'as of' takes a constant date, not {other:?}"
        ))),
    }
}

/// The result type of an aggregate over an attribute of type `ty`.
fn aggregate_type(func: AggFunc, ty: AttrType, attr: &str) -> TquelResult<AttrType> {
    match func {
        AggFunc::Count => Ok(AttrType::Int),
        AggFunc::Min | AggFunc::Max => Ok(ty),
        AggFunc::Sum => match ty {
            AttrType::Int | AttrType::Float => Ok(ty),
            other => Err(TquelError::Semantic(format!(
                "sum over non-numeric attribute {attr:?} ({other})"
            ))),
        },
        AggFunc::Avg => match ty {
            AttrType::Int | AttrType::Float => Ok(AttrType::Float),
            other => Err(TquelError::Semantic(format!(
                "avg over non-numeric attribute {attr:?} ({other})"
            ))),
        },
    }
}

/// Lowers a `where` clause that may reference only the single variable
/// `var` ranging over `info` (used by `delete`/`replace`, whose target
/// rows come from one relation).
pub fn analyze_where_single(
    w: &WhereExpr,
    var: &str,
    info: &RelationInfo,
) -> TquelResult<Predicate> {
    let vars = vec![VarBinding {
        name: var.to_string(),
        relation: String::new(),
        info: info.clone(),
        offset: 0,
    }];
    let var_index: HashMap<&str, usize> = [(var, 0usize)].into_iter().collect();
    lower_where(w, &vars, &var_index)
}

/// Lowers a constant `valid` clause (no range variables) for
/// modification statements.
pub fn analyze_valid_const(v: &ValidClause) -> TquelResult<ValidPlan> {
    let vars: Vec<VarBinding> = Vec::new();
    let var_index: HashMap<&str, usize> = HashMap::new();
    match v {
        ValidClause::At(e) => Ok(ValidPlan::At(lower_texpr(e, &vars, &var_index)?)),
        ValidClause::FromTo(a, b) => Ok(ValidPlan::FromTo(
            lower_texpr(a, &vars, &var_index)?,
            lower_texpr(b, &vars, &var_index)?,
        )),
    }
}
