//! The interface between TQuel and the relations it queries.
//!
//! The evaluator is storage-agnostic: it sees relations through
//! [`RelationProvider`], which `chronos-db` implements over its catalog.
//! A scan yields [`SourceRow`]s — tuples with whatever timestamps the
//! relation's class carries — optionally rolled back by an
//! [`AsOfSpec`].

use std::sync::Arc;

use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::relation::Validity;
use chronos_core::schema::{RelationClass, Schema, TemporalSignature};
use chronos_core::tuple::Tuple;

use crate::error::TquelResult;

/// Catalog metadata for one relation.
#[derive(Clone, Debug)]
pub struct RelationInfo {
    /// Explicit attributes.
    pub schema: Schema,
    /// Which of the paper's four classes the relation is.
    pub class: RelationClass,
    /// Interval or event valid time (meaningful for historical and
    /// temporal relations).
    pub signature: TemporalSignature,
}

/// A resolved `as of` clause.
///
/// `Hash`/`Eq` matter beyond the usual derives: the pair
/// `(relation name, Option<AsOfSpec>)` is the key of `chronos-db`'s
/// bitemporal query cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AsOfSpec {
    /// `as of t`: the state stored at transaction time `t`.
    At(Chronon),
    /// `as of t1 through t2`: every version stored at any time in
    /// `[t1, t2]`.
    Through(Chronon, Chronon),
}

/// One tuple as scanned from a relation.
#[derive(Clone, PartialEq, Debug)]
pub struct SourceRow {
    /// The explicit attribute values.
    pub tuple: Tuple,
    /// Valid time, when the relation's class carries it.
    pub validity: Option<Validity>,
    /// Transaction time, when the relation's class carries it (temporal
    /// relations only — rollback queries yield pure static relations).
    pub tx: Option<Period>,
}

/// Access to relations by name.
pub trait RelationProvider {
    /// Catalog lookup.
    fn info(&self, relation: &str) -> Option<RelationInfo>;

    /// Scans a relation, applying `as_of` when given.
    ///
    /// * static: current tuples (`as_of` rejected by analysis);
    /// * rollback: the static state as of the given time (or current);
    /// * historical: rows with validity (`as_of` rejected by analysis);
    /// * temporal: rows with validity and transaction periods, filtered
    ///   to those stored as of the given time (or current).
    ///
    /// The rows come back behind an [`Arc`] so a caching provider can
    /// serve repeated scans of the same bitemporal coordinate without
    /// copying the row set.
    fn scan(&self, relation: &str, as_of: Option<&AsOfSpec>) -> TquelResult<Arc<Vec<SourceRow>>>;

    /// Estimated row count for a *current-state* scan of `relation`,
    /// from whatever statistics the provider keeps (`chronos-db` answers
    /// from the latest `analyze` sample in `sys$tablestats`).  `None`
    /// when the relation has never been analyzed — the evaluator then
    /// omits the estimated-vs-actual column for that operator rather
    /// than invent a number.
    fn estimated_rows(&self, relation: &str) -> Option<u64> {
        let _ = relation;
        None
    }
}
