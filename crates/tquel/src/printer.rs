//! Rendering of derived relations in the paper's tabular format.
//!
//! Explicit attributes come first; the double bar separates them from
//! the DBMS-maintained temporal columns, exactly as in Figures 4, 6, 8
//! and 9 ("the double vertical bars separate the non-temporal domains
//! from the DBMS-maintained temporal domains").

use chronos_core::relation::Validity;
use chronos_core::render::TextTable;
use chronos_core::schema::TemporalSignature;

use crate::exec::ResultRelation;

/// Renders a result relation as an aligned text table.
pub fn render(rel: &ResultRelation) -> String {
    let has_valid = rel.rows.iter().any(|r| r.validity.is_some())
        || matches!(
            rel.kind,
            chronos_core::taxonomy::DatabaseClass::Historical
                | chronos_core::taxonomy::DatabaseClass::Temporal
        );
    let has_tx = rel.rows.iter().any(|r| r.tx.is_some())
        || rel.kind == chronos_core::taxonomy::DatabaseClass::Temporal;

    let mut headers: Vec<String> = rel
        .schema
        .attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let explicit = headers.len();
    if has_valid {
        match rel.signature {
            TemporalSignature::Event => headers.push("valid (at)".into()),
            TemporalSignature::Interval => {
                headers.push("valid (from)".into());
                headers.push("valid (to)".into());
            }
        }
    }
    if has_tx {
        headers.push("tx (start)".into());
        headers.push("tx (end)".into());
    }

    let mut table = TextTable::new(headers);
    if has_valid || has_tx {
        table = table.with_double_bar_before(explicit);
    }
    for row in &rel.rows {
        let mut cells: Vec<String> = row.tuple.values().iter().map(ToString::to_string).collect();
        if has_valid {
            match row.validity {
                Some(Validity::Event(c)) => cells.push(c.to_string()),
                Some(Validity::Interval(p)) => {
                    cells.push(p.start().to_string());
                    cells.push(p.end().to_string());
                }
                None => {
                    cells.push(String::new());
                    if rel.signature == TemporalSignature::Interval {
                        cells.push(String::new());
                    }
                }
            }
        }
        if has_tx {
            match row.tx {
                Some(p) => {
                    cells.push(p.start().to_string());
                    cells.push(p.end().to_string());
                }
                None => {
                    cells.push(String::new());
                    cells.push(String::new());
                }
            }
        }
        table.push_row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ResultRow;
    use chronos_core::calendar::date;
    use chronos_core::period::Period;
    use chronos_core::schema::{Attribute, Schema};
    use chronos_core::taxonomy::DatabaseClass;
    use chronos_core::tuple::tuple;
    use chronos_core::value::AttrType;

    #[test]
    fn renders_the_figure_8_result_row() {
        let rel = ResultRelation {
            schema: Schema::new(vec![Attribute::new("rank", AttrType::Str)]).unwrap(),
            kind: DatabaseClass::Temporal,
            signature: TemporalSignature::Interval,
            rows: vec![ResultRow {
                tuple: tuple(["associate"]),
                validity: Some(Validity::Interval(Period::from_start(
                    date("09/01/77").unwrap(),
                ))),
                tx: Some(
                    Period::new(date("08/25/77").unwrap(), date("12/15/82").unwrap()).unwrap(),
                ),
            }],
        };
        let s = render(&rel);
        assert!(s.contains("rank"), "{s}");
        assert!(s.contains("associate"), "{s}");
        assert!(s.contains("09/01/77"), "{s}");
        assert!(s.contains("∞"), "{s}");
        assert!(s.contains("08/25/77") && s.contains("12/15/82"), "{s}");
        assert!(
            s.contains("||"),
            "double bar separates temporal domains: {s}"
        );
    }

    #[test]
    fn static_results_have_no_temporal_columns() {
        let rel = ResultRelation {
            schema: Schema::new(vec![Attribute::new("rank", AttrType::Str)]).unwrap(),
            kind: DatabaseClass::Static,
            signature: TemporalSignature::Interval,
            rows: vec![ResultRow {
                tuple: tuple(["full"]),
                validity: None,
                tx: None,
            }],
        };
        let s = render(&rel);
        assert!(!s.contains("valid"), "{s}");
        assert!(!s.contains("tx"), "{s}");
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn event_results_use_single_at_column() {
        let rel = ResultRelation {
            schema: Schema::new(vec![Attribute::new("name", AttrType::Str)]).unwrap(),
            kind: DatabaseClass::Historical,
            signature: TemporalSignature::Event,
            rows: vec![ResultRow {
                tuple: tuple(["Merrie"]),
                validity: Some(Validity::Event(date("12/11/82").unwrap())),
                tx: None,
            }],
        };
        let s = render(&rel);
        assert!(s.contains("valid (at)"), "{s}");
        assert!(!s.contains("(from)"), "{s}");
        assert!(s.contains("12/11/82"), "{s}");
    }
}
