//! # chronos-tquel
//!
//! TQuel — the Temporal QUEry Language of Snodgrass (1984/1985) — as a
//! complete lexer, parser, semantic analyzer and evaluator.
//!
//! TQuel extends Quel (the INGRES tuple calculus) with three constructs,
//! all of which this crate implements:
//!
//! * the **`as of`** clause, effecting rollback on transaction time
//!   (`… as of "12/10/82"`, optionally `through` a second time);
//! * the **`valid`** clause (`valid at e` / `valid from e1 to e2`),
//!   computing the implicit valid time of derived tuples;
//! * the **`when`** predicate over tuple valid times, with the temporal
//!   constructors `start of`, `end of`, `extend` and the predicates
//!   `overlap`, `precede`, `equal`.
//!
//! Modification statements (`append`, `delete`, `replace`) and schema
//! statements (`create`, `destroy`) are parsed here and executed by
//! `chronos-db`.
//!
//! ## Example — the paper's flagship query
//!
//! ```
//! use chronos_tquel::parse_program;
//!
//! let stmts = parse_program(r#"
//!     range of f1 is faculty
//!     range of f2 is faculty
//!     retrieve (f1.rank)
//!     where f1.name = "Merrie" and f2.name = "Tom"
//!     when f1 overlap start of f2
//!     as of "12/10/82"
//! "#).unwrap();
//! assert_eq!(stmts.len(), 3);
//! ```

pub mod analyze;
pub mod ast;
pub mod error;
pub mod exec;
pub mod fingerprint;
pub mod parser;
pub mod printer;
pub mod provider;
pub mod token;
pub mod unparse;

pub use error::{TquelError, TquelResult};
pub use fingerprint::{fingerprint, normalize_statement};
pub use parser::{parse_program, parse_statement};
