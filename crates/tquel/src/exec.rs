//! The tuple-calculus evaluator.
//!
//! A retrieve is evaluated as the paper (and Quel) define it: the
//! cartesian product of the range variables' row sets, filtered by the
//! `where` predicate over attribute values and the `when` predicate over
//! valid times, then projected through the target list with derived
//! timestamps.
//!
//! Derived timestamps (§4.4's closure property — "this derived relation
//! is a temporal relation, so further temporal relations can be derived
//! from it"):
//!
//! * valid time — the `valid` clause when present, otherwise the
//!   intersection of the target-list variables' valid times;
//! * transaction time — the intersection of the target-list variables'
//!   transaction periods (temporal operands only).
//!
//! Rows whose derived valid period is empty hold at no time and are
//! dropped.

use std::collections::HashMap;
use std::collections::HashSet;

use chronos_core::period::Period;
use chronos_core::relation::Validity;
use chronos_core::schema::{RelationClass, Schema, TemporalSignature};
use chronos_core::taxonomy::DatabaseClass;
use chronos_core::timepoint::TimePoint;
use chronos_core::tuple::Tuple;
use chronos_core::value::Value;

use chronos_obs::{noop_recorder, Recorder};

use crate::analyze::{analyze_retrieve, RetrievePlan, TargetPlan, ValidPlan};
use crate::ast::{AggFunc, Retrieve, Statement};
use crate::error::{TquelError, TquelResult};
use crate::provider::{RelationProvider, SourceRow};

/// One row of a query result, carrying whatever timestamps the result
/// class has.
#[derive(Clone, PartialEq, Debug)]
pub struct ResultRow {
    /// The projected attribute values.
    pub tuple: Tuple,
    /// Valid time (historical and temporal results).
    pub validity: Option<Validity>,
    /// Transaction time (temporal results).
    pub tx: Option<Period>,
}

/// A derived relation.
#[derive(Clone, PartialEq, Debug)]
pub struct ResultRelation {
    /// Result schema.
    pub schema: Schema,
    /// Which of the four classes the derived relation belongs to.
    pub kind: DatabaseClass,
    /// Signature of the valid time, when carried.
    pub signature: TemporalSignature,
    /// The rows.
    pub rows: Vec<ResultRow>,
}

impl ResultRelation {
    /// The values of a single-attribute result, as strings (convenience
    /// for tests and examples).
    pub fn column_strings(&self, idx: usize) -> Vec<String> {
        self.rows
            .iter()
            .map(|r| r.tuple.get(idx).to_string())
            .collect()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

/// Executes an analyzed plan.
pub fn execute_plan(
    plan: &RetrievePlan,
    provider: &dyn RelationProvider,
) -> TquelResult<ResultRelation> {
    execute_plan_traced(plan, provider, noop_recorder())
}

/// Executes an analyzed plan, recording per-operator spans (scan,
/// product, aggregate) into `recorder`.
pub fn execute_plan_traced(
    plan: &RetrievePlan,
    provider: &dyn RelationProvider,
    recorder: &Recorder,
) -> TquelResult<ResultRelation> {
    let exec_span = recorder.span("tquel/exec");
    // Scan each range variable (shared row sets — a caching provider
    // hands the same Arc to every retrieve at the same coordinate).
    let mut scans: Vec<std::sync::Arc<Vec<SourceRow>>> = Vec::with_capacity(plan.vars.len());
    let mut estimates: Vec<Option<u64>> = Vec::with_capacity(plan.vars.len());
    for v in &plan.vars {
        let span = recorder.span("tquel/scan");
        span.detail(format!("{} over {}", v.name, v.relation));
        // Statistics describe the current state, so estimates only apply
        // to non-rollback scans; `as of` operators show actuals alone.
        let est = if plan.as_of.is_none() {
            provider.estimated_rows(&v.relation)
        } else {
            None
        };
        if let Some(est) = est {
            span.rows_est(est);
        }
        estimates.push(est);
        let rows = provider.scan(&v.relation, plan.as_of.as_ref())?;
        span.rows_out(rows.len() as u64);
        scans.push(rows);
    }
    let combinations: u64 = scans.iter().map(|s| s.len() as u64).product();
    // The product's input estimate is the product of the per-scan
    // estimates — defined only when every scan had one.
    let est_combinations: Option<u64> = estimates
        .iter()
        .copied()
        .try_fold(1u64, |acc, e| e.map(|e| acc.saturating_mul(e)));

    if plan.aggregated {
        let span = recorder.span("tquel/aggregate");
        span.rows_in(combinations);
        if let Some(est) = est_combinations {
            span.rows_est(est);
        }
        let result = execute_aggregate(plan, &scans)?;
        span.rows_out(result.len() as u64);
        exec_span.rows_out(result.len() as u64);
        return Ok(result);
    }
    let product_span = recorder.span("tquel/product");
    product_span.rows_in(combinations);
    if let Some(est) = est_combinations {
        product_span.rows_est(est);
    }

    let kind = match (plan.result_valid, plan.result_tx) {
        (true, true) => DatabaseClass::Temporal,
        (true, false) => DatabaseClass::Historical,
        _ => DatabaseClass::Static,
    };

    /// Set semantics over derived rows: tuple + both timestamps.
    type RowKey = (Tuple, Option<Validity>, Option<(TimePoint, TimePoint)>);
    let mut rows: Vec<ResultRow> = Vec::new();
    let mut seen: HashSet<RowKey> = HashSet::new();

    // Cartesian product via an index vector (no recursion, no clones of
    // the scans).
    if scans.iter().any(|s| s.is_empty()) {
        product_span.rows_out(0);
        exec_span.rows_out(0);
        return Ok(ResultRelation {
            schema: plan.out_schema.clone(),
            kind,
            signature: plan.result_signature,
            rows,
        });
    }
    let mut idx = vec![0usize; scans.len()];
    'product: loop {
        let combo: Vec<&SourceRow> = idx.iter().zip(&scans).map(|(&i, s)| &s[i]).collect();

        // Flat tuple and period environment.
        let mut values = Vec::new();
        for r in &combo {
            values.extend_from_slice(r.tuple.values());
        }
        let flat = Tuple::new(values);
        let env: Vec<Period> = combo
            .iter()
            .map(|r| r.validity.map_or(Period::ALWAYS, |v| v.period()))
            .collect();

        if plan.predicate.eval(&flat)? && plan.when.eval(&env)? {
            if let Some(row) = derive_row(plan, &combo, &flat, &env)? {
                let key = (
                    row.tuple.clone(),
                    row.validity,
                    row.tx.map(|p| (p.start(), p.end())),
                );
                if seen.insert(key) {
                    rows.push(row);
                }
            }
        }

        // Advance the odometer.
        let mut d = scans.len();
        loop {
            if d == 0 {
                break 'product;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < scans[d].len() {
                break;
            }
            idx[d] = 0;
        }
    }

    product_span.rows_out(rows.len() as u64);
    exec_span.rows_out(rows.len() as u64);
    Ok(ResultRelation {
        schema: plan.out_schema.clone(),
        kind,
        signature: plan.result_signature,
        rows,
    })
}

/// Running state of one aggregate target.
#[derive(Clone, Debug)]
enum AggState {
    Count(i64),
    SumInt(i64),
    SumFloat(f64),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc, sample_is_float: bool) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum if sample_is_float => AggState::SumFloat(0.0),
            AggFunc::Sum => AggState::SumInt(0),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn observe(&mut self, v: &Value) -> TquelResult<()> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::SumInt(s) => {
                *s += v
                    .as_int()
                    .ok_or_else(|| TquelError::Semantic("sum over a non-integer value".into()))?;
            }
            AggState::SumFloat(s) => match v {
                Value::Float(x) => *s += x,
                Value::Int(i) => *s += *i as f64,
                other => {
                    return Err(TquelError::Semantic(format!(
                        "sum over non-numeric value {other}"
                    )))
                }
            },
            AggState::Avg { sum, n } => {
                match v {
                    Value::Float(x) => *sum += x,
                    Value::Int(i) => *sum += *i as f64,
                    other => {
                        return Err(TquelError::Semantic(format!(
                            "avg over non-numeric value {other}"
                        )))
                    }
                }
                *n += 1;
            }
            AggState::Min(best) => {
                if best.as_ref().is_none_or(|b| v < b) {
                    *best = Some(v.clone());
                }
            }
            AggState::Max(best) => {
                if best.as_ref().is_none_or(|b| v > b) {
                    *best = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// The final value; `None` when the aggregate is undefined over an
    /// empty set (min/max/avg of nothing).
    fn finish(self) -> Option<Value> {
        match self {
            AggState::Count(n) => Some(Value::Int(n)),
            AggState::SumInt(s) => Some(Value::Int(s)),
            AggState::SumFloat(s) => Some(Value::Float(s)),
            AggState::Avg { n: 0, .. } => None,
            AggState::Avg { sum, n } => Some(Value::Float(sum / n as f64)),
            AggState::Min(v) | AggState::Max(v) => v,
        }
    }
}

/// Aggregated execution: one pass over the qualifying combinations,
/// producing a single static tuple (or the empty relation when a
/// value aggregate is undefined over an empty set).
fn execute_aggregate(
    plan: &RetrievePlan,
    scans: &[std::sync::Arc<Vec<SourceRow>>],
) -> TquelResult<ResultRelation> {
    let mut states: Vec<(AggState, usize)> = plan
        .targets
        .iter()
        .zip(plan.out_schema.attributes())
        .map(|((_, t), out_attr)| match t {
            TargetPlan::Aggregate(func, flat) => {
                let is_float = out_attr.attr_type() == chronos_core::value::AttrType::Float;
                (AggState::new(*func, is_float), *flat)
            }
            TargetPlan::Attr(_) => unreachable!("analysis rejects mixed target lists"),
        })
        .collect();

    if !scans.iter().any(|s| s.is_empty()) {
        let mut idx = vec![0usize; scans.len()];
        'product: loop {
            let combo: Vec<&SourceRow> = idx.iter().zip(scans).map(|(&i, s)| &s[i]).collect();
            let mut values = Vec::new();
            for r in &combo {
                values.extend_from_slice(r.tuple.values());
            }
            let flat = Tuple::new(values);
            let env: Vec<Period> = combo
                .iter()
                .map(|r| r.validity.map_or(Period::ALWAYS, |v| v.period()))
                .collect();
            if plan.predicate.eval(&flat)? && plan.when.eval(&env)? {
                for (state, flat_idx) in &mut states {
                    state.observe(flat.get(*flat_idx))?;
                }
            }
            let mut d = scans.len();
            loop {
                if d == 0 {
                    break 'product;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < scans[d].len() {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    let mut values = Vec::with_capacity(states.len());
    let mut defined = true;
    for (state, _) in states {
        match state.finish() {
            Some(v) => values.push(v),
            None => defined = false,
        }
    }
    let rows = if defined {
        vec![ResultRow {
            tuple: Tuple::new(values),
            validity: None,
            tx: None,
        }]
    } else {
        Vec::new()
    };
    Ok(ResultRelation {
        schema: plan.out_schema.clone(),
        kind: DatabaseClass::Static,
        signature: plan.result_signature,
        rows,
    })
}

fn derive_row(
    plan: &RetrievePlan,
    combo: &[&SourceRow],
    flat: &Tuple,
    env: &[Period],
) -> TquelResult<Option<ResultRow>> {
    // Valid time.
    let validity = if plan.result_valid {
        let validity = match &plan.valid {
            Some(ValidPlan::At(e)) => {
                let p = e.eval(env)?;
                match p.start() {
                    TimePoint::Finite(c) => Validity::Event(c),
                    other => {
                        return Err(TquelError::Semantic(format!(
                            "'valid at' must yield a finite instant, got {other}"
                        )))
                    }
                }
            }
            Some(ValidPlan::FromTo(a, b)) => {
                // `from a to b`: `[start of a, start of b)` — the `to`
                // bound is exclusive, matching the paper's tables where
                // Merrie's `(to) 12/01/82` meets `full` starting
                // 12/01/82.
                let from = a.eval(env)?.start();
                let to = b.eval(env)?.start();
                Validity::Interval(Period::clamped(from, to))
            }
            None => {
                // Default: intersection of target-list variables' valid
                // times.
                let mut p = Period::ALWAYS;
                for &vi in &plan.target_vars {
                    if plan.vars[vi].has_valid_time() {
                        p = p.intersect(env[vi]);
                    }
                }
                match plan.result_signature {
                    TemporalSignature::Event => match p.start() {
                        TimePoint::Finite(c) if !p.is_empty() => Validity::Event(c),
                        _ => return Ok(None),
                    },
                    TemporalSignature::Interval => Validity::Interval(p),
                }
            }
        };
        if let Validity::Interval(p) = validity {
            if p.is_empty() {
                return Ok(None); // holds at no time
            }
        }
        Some(validity)
    } else {
        None
    };

    // Transaction time: intersection of target-list temporal operands.
    let tx = if plan.result_tx {
        let mut p = Period::ALWAYS;
        for &vi in &plan.target_vars {
            if plan.vars[vi].info.class == RelationClass::Temporal {
                let row_tx = combo[vi].tx.ok_or_else(|| {
                    TquelError::Semantic(format!(
                        "temporal relation {:?} scanned without transaction time",
                        plan.vars[vi].relation
                    ))
                })?;
                p = p.intersect(row_tx);
            }
        }
        if p.is_empty() {
            return Ok(None); // versions never co-existed in the store
        }
        Some(p)
    } else {
        None
    };

    // Project.
    let values: Vec<Value> = plan
        .targets
        .iter()
        .map(|(_, t)| match t {
            TargetPlan::Attr(flat_idx) => flat.get(*flat_idx).clone(),
            TargetPlan::Aggregate(..) => {
                unreachable!("aggregated plans take the aggregate path")
            }
        })
        .collect();
    Ok(Some(ResultRow {
        tuple: Tuple::new(values),
        validity,
        tx,
    }))
}

/// Analyzes and executes a retrieve statement against range declarations.
pub fn execute_retrieve(
    stmt: &Retrieve,
    ranges: &HashMap<String, String>,
    provider: &dyn RelationProvider,
) -> TquelResult<ResultRelation> {
    execute_retrieve_traced(stmt, ranges, provider, noop_recorder())
}

/// Analyzes and executes a retrieve statement with analyze/exec spans
/// recorded into `recorder` (the `explain`/`profile` entry point).
pub fn execute_retrieve_traced(
    stmt: &Retrieve,
    ranges: &HashMap<String, String>,
    provider: &dyn RelationProvider,
    recorder: &Recorder,
) -> TquelResult<ResultRelation> {
    let plan = {
        let _span = recorder.span("tquel/analyze");
        analyze_retrieve(stmt, ranges, provider)?
    };
    execute_plan_traced(&plan, provider, recorder)
}

/// A read-only interpreter session: tracks `range of` declarations and
/// evaluates retrieves.  Modification statements are executed by
/// `chronos-db`'s sessions, which wrap this.
#[derive(Default)]
pub struct QuerySession {
    ranges: HashMap<String, String>,
}

impl QuerySession {
    /// Creates an empty session.
    pub fn new() -> QuerySession {
        QuerySession::default()
    }

    /// The current range declarations.
    pub fn ranges(&self) -> &HashMap<String, String> {
        &self.ranges
    }

    /// Declares a range variable.
    pub fn declare_range(&mut self, var: impl Into<String>, relation: impl Into<String>) {
        self.ranges.insert(var.into(), relation.into());
    }

    /// Executes one parsed statement; returns a relation for retrieves,
    /// `None` for range declarations.  Other statements are rejected
    /// (this session is read-only).
    pub fn execute(
        &mut self,
        stmt: &Statement,
        provider: &dyn RelationProvider,
    ) -> TquelResult<Option<ResultRelation>> {
        match stmt {
            Statement::RangeDecl { var, relation } => {
                if provider.info(relation).is_none() {
                    return Err(TquelError::Semantic(format!(
                        "unknown relation {relation:?}"
                    )));
                }
                self.declare_range(var.clone(), relation.clone());
                Ok(None)
            }
            Statement::Retrieve(r) => Ok(Some(execute_retrieve(r, &self.ranges, provider)?)),
            other => Err(TquelError::Semantic(format!(
                "statement not executable in a read-only query session: {other:?}"
            ))),
        }
    }

    /// Parses and executes a source string, returning the result of the
    /// last retrieve.
    pub fn run(
        &mut self,
        src: &str,
        provider: &dyn RelationProvider,
    ) -> TquelResult<Option<ResultRelation>> {
        let stmts = crate::parser::parse_program(src)?;
        let mut last = None;
        for stmt in &stmts {
            if let Some(rel) = self.execute(stmt, provider)? {
                last = Some(rel);
            }
        }
        Ok(last)
    }
}
