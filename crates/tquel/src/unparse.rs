//! Unparsing: statements back to canonical TQuel text.
//!
//! `parse_statement(unparse(s)) == s` for every statement — the
//! round-trip property test in `tests/prop_parser.rs` is what keeps the
//! parser and this printer honest with each other.  Binary operators
//! are parenthesized conservatively, so the output is unambiguous
//! regardless of precedence.

use std::fmt::Write as _;

use chronos_core::value::AttrType;

use crate::ast::{
    AsOfClause, Assignment, AttrRef, ClassAst, CmpOpAst, Operand, Retrieve, Statement, Target,
    TargetExpr, TexprAst, ValidClause, WhenExpr, WhereExpr,
};

/// Renders a statement as parseable TQuel.
pub fn unparse(stmt: &Statement) -> String {
    let mut out = String::new();
    match stmt {
        Statement::RangeDecl { var, relation } => {
            let _ = write!(out, "range of {var} is {relation}");
        }
        Statement::Retrieve(r) => unparse_retrieve(r, &mut out),
        Statement::Append {
            relation,
            assignments,
            valid,
        } => {
            let _ = write!(out, "append to {relation} ");
            unparse_assignments(assignments, &mut out);
            if let Some(v) = valid {
                out.push(' ');
                unparse_valid(v, &mut out);
            }
        }
        Statement::Delete { var, where_clause } => {
            let _ = write!(out, "delete {var}");
            if let Some(w) = where_clause {
                out.push_str(" where ");
                unparse_where(w, &mut out);
            }
        }
        Statement::Replace {
            var,
            assignments,
            valid,
            where_clause,
        } => {
            let _ = write!(out, "replace {var} ");
            unparse_assignments(assignments, &mut out);
            if let Some(v) = valid {
                out.push(' ');
                unparse_valid(v, &mut out);
            }
            if let Some(w) = where_clause {
                out.push_str(" where ");
                unparse_where(w, &mut out);
            }
        }
        Statement::Create {
            relation,
            attrs,
            class,
            event,
        } => {
            let _ = write!(out, "create {relation} (");
            for (i, (name, ty)) in attrs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let ty = match ty {
                    AttrType::Str => "str",
                    AttrType::Int => "int",
                    AttrType::Float => "float",
                    AttrType::Bool => "bool",
                    AttrType::Date => "date",
                };
                let _ = write!(out, "{name} = {ty}");
            }
            out.push(')');
            let class = match class {
                ClassAst::Static => "static",
                ClassAst::Rollback => "rollback",
                ClassAst::Historical => "historical",
                ClassAst::Temporal => "temporal",
            };
            let _ = write!(out, " as {class}");
            out.push_str(if *event { " event" } else { " interval" });
        }
        Statement::Destroy { relation } => {
            let _ = write!(out, "destroy {relation}");
        }
        Statement::Explain { profile, inner } => {
            out.push_str(if *profile { "profile " } else { "explain " });
            out.push_str(&unparse(inner));
        }
        Statement::Freeze { relation } => {
            let _ = write!(out, "freeze {relation}");
        }
        Statement::Analyze { relation } => {
            let _ = write!(out, "analyze {relation}");
        }
    }
    out
}

fn unparse_retrieve(r: &Retrieve, out: &mut String) {
    out.push_str("retrieve ");
    if let Some(into) = &r.into {
        let _ = write!(out, "into {into} ");
    }
    out.push('(');
    for (i, t) in r.targets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        unparse_target(t, out);
    }
    out.push(')');
    if let Some(v) = &r.valid {
        out.push(' ');
        unparse_valid(v, out);
    }
    if let Some(w) = &r.where_clause {
        out.push_str(" where ");
        unparse_where(w, out);
    }
    if let Some(w) = &r.when_clause {
        out.push_str(" when ");
        unparse_when(w, out);
    }
    if let Some(AsOfClause { at, through }) = &r.as_of {
        out.push_str(" as of ");
        unparse_texpr(at, out);
        if let Some(t) = through {
            out.push_str(" through ");
            unparse_texpr(t, out);
        }
    }
}

fn unparse_target(t: &Target, out: &mut String) {
    if let Some(name) = &t.name {
        let _ = write!(out, "{name} = ");
    }
    match &t.expr {
        TargetExpr::Attr(a) => unparse_attr(a, out),
        TargetExpr::Aggregate(func, a) => {
            let _ = write!(out, "{}(", func.as_str());
            unparse_attr(a, out);
            out.push(')');
        }
    }
}

fn unparse_attr(a: &AttrRef, out: &mut String) {
    let _ = write!(out, "{}.{}", a.var, a.attr);
}

fn unparse_assignments(assignments: &[Assignment], out: &mut String) {
    out.push('(');
    for (i, a) in assignments.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} = ", a.attr);
        unparse_operand(&a.value, out);
    }
    out.push(')');
}

fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn unparse_operand(op: &Operand, out: &mut String) {
    match op {
        Operand::Attr(a) => unparse_attr(a, out),
        Operand::Str(s) => escape_str(s, out),
        Operand::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Operand::Float(x) => {
            let mut text = format!("{x}");
            if !text.contains('.') {
                text.push_str(".0");
            }
            out.push_str(&text);
        }
    }
}

fn unparse_where(w: &WhereExpr, out: &mut String) {
    match w {
        WhereExpr::Cmp(op, a, b) => {
            unparse_operand(a, out);
            let op = match op {
                CmpOpAst::Eq => "=",
                CmpOpAst::Ne => "!=",
                CmpOpAst::Lt => "<",
                CmpOpAst::Le => "<=",
                CmpOpAst::Gt => ">",
                CmpOpAst::Ge => ">=",
            };
            let _ = write!(out, " {op} ");
            unparse_operand(b, out);
        }
        WhereExpr::And(a, b) => {
            out.push('(');
            unparse_where(a, out);
            out.push_str(" and ");
            unparse_where(b, out);
            out.push(')');
        }
        WhereExpr::Or(a, b) => {
            out.push('(');
            unparse_where(a, out);
            out.push_str(" or ");
            unparse_where(b, out);
            out.push(')');
        }
        WhereExpr::Not(a) => {
            out.push_str("not ");
            unparse_where_primary(a, out);
        }
    }
}

fn unparse_where_primary(w: &WhereExpr, out: &mut String) {
    match w {
        // Compounds under `not` must be parenthesized; And/Or already
        // self-parenthesize and Cmp/Not are primaries.
        WhereExpr::Cmp(..) => {
            out.push('(');
            unparse_where(w, out);
            out.push(')');
        }
        _ => unparse_where(w, out),
    }
}

fn unparse_when(w: &WhenExpr, out: &mut String) {
    match w {
        WhenExpr::Overlap(a, b) => {
            unparse_texpr(a, out);
            out.push_str(" overlap ");
            unparse_texpr(b, out);
        }
        WhenExpr::Precede(a, b) => {
            unparse_texpr(a, out);
            out.push_str(" precede ");
            unparse_texpr(b, out);
        }
        WhenExpr::Equal(a, b) => {
            unparse_texpr(a, out);
            out.push_str(" equal ");
            unparse_texpr(b, out);
        }
        WhenExpr::And(a, b) => {
            out.push('(');
            unparse_when(a, out);
            out.push_str(" and ");
            unparse_when(b, out);
            out.push(')');
        }
        WhenExpr::Or(a, b) => {
            out.push('(');
            unparse_when(a, out);
            out.push_str(" or ");
            unparse_when(b, out);
            out.push(')');
        }
        WhenExpr::Not(a) => {
            out.push_str("not ");
            unparse_when_primary(a, out);
        }
    }
}

fn unparse_when_primary(w: &WhenExpr, out: &mut String) {
    match w {
        WhenExpr::Overlap(..) | WhenExpr::Precede(..) | WhenExpr::Equal(..) => {
            out.push('(');
            unparse_when(w, out);
            out.push(')');
        }
        _ => unparse_when(w, out),
    }
}

fn unparse_valid(v: &ValidClause, out: &mut String) {
    match v {
        ValidClause::At(e) => {
            out.push_str("valid at ");
            unparse_texpr(e, out);
        }
        ValidClause::FromTo(a, b) => {
            out.push_str("valid from ");
            unparse_texpr(a, out);
            out.push_str(" to ");
            unparse_texpr(b, out);
        }
    }
}

fn unparse_texpr(e: &TexprAst, out: &mut String) {
    match e {
        TexprAst::Var(v) => out.push_str(v),
        TexprAst::Date(d) => escape_str(d, out),
        TexprAst::Forever => out.push_str("forever"),
        TexprAst::StartOf(a) => {
            out.push_str("start of ");
            unparse_texpr(a, out);
        }
        TexprAst::EndOf(a) => {
            out.push_str("end of ");
            unparse_texpr(a, out);
        }
        TexprAst::Extend(a, b) => {
            out.push('(');
            unparse_texpr(a, out);
            out.push_str(" extend ");
            unparse_texpr(b, out);
            out.push(')');
        }
        TexprAst::Overlap(a, b) => {
            out.push('(');
            unparse_texpr(a, out);
            out.push_str(" overlap ");
            unparse_texpr(b, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn round_trip(src: &str) {
        let ast = parse_statement(src).unwrap();
        let printed = unparse(&ast);
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("unparse output unparseable: {printed:?}: {e}"));
        assert_eq!(reparsed, ast, "round trip changed the AST:\n  {printed}");
    }

    #[test]
    fn round_trips_the_paper_queries() {
        round_trip("range of f is faculty");
        round_trip(r#"retrieve (f.rank) where f.name = "Merrie""#);
        round_trip(r#"retrieve (f.rank) where f.name = "Merrie" as of "12/10/82""#);
        round_trip(
            r#"retrieve (f1.rank)
               where f1.name = "Merrie" and f2.name = "Tom"
               when f1 overlap start of f2
               as of "12/10/82""#,
        );
        round_trip(
            r#"append to faculty (name = "Merrie", rank = "associate")
               valid from "09/01/77" to forever"#,
        );
        round_trip(r#"delete f where f.name = "Mike""#);
        round_trip(
            r#"replace f (rank = "full") valid from "12/01/82" to forever
               where f.name = "Merrie""#,
        );
        round_trip("create promotion (name = str, effective = date) as temporal event");
        round_trip("destroy faculty");
    }

    #[test]
    fn round_trips_tricky_nesting() {
        round_trip(
            r#"retrieve (f.rank)
               when (f1 overlap f2 or f1 precede f2) and not f2 equal f1"#,
        );
        round_trip(
            "retrieve (f1.rank) valid from start of (f1 overlap f2) to end of (f1 extend f2)",
        );
        round_trip(r#"retrieve (f.rank) where not (f.a = "1" or f.b = "2")"#);
        round_trip(r#"retrieve (n = count(f.name), s = sum(f.salary))"#);
        round_trip(r#"retrieve (f.rank) as of "12/10/82" through "12/20/82""#);
        round_trip(r#"retrieve (f.a) where f.x = 3 and f.y = 2.5 and f.z != -7"#);
        round_trip(r#"retrieve into result (who = f.name)"#);
    }

    #[test]
    fn string_escapes_survive() {
        round_trip(r#"retrieve (f.rank) where f.name = "he said \"hi\"\n\t\\""#);
    }

    #[test]
    fn round_trips_explain_and_profile() {
        round_trip(r#"explain retrieve (f.rank) where f.name = "Merrie""#);
        round_trip(r#"profile retrieve (f.rank) as of "12/10/82""#);
        round_trip("explain destroy faculty");
        round_trip("analyze faculty");
        round_trip("explain analyze faculty");
        round_trip("freeze faculty");
        // `select` is a parse-time alias: it round-trips *as* retrieve.
        let alias = parse_statement(r#"profile select (f.rank) where f.name = "Tom""#).unwrap();
        let canonical =
            parse_statement(r#"profile retrieve (f.rank) where f.name = "Tom""#).unwrap();
        assert_eq!(alias, canonical);
        round_trip(&unparse(&alias));
    }
}
