//! Statement fingerprinting: literal-insensitive workload shapes.
//!
//! Two statements that differ only in their literals — `where f.name =
//! "Merrie"` versus `where f.name = "Tom"`, `as of "12/10/82"` versus
//! `as of "06/01/81"` — exercise the same plan and belong to the same
//! workload entry.  [`normalize_statement`] rewrites an AST so every
//! scalar literal (string, int, float) becomes the string `"?"` and
//! every date literal becomes the date `"?"`, preserving everything
//! structural: statement kind, range variables, relations, attribute
//! names, operators, clause order, and nesting.  The normalized AST is
//! then unparsed and hashed with FNV-1a (64-bit), giving a stable
//! fingerprint plus a human-readable normalized text like
//!
//! ```text
//! retrieve (f.rank) where f.name = "?" as of "?"
//! ```
//!
//! The rules, with worked examples, are documented in DESIGN.md §6e.
//! Because the normalized text is itself valid TQuel (`"?"` is an
//! ordinary string literal), it round-trips through the parser — a
//! property the tests pin down.

use crate::ast::*;
use crate::unparse::unparse;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` — tiny, dependency-free, and stable across
/// platforms and runs (unlike `DefaultHasher`, which is randomly
/// seeded per process).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprints a statement: returns the FNV-1a hash of the normalized
/// text together with the normalized text itself.
pub fn fingerprint(stmt: &Statement) -> (u64, String) {
    let text = unparse(&normalize_statement(stmt));
    (fnv1a(text.as_bytes()), text)
}

/// Rewrites `stmt` with every literal replaced by `"?"`, keeping the
/// structure intact.  The result still parses.
pub fn normalize_statement(stmt: &Statement) -> Statement {
    match stmt {
        Statement::RangeDecl { .. } | Statement::Create { .. } | Statement::Destroy { .. } => {
            stmt.clone()
        }
        Statement::Analyze { .. } | Statement::Freeze { .. } => stmt.clone(),
        Statement::Retrieve(r) => Statement::Retrieve(Retrieve {
            into: r.into.clone(),
            targets: r.targets.clone(),
            valid: r.valid.as_ref().map(norm_valid),
            where_clause: r.where_clause.as_ref().map(norm_where),
            when_clause: r.when_clause.as_ref().map(norm_when),
            as_of: r.as_of.as_ref().map(norm_as_of),
        }),
        Statement::Append {
            relation,
            assignments,
            valid,
        } => Statement::Append {
            relation: relation.clone(),
            assignments: assignments.iter().map(norm_assignment).collect(),
            valid: valid.as_ref().map(norm_valid),
        },
        Statement::Delete { var, where_clause } => Statement::Delete {
            var: var.clone(),
            where_clause: where_clause.as_ref().map(norm_where),
        },
        Statement::Replace {
            var,
            assignments,
            valid,
            where_clause,
        } => Statement::Replace {
            var: var.clone(),
            assignments: assignments.iter().map(norm_assignment).collect(),
            valid: valid.as_ref().map(norm_valid),
            where_clause: where_clause.as_ref().map(norm_where),
        },
        Statement::Explain { profile, inner } => Statement::Explain {
            profile: *profile,
            inner: Box::new(normalize_statement(inner)),
        },
    }
}

fn norm_operand(op: &Operand) -> Operand {
    match op {
        Operand::Attr(a) => Operand::Attr(a.clone()),
        Operand::Str(_) | Operand::Int(_) | Operand::Float(_) => Operand::Str("?".into()),
    }
}

fn norm_assignment(a: &Assignment) -> Assignment {
    Assignment {
        attr: a.attr.clone(),
        value: norm_operand(&a.value),
    }
}

fn norm_where(w: &WhereExpr) -> WhereExpr {
    match w {
        WhereExpr::Cmp(op, l, r) => WhereExpr::Cmp(*op, norm_operand(l), norm_operand(r)),
        WhereExpr::And(l, r) => WhereExpr::And(Box::new(norm_where(l)), Box::new(norm_where(r))),
        WhereExpr::Or(l, r) => WhereExpr::Or(Box::new(norm_where(l)), Box::new(norm_where(r))),
        WhereExpr::Not(e) => WhereExpr::Not(Box::new(norm_where(e))),
    }
}

fn norm_texpr(e: &TexprAst) -> TexprAst {
    match e {
        TexprAst::Var(v) => TexprAst::Var(v.clone()),
        TexprAst::Date(_) => TexprAst::Date("?".into()),
        TexprAst::Forever => TexprAst::Forever,
        TexprAst::StartOf(inner) => TexprAst::StartOf(Box::new(norm_texpr(inner))),
        TexprAst::EndOf(inner) => TexprAst::EndOf(Box::new(norm_texpr(inner))),
        TexprAst::Extend(l, r) => {
            TexprAst::Extend(Box::new(norm_texpr(l)), Box::new(norm_texpr(r)))
        }
        TexprAst::Overlap(l, r) => {
            TexprAst::Overlap(Box::new(norm_texpr(l)), Box::new(norm_texpr(r)))
        }
    }
}

fn norm_when(w: &WhenExpr) -> WhenExpr {
    match w {
        WhenExpr::Overlap(l, r) => WhenExpr::Overlap(norm_texpr(l), norm_texpr(r)),
        WhenExpr::Precede(l, r) => WhenExpr::Precede(norm_texpr(l), norm_texpr(r)),
        WhenExpr::Equal(l, r) => WhenExpr::Equal(norm_texpr(l), norm_texpr(r)),
        WhenExpr::And(l, r) => WhenExpr::And(Box::new(norm_when(l)), Box::new(norm_when(r))),
        WhenExpr::Or(l, r) => WhenExpr::Or(Box::new(norm_when(l)), Box::new(norm_when(r))),
        WhenExpr::Not(e) => WhenExpr::Not(Box::new(norm_when(e))),
    }
}

fn norm_valid(v: &ValidClause) -> ValidClause {
    match v {
        ValidClause::At(e) => ValidClause::At(norm_texpr(e)),
        ValidClause::FromTo(a, b) => ValidClause::FromTo(norm_texpr(a), norm_texpr(b)),
    }
}

fn norm_as_of(a: &AsOfClause) -> AsOfClause {
    AsOfClause {
        at: norm_texpr(&a.at),
        through: a.through.as_ref().map(norm_texpr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn fp(src: &str) -> (u64, String) {
        fingerprint(&parse_statement(src).unwrap())
    }

    #[test]
    fn literals_collapse_to_one_fingerprint() {
        let (h1, t1) = fp(r#"retrieve (f.rank) where f.name = "Merrie" as of "12/10/82""#);
        let (h2, t2) = fp(r#"retrieve (f.rank) where f.name = "Tom" as of "06/01/81""#);
        assert_eq!(h1, h2);
        assert_eq!(t1, t2);
        assert_eq!(t1, r#"retrieve (f.rank) where f.name = "?" as of "?""#);
        // Int and float literals normalize the same way.
        let (h3, _) = fp("retrieve (f.a) where f.x = 3");
        let (h4, _) = fp("retrieve (f.a) where f.x = 99");
        assert_eq!(h3, h4);
    }

    #[test]
    fn structure_still_distinguishes() {
        let (base, _) = fp(r#"retrieve (f.rank) where f.name = "Merrie""#);
        // Different target list, predicate shape, attribute, or kind:
        // all distinct shapes.
        assert_ne!(base, fp(r#"retrieve (f.name) where f.name = "Merrie""#).0);
        assert_ne!(base, fp(r#"retrieve (f.rank) where f.rank = "Merrie""#).0);
        assert_ne!(base, fp(r#"retrieve (f.rank) where f.name != "Merrie""#).0);
        assert_ne!(base, fp(r#"retrieve (f.rank)"#).0);
        assert_ne!(base, fp(r#"delete f where f.name = "Merrie""#).0);
    }

    #[test]
    fn normalized_text_round_trips() {
        for src in [
            r#"retrieve (f.rank) where f.name = "Merrie" and f.x = 3 or not f.y = 2.5"#,
            r#"append to faculty (name = "Tom", rank = "full") valid from "09/01/77" to forever"#,
            r#"replace f (rank = "full") valid at "12/01/82" where f.name = "Merrie""#,
            r#"retrieve (f1.rank) when f1 overlap start of f2 as of "12/10/82" through "12/20/82""#,
            "explain analyze faculty",
        ] {
            let norm = normalize_statement(&parse_statement(src).unwrap());
            let text = unparse(&norm);
            let reparsed = parse_statement(&text)
                .unwrap_or_else(|e| panic!("normalized text unparseable: {text:?}: {e}"));
            assert_eq!(reparsed, norm, "round trip changed the shape: {text}");
        }
    }

    #[test]
    fn structural_statements_pass_through() {
        let (_, t) = fp("analyze faculty");
        assert_eq!(t, "analyze faculty");
        let (_, t) = fp("range of f is faculty");
        assert_eq!(t, "range of f is faculty");
        // Explain wraps: the inner statement's literals still collapse.
        let (h1, _) = fp(r#"explain retrieve (f.rank) where f.name = "A""#);
        let (h2, _) = fp(r#"explain retrieve (f.rank) where f.name = "B""#);
        assert_eq!(h1, h2);
    }

    #[test]
    fn hash_is_stable_across_runs() {
        // FNV-1a is seedless: pin one value so accidental algorithm
        // changes (which would orphan persisted fingerprints) show up.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
