//! Abstract syntax of Quel/TQuel statements.

use chronos_core::value::AttrType;

/// A reference to `var.attr`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttrRef {
    /// The range variable.
    pub var: String,
    /// The attribute name.
    pub attr: String,
}

/// A scalar operand in a `where` clause or target list.
#[derive(Clone, PartialEq, Debug)]
pub enum Operand {
    /// `var.attr`
    Attr(AttrRef),
    /// A string literal.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
}

/// Comparison operators (surface syntax).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOpAst {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A `where` clause expression.
#[derive(Clone, PartialEq, Debug)]
pub enum WhereExpr {
    /// Comparison of two operands.
    Cmp(CmpOpAst, Operand, Operand),
    /// Conjunction.
    And(Box<WhereExpr>, Box<WhereExpr>),
    /// Disjunction.
    Or(Box<WhereExpr>, Box<WhereExpr>),
    /// Negation.
    Not(Box<WhereExpr>),
}

/// A temporal expression in `when` / `valid` / `as of` position.
#[derive(Clone, PartialEq, Debug)]
pub enum TexprAst {
    /// A range variable's valid time.
    Var(String),
    /// A date literal (quoted, e.g. `"12/10/82"`).
    Date(String),
    /// The `forever` literal — the end of time (`∞`).
    Forever,
    /// `start of e`
    StartOf(Box<TexprAst>),
    /// `end of e`
    EndOf(Box<TexprAst>),
    /// `e1 extend e2`
    Extend(Box<TexprAst>, Box<TexprAst>),
    /// `e1 overlap e2` used as an expression (intersection).
    Overlap(Box<TexprAst>, Box<TexprAst>),
}

/// A `when` clause predicate.
#[derive(Clone, PartialEq, Debug)]
pub enum WhenExpr {
    /// `e1 overlap e2`
    Overlap(TexprAst, TexprAst),
    /// `e1 precede e2`
    Precede(TexprAst, TexprAst),
    /// `e1 equal e2`
    Equal(TexprAst, TexprAst),
    /// Conjunction.
    And(Box<WhenExpr>, Box<WhenExpr>),
    /// Disjunction.
    Or(Box<WhenExpr>, Box<WhenExpr>),
    /// Negation.
    Not(Box<WhenExpr>),
}

/// The `valid` clause of a retrieve or modification statement.
#[derive(Clone, PartialEq, Debug)]
pub enum ValidClause {
    /// `valid at e` — an event instant (or the start instant of `e`).
    At(TexprAst),
    /// `valid from e1 to e2` — a period.
    FromTo(TexprAst, TexprAst),
}

/// The `as of` clause.
#[derive(Clone, PartialEq, Debug)]
pub struct AsOfClause {
    /// The rollback instant.
    pub at: TexprAst,
    /// Optional second instant: `as of e1 through e2`.
    pub through: Option<TexprAst>,
}

/// Aggregate functions usable in a target list (Quel's aggregate
/// operators, minus grouping).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    /// `count(var.attr)` — number of qualifying rows.
    Count,
    /// `sum(var.attr)` over an int or float attribute.
    Sum,
    /// `avg(var.attr)` over an int or float attribute.
    Avg,
    /// `min(var.attr)`.
    Min,
    /// `max(var.attr)`.
    Max,
}

impl AggFunc {
    /// Parses a function name (contextual, not a reserved word).
    pub fn from_name(s: &str) -> Option<AggFunc> {
        match s {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// The canonical spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// The value expression of one target-list entry.
#[derive(Clone, PartialEq, Debug)]
pub enum TargetExpr {
    /// `var.attr`
    Attr(AttrRef),
    /// `func(var.attr)` — an aggregate over the qualifying rows.
    Aggregate(AggFunc, AttrRef),
}

/// One entry of a retrieve target list:
/// `[name =] var.attr` or `[name =] func(var.attr)`.
#[derive(Clone, PartialEq, Debug)]
pub struct Target {
    /// Result attribute name (defaults to the source attribute name, or
    /// to the function name for aggregates).
    pub name: Option<String>,
    /// What to compute.
    pub expr: TargetExpr,
}

/// One entry of an append/replace assignment list: `attr = literal`.
#[derive(Clone, PartialEq, Debug)]
pub struct Assignment {
    /// The target attribute name.
    pub attr: String,
    /// The assigned literal.
    pub value: Operand,
}

/// A `retrieve` statement.
#[derive(Clone, PartialEq, Debug)]
pub struct Retrieve {
    /// `retrieve into <name>` destination, if any.
    pub into: Option<String>,
    /// The target list.
    pub targets: Vec<Target>,
    /// `valid …` clause.
    pub valid: Option<ValidClause>,
    /// `where …` clause.
    pub where_clause: Option<WhereExpr>,
    /// `when …` clause.
    pub when_clause: Option<WhenExpr>,
    /// `as of …` clause.
    pub as_of: Option<AsOfClause>,
}

/// Relation classes in `create` statements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClassAst {
    /// `as static`
    Static,
    /// `as rollback`
    Rollback,
    /// `as historical`
    Historical,
    /// `as temporal`
    Temporal,
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Statement {
    /// `range of f is faculty`
    RangeDecl {
        /// The variable being declared.
        var: String,
        /// The relation it ranges over.
        relation: String,
    },
    /// `retrieve …`
    Retrieve(Retrieve),
    /// `append to rel (a = v, …) [valid …]`
    Append {
        /// Target relation.
        relation: String,
        /// Attribute assignments.
        assignments: Vec<Assignment>,
        /// Valid-time stamp for the new tuple.
        valid: Option<ValidClause>,
    },
    /// `delete f [where …]`
    Delete {
        /// The range variable naming the target rows.
        var: String,
        /// Row filter.
        where_clause: Option<WhereExpr>,
    },
    /// `replace f (a = v, …) [valid …] [where …]`
    Replace {
        /// The range variable naming the target rows.
        var: String,
        /// Attribute assignments (unmentioned attributes keep their
        /// values).
        assignments: Vec<Assignment>,
        /// New valid-time stamp, if any.
        valid: Option<ValidClause>,
        /// Row filter.
        where_clause: Option<WhereExpr>,
    },
    /// `create rel (a = str, …) [as class] [event|interval]`
    Create {
        /// The new relation's name.
        relation: String,
        /// `(name, type)` attribute declarations.
        attrs: Vec<(String, AttrType)>,
        /// Relation class (defaults to temporal).
        class: ClassAst,
        /// Event or interval signature (defaults to interval).
        event: bool,
    },
    /// `destroy rel`
    Destroy {
        /// The relation to drop.
        relation: String,
    },
    /// `explain stmt` / `profile stmt` — run the wrapped statement with
    /// a trace capture and report the span tree instead of (or, for
    /// `profile`, alongside) its normal output.  `explain` shows
    /// structure, access paths, and row counts; `profile` adds wall
    /// times.  Both words are contextual identifiers, not reserved.
    Explain {
        /// True for `profile` (include timings).
        profile: bool,
        /// The statement being traced.
        inner: Box<Statement>,
    },
    /// `analyze rel` — collect temporal storage statistics for a
    /// relation into the `sys$tablestats` system relation.  Like
    /// `explain`, `analyze` is a contextual identifier, not reserved.
    Analyze {
        /// The relation to collect statistics over.
        relation: String,
    },
    /// `freeze rel` — migrate the relation's closed (wholly-past)
    /// versions off the mutable heap into an immutable, mmap-backed
    /// segment file.  Contextual identifier, like `analyze`.
    Freeze {
        /// The relation whose history to freeze.
        relation: String,
    },
}
