//! TQuel error types.

use std::fmt;

use chronos_core::CoreError;

/// Result alias for TQuel operations.
pub type TquelResult<T> = Result<T, TquelError>;

/// Errors from lexing, parsing, semantic analysis, or execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TquelError {
    /// A lexical error at a byte offset.
    Lex {
        /// What went wrong.
        message: String,
        /// Byte offset into the source.
        offset: usize,
    },
    /// A parse error at a byte offset.
    Parse {
        /// What went wrong (includes what was expected).
        message: String,
        /// Byte offset into the source.
        offset: usize,
    },
    /// A semantic error (unknown relation, unknown attribute, type
    /// mismatch, clause not supported by the relation's class).
    Semantic(String),
    /// An error from the relation layer during execution.
    Core(CoreError),
}

impl fmt::Display for TquelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TquelError::Lex { message, offset } => {
                write!(f, "lexical error at offset {offset}: {message}")
            }
            TquelError::Parse { message, offset } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            TquelError::Semantic(m) => write!(f, "semantic error: {m}"),
            TquelError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TquelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TquelError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for TquelError {
    fn from(e: CoreError) -> Self {
        TquelError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position() {
        let e = TquelError::Parse {
            message: "expected ')'".into(),
            offset: 17,
        };
        let s = e.to_string();
        assert!(s.contains("17") && s.contains("')'"));
    }
}
