//! Recursive-descent parser for Quel/TQuel.
//!
//! The grammar follows the paper's examples:
//!
//! ```text
//! statement   := range | retrieve | append | delete | replace
//!              | create | destroy
//!              | ("explain" | "profile") statement
//!              | "analyze" ident
//!              | "freeze" ident
//!              ; "select" is accepted as an alias for "retrieve";
//!              ; explain/profile/select/analyze/freeze are contextual
//!              ; identifiers, not reserved
//! range       := "range" "of" ident "is" ident
//! retrieve    := "retrieve" ["into" ident] "(" target {"," target} ")"
//!                { "valid" valid | "where" wexpr | "when" pred
//!                | "as" "of" texpr ["through" texpr] }
//! target      := [ident "="] ident "." ident
//! valid       := "at" texpr | "from" texpr "to" texpr
//! pred        := por ; por := pand {"or" pand}
//! pand        := pnot {"and" pnot} ; pnot := "not" pnot | pprim
//! pprim       := "(" por ")" | texpr ("overlap"|"precede"|"equal") texpr
//! texpr       := tprefix {("extend" | "overlap") tprefix}
//! tprefix     := ("start"|"end") "of" tprefix | tatom
//! tatom       := string | ident | "(" texpr ")"
//! wexpr       := wor ; wor := wand {"or" wand} ; wand := wnot {"and" wnot}
//! wnot        := "not" wnot | wprim
//! wprim       := "(" wor ")" | operand cmp operand
//! operand     := ident "." ident | string | int | float
//! ```
//!
//! Inside a `when` predicate the binary `overlap` at top level is the
//! *predicate*; inside a `valid` clause or parentheses it is the
//! intersection *expression* — the parser disambiguates by context, as
//! TQuel does.

use chronos_core::value::AttrType;

use crate::ast::*;
use crate::error::{TquelError, TquelResult};
use crate::token::{lex, Keyword as K, Token, TokenKind as T};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses a whole program (sequence of statements).
pub fn parse_program(src: &str) -> TquelResult<Vec<Statement>> {
    let mut p = Parser {
        tokens: lex(src)?,
        pos: 0,
    };
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parses exactly one statement (trailing input is an error).
pub fn parse_statement(src: &str) -> TquelResult<Statement> {
    let mut p = Parser {
        tokens: lex(src)?,
        pos: 0,
    };
    let stmt = p.statement()?;
    if !p.at_eof() {
        return Err(p.error("trailing input after statement"));
    }
    Ok(stmt)
}

impl Parser {
    fn peek(&self) -> &T {
        &self.tokens[self.pos].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), T::Eof)
    }

    fn bump(&mut self) -> T {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> TquelError {
        TquelError::Parse {
            message: format!("{} (found {})", message.into(), self.peek()),
            offset: self.tokens[self.pos].offset,
        }
    }

    fn expect_kw(&mut self, k: K) -> TquelResult<()> {
        match self.peek() {
            T::Keyword(got) if *got == k => {
                self.bump();
                Ok(())
            }
            _ => Err(self.error(format!("expected keyword '{k}'"))),
        }
    }

    fn eat_kw(&mut self, k: K) -> bool {
        if matches!(self.peek(), T::Keyword(got) if *got == k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: T) -> TquelResult<()> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {t}")))
        }
    }

    fn ident(&mut self) -> TquelResult<String> {
        match self.peek() {
            T::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    // ----------------------------------------------------------------
    // Statements
    // ----------------------------------------------------------------

    fn statement(&mut self) -> TquelResult<Statement> {
        match self.peek() {
            T::Keyword(K::Range) => self.range_decl(),
            T::Keyword(K::Retrieve) => self.retrieve(),
            T::Keyword(K::Append) => self.append(),
            T::Keyword(K::Delete) => self.delete(),
            T::Keyword(K::Replace) => self.replace(),
            T::Keyword(K::Create) => self.create(),
            T::Keyword(K::Destroy) => self.destroy(),
            // `explain`, `profile`, and `select` are *contextual*
            // identifiers (like aggregate function names): recognised
            // only in statement-initial position, so relations and
            // attributes may still use the words freely.
            T::Ident(s) if s.eq_ignore_ascii_case("explain") => {
                self.bump();
                Ok(Statement::Explain {
                    profile: false,
                    inner: Box::new(self.statement()?),
                })
            }
            T::Ident(s) if s.eq_ignore_ascii_case("profile") => {
                self.bump();
                Ok(Statement::Explain {
                    profile: true,
                    inner: Box::new(self.statement()?),
                })
            }
            T::Ident(s) if s.eq_ignore_ascii_case("select") => {
                // SQL-flavoured alias for `retrieve`.
                self.bump();
                self.retrieve_tail()
            }
            T::Ident(s) if s.eq_ignore_ascii_case("analyze") => {
                self.bump();
                let relation = self.ident()?;
                Ok(Statement::Analyze { relation })
            }
            T::Ident(s) if s.eq_ignore_ascii_case("freeze") => {
                self.bump();
                let relation = self.ident()?;
                Ok(Statement::Freeze { relation })
            }
            _ => Err(self.error("expected a statement")),
        }
    }

    fn range_decl(&mut self) -> TquelResult<Statement> {
        self.expect_kw(K::Range)?;
        self.expect_kw(K::Of)?;
        let var = self.ident()?;
        self.expect_kw(K::Is)?;
        let relation = self.ident()?;
        Ok(Statement::RangeDecl { var, relation })
    }

    fn retrieve(&mut self) -> TquelResult<Statement> {
        self.expect_kw(K::Retrieve)?;
        self.retrieve_tail()
    }

    /// Everything after the `retrieve` keyword (shared with the
    /// `select` alias).
    fn retrieve_tail(&mut self) -> TquelResult<Statement> {
        let into = if self.eat_kw(K::Into) {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(T::LParen)?;
        let mut targets = vec![self.target()?];
        while matches!(self.peek(), T::Comma) {
            self.bump();
            targets.push(self.target()?);
        }
        self.expect(T::RParen)?;

        let mut valid = None;
        let mut where_clause = None;
        let mut when_clause = None;
        let mut as_of = None;
        loop {
            match self.peek() {
                T::Keyword(K::Valid) if valid.is_none() => {
                    self.bump();
                    valid = Some(self.valid_clause()?);
                }
                T::Keyword(K::Where) if where_clause.is_none() => {
                    self.bump();
                    where_clause = Some(self.where_expr()?);
                }
                T::Keyword(K::When) if when_clause.is_none() => {
                    self.bump();
                    when_clause = Some(self.when_expr()?);
                }
                T::Keyword(K::As) if as_of.is_none() => {
                    self.bump();
                    self.expect_kw(K::Of)?;
                    let at = self.texpr(false)?;
                    let through = if self.eat_kw(K::Through) {
                        Some(self.texpr(false)?)
                    } else {
                        None
                    };
                    as_of = Some(AsOfClause { at, through });
                }
                _ => break,
            }
        }
        Ok(Statement::Retrieve(Retrieve {
            into,
            targets,
            valid,
            where_clause,
            when_clause,
            as_of,
        }))
    }

    fn target(&mut self) -> TquelResult<Target> {
        // [name =] (var.attr | func(var.attr)) — lookahead distinguishes
        // `x = f.a` from `f.a` from `count(f.a)`.
        let first = self.ident()?;
        match self.peek() {
            T::Eq => {
                self.bump();
                let expr = self.target_expr()?;
                Ok(Target {
                    name: Some(first),
                    expr,
                })
            }
            T::Dot => {
                self.bump();
                let attr = self.ident()?;
                Ok(Target {
                    name: None,
                    expr: TargetExpr::Attr(AttrRef { var: first, attr }),
                })
            }
            T::LParen => {
                let func = AggFunc::from_name(&first)
                    .ok_or_else(|| self.error(format!("unknown aggregate function {first:?}")))?;
                self.bump();
                let var = self.ident()?;
                self.expect(T::Dot)?;
                let attr = self.ident()?;
                self.expect(T::RParen)?;
                Ok(Target {
                    name: None,
                    expr: TargetExpr::Aggregate(func, AttrRef { var, attr }),
                })
            }
            _ => Err(self.error("expected '.', '=', or '(' in target")),
        }
    }

    fn target_expr(&mut self) -> TquelResult<TargetExpr> {
        let first = self.ident()?;
        match self.peek() {
            T::Dot => {
                self.bump();
                let attr = self.ident()?;
                Ok(TargetExpr::Attr(AttrRef { var: first, attr }))
            }
            T::LParen => {
                let func = AggFunc::from_name(&first)
                    .ok_or_else(|| self.error(format!("unknown aggregate function {first:?}")))?;
                self.bump();
                let var = self.ident()?;
                self.expect(T::Dot)?;
                let attr = self.ident()?;
                self.expect(T::RParen)?;
                Ok(TargetExpr::Aggregate(func, AttrRef { var, attr }))
            }
            _ => Err(self.error("expected '.' or '(' after identifier in target")),
        }
    }

    fn valid_clause(&mut self) -> TquelResult<ValidClause> {
        if self.eat_kw(K::At) {
            Ok(ValidClause::At(self.texpr(true)?))
        } else if self.eat_kw(K::From) {
            let from = self.texpr(true)?;
            self.expect_kw(K::To)?;
            let to = self.texpr(true)?;
            Ok(ValidClause::FromTo(from, to))
        } else {
            Err(self.error("expected 'at' or 'from' after 'valid'"))
        }
    }

    fn append(&mut self) -> TquelResult<Statement> {
        self.expect_kw(K::Append)?;
        let _ = self.eat_kw(K::To);
        let relation = self.ident()?;
        let assignments = self.assignment_list()?;
        let valid = if self.eat_kw(K::Valid) {
            Some(self.valid_clause()?)
        } else {
            None
        };
        Ok(Statement::Append {
            relation,
            assignments,
            valid,
        })
    }

    fn delete(&mut self) -> TquelResult<Statement> {
        self.expect_kw(K::Delete)?;
        let var = self.ident()?;
        let where_clause = if self.eat_kw(K::Where) {
            Some(self.where_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { var, where_clause })
    }

    fn replace(&mut self) -> TquelResult<Statement> {
        self.expect_kw(K::Replace)?;
        let var = self.ident()?;
        let assignments = self.assignment_list()?;
        let mut valid = None;
        let mut where_clause = None;
        loop {
            match self.peek() {
                T::Keyword(K::Valid) if valid.is_none() => {
                    self.bump();
                    valid = Some(self.valid_clause()?);
                }
                T::Keyword(K::Where) if where_clause.is_none() => {
                    self.bump();
                    where_clause = Some(self.where_expr()?);
                }
                _ => break,
            }
        }
        Ok(Statement::Replace {
            var,
            assignments,
            valid,
            where_clause,
        })
    }

    fn assignment_list(&mut self) -> TquelResult<Vec<Assignment>> {
        self.expect(T::LParen)?;
        let mut out = vec![self.assignment()?];
        while matches!(self.peek(), T::Comma) {
            self.bump();
            out.push(self.assignment()?);
        }
        self.expect(T::RParen)?;
        Ok(out)
    }

    fn assignment(&mut self) -> TquelResult<Assignment> {
        let attr = self.ident()?;
        self.expect(T::Eq)?;
        let value = self.operand()?;
        Ok(Assignment { attr, value })
    }

    fn create(&mut self) -> TquelResult<Statement> {
        self.expect_kw(K::Create)?;
        let relation = self.ident()?;
        self.expect(T::LParen)?;
        let mut attrs = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect(T::Eq)?;
            let ty = self.attr_type()?;
            attrs.push((name, ty));
            if matches!(self.peek(), T::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(T::RParen)?;
        let class = if self.eat_kw(K::As) {
            match self.bump() {
                T::Keyword(K::Static) => ClassAst::Static,
                T::Keyword(K::Rollback) => ClassAst::Rollback,
                T::Keyword(K::Historical) => ClassAst::Historical,
                T::Keyword(K::Temporal) => ClassAst::Temporal,
                _ => return Err(self.error("expected a relation class after 'as'")),
            }
        } else {
            ClassAst::Temporal
        };
        let event = if self.eat_kw(K::Event) {
            true
        } else {
            let _ = self.eat_kw(K::Interval);
            false
        };
        Ok(Statement::Create {
            relation,
            attrs,
            class,
            event,
        })
    }

    fn attr_type(&mut self) -> TquelResult<AttrType> {
        let name = self.ident()?;
        match name.as_str() {
            "str" | "string" | "char" => Ok(AttrType::Str),
            "int" | "i4" | "integer" => Ok(AttrType::Int),
            "float" | "f8" => Ok(AttrType::Float),
            "bool" | "boolean" => Ok(AttrType::Bool),
            "date" => Ok(AttrType::Date),
            other => Err(TquelError::Semantic(format!(
                "unknown attribute type {other:?}"
            ))),
        }
    }

    fn destroy(&mut self) -> TquelResult<Statement> {
        self.expect_kw(K::Destroy)?;
        let relation = self.ident()?;
        Ok(Statement::Destroy { relation })
    }

    // ----------------------------------------------------------------
    // Where expressions
    // ----------------------------------------------------------------

    fn where_expr(&mut self) -> TquelResult<WhereExpr> {
        self.where_or()
    }

    fn where_or(&mut self) -> TquelResult<WhereExpr> {
        let mut left = self.where_and()?;
        while self.eat_kw(K::Or) {
            let right = self.where_and()?;
            left = WhereExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn where_and(&mut self) -> TquelResult<WhereExpr> {
        let mut left = self.where_not()?;
        while self.eat_kw(K::And) {
            let right = self.where_not()?;
            left = WhereExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn where_not(&mut self) -> TquelResult<WhereExpr> {
        if self.eat_kw(K::Not) {
            Ok(WhereExpr::Not(Box::new(self.where_not()?)))
        } else {
            self.where_primary()
        }
    }

    fn where_primary(&mut self) -> TquelResult<WhereExpr> {
        if matches!(self.peek(), T::LParen) {
            self.bump();
            let inner = self.where_or()?;
            self.expect(T::RParen)?;
            return Ok(inner);
        }
        let left = self.operand()?;
        let op = match self.bump() {
            T::Eq => CmpOpAst::Eq,
            T::Ne => CmpOpAst::Ne,
            T::Lt => CmpOpAst::Lt,
            T::Le => CmpOpAst::Le,
            T::Gt => CmpOpAst::Gt,
            T::Ge => CmpOpAst::Ge,
            _ => {
                self.pos -= 1;
                return Err(self.error("expected a comparison operator"));
            }
        };
        let right = self.operand()?;
        Ok(WhereExpr::Cmp(op, left, right))
    }

    fn operand(&mut self) -> TquelResult<Operand> {
        match self.peek() {
            T::Ident(_) => {
                let var = self.ident()?;
                self.expect(T::Dot)?;
                let attr = self.ident()?;
                Ok(Operand::Attr(AttrRef { var, attr }))
            }
            T::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(Operand::Str(s))
            }
            T::Int(i) => {
                let i = *i;
                self.bump();
                Ok(Operand::Int(i))
            }
            T::Float(x) => {
                let x = *x;
                self.bump();
                Ok(Operand::Float(x))
            }
            _ => Err(self.error("expected an operand")),
        }
    }

    // ----------------------------------------------------------------
    // Temporal expressions and when predicates
    // ----------------------------------------------------------------

    /// `allow_overlap`: whether a top-level binary `overlap` is parsed as
    /// the intersection expression (valid-clause position) or left for
    /// the caller (when-predicate position).
    fn texpr(&mut self, allow_overlap: bool) -> TquelResult<TexprAst> {
        let mut left = self.texpr_prefix()?;
        loop {
            if self.eat_kw(K::Extend) {
                let right = self.texpr_prefix()?;
                left = TexprAst::Extend(Box::new(left), Box::new(right));
            } else if allow_overlap && matches!(self.peek(), T::Keyword(K::Overlap)) {
                self.bump();
                let right = self.texpr_prefix()?;
                left = TexprAst::Overlap(Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn texpr_prefix(&mut self) -> TquelResult<TexprAst> {
        if self.eat_kw(K::Start) {
            self.expect_kw(K::Of)?;
            return Ok(TexprAst::StartOf(Box::new(self.texpr_prefix()?)));
        }
        if self.eat_kw(K::End) {
            self.expect_kw(K::Of)?;
            return Ok(TexprAst::EndOf(Box::new(self.texpr_prefix()?)));
        }
        match self.peek() {
            T::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(TexprAst::Date(s))
            }
            T::Keyword(K::Forever) => {
                self.bump();
                Ok(TexprAst::Forever)
            }
            T::Ident(_) => Ok(TexprAst::Var(self.ident()?)),
            T::LParen => {
                self.bump();
                let inner = self.texpr(true)?;
                self.expect(T::RParen)?;
                Ok(inner)
            }
            _ => Err(self.error("expected a temporal expression")),
        }
    }

    fn when_expr(&mut self) -> TquelResult<WhenExpr> {
        self.when_or()
    }

    fn when_or(&mut self) -> TquelResult<WhenExpr> {
        let mut left = self.when_and()?;
        while self.eat_kw(K::Or) {
            let right = self.when_and()?;
            left = WhenExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn when_and(&mut self) -> TquelResult<WhenExpr> {
        let mut left = self.when_not()?;
        while self.eat_kw(K::And) {
            let right = self.when_not()?;
            left = WhenExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn when_not(&mut self) -> TquelResult<WhenExpr> {
        if self.eat_kw(K::Not) {
            Ok(WhenExpr::Not(Box::new(self.when_not()?)))
        } else {
            self.when_primary()
        }
    }

    fn when_primary(&mut self) -> TquelResult<WhenExpr> {
        // `( … )` is ambiguous: it may parenthesize a predicate or a
        // temporal expression.  Try the predicate reading first — but if
        // the closing paren is followed by a temporal operator, the
        // parens enclosed a temporal expression (`(a overlap b) equal c`),
        // so backtrack and take the expression path.
        if matches!(self.peek(), T::LParen) {
            let save = self.pos;
            self.bump();
            if let Ok(inner) = self.when_or() {
                if matches!(self.peek(), T::RParen) {
                    self.bump();
                    let continues_as_texpr = matches!(
                        self.peek(),
                        T::Keyword(K::Overlap)
                            | T::Keyword(K::Precede)
                            | T::Keyword(K::Equal)
                            | T::Keyword(K::Extend)
                    );
                    if !continues_as_texpr {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
        }
        let left = self.texpr(false)?;
        if self.eat_kw(K::Overlap) {
            Ok(WhenExpr::Overlap(left, self.texpr(false)?))
        } else if self.eat_kw(K::Precede) {
            Ok(WhenExpr::Precede(left, self.texpr(false)?))
        } else if self.eat_kw(K::Equal) {
            Ok(WhenExpr::Equal(left, self.texpr(false)?))
        } else {
            Err(self.error("expected 'overlap', 'precede', or 'equal'"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_range_and_simple_retrieve() {
        let stmts = parse_program(
            r#"
            range of f is faculty
            retrieve (f.rank) where f.name = "Merrie"
            "#,
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(
            stmts[0],
            Statement::RangeDecl {
                var: "f".into(),
                relation: "faculty".into()
            }
        );
        match &stmts[1] {
            Statement::Retrieve(r) => {
                assert_eq!(r.targets.len(), 1);
                assert_eq!(
                    r.targets[0].expr,
                    TargetExpr::Attr(AttrRef {
                        var: "f".into(),
                        attr: "rank".into()
                    })
                );
                assert!(r.where_clause.is_some());
                assert!(r.as_of.is_none());
            }
            other => panic!("expected retrieve, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_bitemporal_flagship_query() {
        let stmt = parse_statement(
            r#"retrieve (f1.rank)
               where f1.name = "Merrie" and f2.name = "Tom"
               when f1 overlap start of f2
               as of "12/10/82""#,
        )
        .unwrap();
        match stmt {
            Statement::Retrieve(r) => {
                match r.when_clause.unwrap() {
                    WhenExpr::Overlap(TexprAst::Var(v), TexprAst::StartOf(inner)) => {
                        assert_eq!(v, "f1");
                        assert_eq!(*inner, TexprAst::Var("f2".into()));
                    }
                    other => panic!("bad when clause: {other:?}"),
                }
                assert_eq!(r.as_of.unwrap().at, TexprAst::Date("12/10/82".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_valid_clauses() {
        let stmt = parse_statement(
            r#"retrieve (f.name) valid from start of f to "01/01/85" where f.rank = "full""#,
        )
        .unwrap();
        match stmt {
            Statement::Retrieve(r) => match r.valid.unwrap() {
                ValidClause::FromTo(TexprAst::StartOf(_), TexprAst::Date(d)) => {
                    assert_eq!(d, "01/01/85");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        let stmt = parse_statement(r#"retrieve (f.name) valid at end of f"#).unwrap();
        match stmt {
            Statement::Retrieve(r) => {
                assert!(matches!(r.valid, Some(ValidClause::At(TexprAst::EndOf(_)))))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_modifications() {
        let stmt = parse_statement(
            r#"append to faculty (name = "Ilsoo", rank = "assistant") valid from "01/01/85" to "12/31/99""#,
        )
        .unwrap();
        match stmt {
            Statement::Append {
                relation,
                assignments,
                valid,
            } => {
                assert_eq!(relation, "faculty");
                assert_eq!(assignments.len(), 2);
                assert!(valid.is_some());
            }
            other => panic!("{other:?}"),
        }
        let stmt = parse_statement(r#"delete f where f.name = "Mike""#).unwrap();
        assert!(matches!(stmt, Statement::Delete { .. }));
        let stmt = parse_statement(
            r#"replace f (rank = "full") valid from "12/01/82" to "01/01/99" where f.name = "Merrie""#,
        )
        .unwrap();
        assert!(matches!(stmt, Statement::Replace { .. }));
    }

    #[test]
    fn parses_create_and_destroy() {
        let stmt = parse_statement(
            "create promotion (name = str, rank = str, effective = date) as temporal event",
        )
        .unwrap();
        match stmt {
            Statement::Create {
                relation,
                attrs,
                class,
                event,
            } => {
                assert_eq!(relation, "promotion");
                assert_eq!(attrs.len(), 3);
                assert_eq!(attrs[2].1, AttrType::Date);
                assert_eq!(class, ClassAst::Temporal);
                assert!(event);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("destroy faculty").unwrap(),
            Statement::Destroy { .. }
        ));
        assert!(matches!(
            parse_statement("create r (a = int) as rollback").unwrap(),
            Statement::Create {
                class: ClassAst::Rollback,
                event: false,
                ..
            }
        ));
    }

    #[test]
    fn boolean_precedence_in_where() {
        // a or b and c  parses as  a or (b and c)
        let stmt =
            parse_statement(r#"retrieve (f.rank) where f.a = "1" or f.b = "2" and f.c = "3""#)
                .unwrap();
        match stmt {
            Statement::Retrieve(r) => match r.where_clause.unwrap() {
                WhereExpr::Or(_, right) => {
                    assert!(matches!(*right, WhereExpr::And(_, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn when_clause_booleans_and_parens() {
        let stmt = parse_statement(
            r#"retrieve (f1.rank)
               when (f1 overlap f2 or f1 precede f2) and not f2 equal f1"#,
        )
        .unwrap();
        match stmt {
            Statement::Retrieve(r) => match r.when_clause.unwrap() {
                WhenExpr::And(l, r2) => {
                    assert!(matches!(*l, WhenExpr::Or(_, _)));
                    assert!(matches!(*r2, WhenExpr::Not(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overlap_as_expression_inside_valid() {
        let stmt =
            parse_statement("retrieve (f1.rank) valid from start of (f1 overlap f2) to end of f1")
                .unwrap();
        match stmt {
            Statement::Retrieve(r) => match r.valid.unwrap() {
                ValidClause::FromTo(TexprAst::StartOf(inner), _) => {
                    assert!(matches!(*inner, TexprAst::Overlap(_, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn as_of_through() {
        let stmt =
            parse_statement(r#"retrieve (f.rank) as of "12/10/82" through "12/20/82""#).unwrap();
        match stmt {
            Statement::Retrieve(r) => {
                let ao = r.as_of.unwrap();
                assert_eq!(ao.through, Some(TexprAst::Date("12/20/82".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reporting() {
        assert!(matches!(
            parse_statement("retrieve f.rank"),
            Err(TquelError::Parse { .. })
        ));
        assert!(parse_statement("range of f").is_err());
        assert!(parse_statement("retrieve (f.rank) where f.name").is_err());
        assert!(parse_statement("retrieve (f.rank) when f1 f2").is_err());
        assert!(parse_statement("retrieve (f.rank) extra").is_err());
        assert!(parse_statement("create r (a = blob)").is_err());
    }

    #[test]
    fn analyze_is_contextual() {
        assert_eq!(
            parse_statement("analyze faculty").unwrap(),
            Statement::Analyze {
                relation: "faculty".into()
            }
        );
        // Case-insensitive, like the other contextual statement words.
        assert!(matches!(
            parse_statement("ANALYZE faculty").unwrap(),
            Statement::Analyze { .. }
        ));
        // The word stays available as an ordinary identifier elsewhere.
        assert!(parse_statement("range of a is analyze").is_ok());
        // A relation name is mandatory.
        assert!(parse_statement("analyze").is_err());
    }

    #[test]
    fn named_targets() {
        let stmt = parse_statement("retrieve (current_rank = f.rank, f.name)").unwrap();
        match stmt {
            Statement::Retrieve(r) => {
                assert_eq!(r.targets[0].name.as_deref(), Some("current_rank"));
                assert_eq!(r.targets[1].name, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregate_targets() {
        let stmt =
            parse_statement(r#"retrieve (n = count(f.name), min(f.salary)) where f.rank = "full""#)
                .unwrap();
        match stmt {
            Statement::Retrieve(r) => {
                assert_eq!(r.targets.len(), 2);
                assert_eq!(r.targets[0].name.as_deref(), Some("n"));
                assert!(matches!(
                    r.targets[0].expr,
                    TargetExpr::Aggregate(AggFunc::Count, _)
                ));
                assert_eq!(r.targets[1].name, None);
                assert!(matches!(
                    r.targets[1].expr,
                    TargetExpr::Aggregate(AggFunc::Min, _)
                ));
            }
            other => panic!("{other:?}"),
        }
        // Unknown function names are rejected with a clear message.
        let err = parse_statement("retrieve (median(f.salary))").unwrap_err();
        assert!(err.to_string().contains("aggregate"), "{err}");
    }
}
