//! Parser fuzzing: for every generated statement AST,
//! `parse(unparse(ast)) == ast`; and the lexer/parser never panic on
//! arbitrary input.

use chronos_tquel::ast::*;
use chronos_tquel::parser::parse_statement;
use chronos_tquel::token::Keyword;
use chronos_tquel::unparse::unparse;
use proptest::prelude::*;

/// Identifiers that can't collide with keywords or aggregate names.
fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword or aggregate", |s| {
        Keyword::from_str_ci(s).is_none() && AggFunc::from_name(s).is_none()
    })
}

fn arb_string_lit() -> impl Strategy<Value = String> {
    // Any printable content; the unparser escapes what needs escaping.
    "[a-zA-Z0-9 /:.\"\\\\\n\t'-]{0,12}"
}

fn arb_date_lit() -> impl Strategy<Value = String> {
    (1i32..=12, 1i32..=28, 0i32..=99).prop_map(|(m, d, y)| format!("{m:02}/{d:02}/{y:02}"))
}

fn arb_attr_ref() -> impl Strategy<Value = AttrRef> {
    (arb_ident(), arb_ident()).prop_map(|(var, attr)| AttrRef { var, attr })
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_attr_ref().prop_map(Operand::Attr),
        arb_string_lit().prop_map(Operand::Str),
        any::<i64>().prop_map(Operand::Int),
        // Floats as exact quarters so text round-trips exactly.
        (-10_000i32..10_000).prop_map(|q| Operand::Float(f64::from(q) / 4.0)),
    ]
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOpAst> {
    prop_oneof![
        Just(CmpOpAst::Eq),
        Just(CmpOpAst::Ne),
        Just(CmpOpAst::Lt),
        Just(CmpOpAst::Le),
        Just(CmpOpAst::Gt),
        Just(CmpOpAst::Ge),
    ]
}

fn arb_where() -> impl Strategy<Value = WhereExpr> {
    let leaf = (arb_cmp_op(), arb_operand(), arb_operand())
        .prop_map(|(op, a, b)| WhereExpr::Cmp(op, a, b));
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| WhereExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| WhereExpr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| WhereExpr::Not(Box::new(a))),
        ]
    })
}

fn arb_texpr() -> impl Strategy<Value = TexprAst> {
    let leaf = prop_oneof![
        arb_ident().prop_map(TexprAst::Var),
        arb_date_lit().prop_map(TexprAst::Date),
        Just(TexprAst::Forever),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| TexprAst::StartOf(Box::new(a))),
            inner.clone().prop_map(|a| TexprAst::EndOf(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TexprAst::Extend(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TexprAst::Overlap(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_when() -> impl Strategy<Value = WhenExpr> {
    let leaf = prop_oneof![
        (arb_texpr(), arb_texpr()).prop_map(|(a, b)| WhenExpr::Overlap(a, b)),
        (arb_texpr(), arb_texpr()).prop_map(|(a, b)| WhenExpr::Precede(a, b)),
        (arb_texpr(), arb_texpr()).prop_map(|(a, b)| WhenExpr::Equal(a, b)),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| WhenExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| WhenExpr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| WhenExpr::Not(Box::new(a))),
        ]
    })
}

fn arb_valid() -> impl Strategy<Value = ValidClause> {
    prop_oneof![
        arb_texpr().prop_map(ValidClause::At),
        (arb_texpr(), arb_texpr()).prop_map(|(a, b)| ValidClause::FromTo(a, b)),
    ]
}

fn arb_targets() -> impl Strategy<Value = Vec<Target>> {
    let agg = prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ];
    let plain = (prop::option::of(arb_ident()), arb_attr_ref()).prop_map(|(name, a)| Target {
        name,
        expr: TargetExpr::Attr(a),
    });
    let aggregate =
        (prop::option::of(arb_ident()), agg, arb_attr_ref()).prop_map(|(name, f, a)| Target {
            name,
            expr: TargetExpr::Aggregate(f, a),
        });
    // Homogeneous lists (the analyzer rejects mixtures anyway; the
    // parser accepts both shapes).
    prop_oneof![
        prop::collection::vec(plain, 1..4),
        prop::collection::vec(aggregate, 1..4),
    ]
}

fn arb_retrieve() -> impl Strategy<Value = Statement> {
    (
        prop::option::of(arb_ident()),
        arb_targets(),
        prop::option::of(arb_valid()),
        prop::option::of(arb_where()),
        prop::option::of(arb_when()),
        prop::option::of((arb_texpr(), prop::option::of(arb_texpr()))),
    )
        .prop_map(|(into, targets, valid, where_clause, when_clause, as_of)| {
            Statement::Retrieve(Retrieve {
                into,
                targets,
                valid,
                where_clause,
                when_clause,
                as_of: as_of.map(|(at, through)| AsOfClause { at, through }),
            })
        })
}

fn arb_assignments() -> impl Strategy<Value = Vec<Assignment>> {
    prop::collection::vec(
        (arb_ident(), arb_operand()).prop_map(|(attr, value)| Assignment { attr, value }),
        1..4,
    )
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        (arb_ident(), arb_ident())
            .prop_map(|(var, relation)| Statement::RangeDecl { var, relation }),
        arb_retrieve(),
        (
            arb_ident(),
            arb_assignments(),
            prop::option::of(arb_valid())
        )
            .prop_map(|(relation, assignments, valid)| Statement::Append {
                relation,
                assignments,
                valid,
            }),
        (arb_ident(), prop::option::of(arb_where()))
            .prop_map(|(var, where_clause)| Statement::Delete { var, where_clause }),
        (
            arb_ident(),
            arb_assignments(),
            prop::option::of(arb_valid()),
            prop::option::of(arb_where())
        )
            .prop_map(
                |(var, assignments, valid, where_clause)| Statement::Replace {
                    var,
                    assignments,
                    valid,
                    where_clause,
                }
            ),
        (
            arb_ident(),
            prop::collection::vec(
                (
                    arb_ident(),
                    prop_oneof![
                        Just(chronos_core::value::AttrType::Str),
                        Just(chronos_core::value::AttrType::Int),
                        Just(chronos_core::value::AttrType::Float),
                        Just(chronos_core::value::AttrType::Bool),
                        Just(chronos_core::value::AttrType::Date),
                    ]
                ),
                1..4
            )
            .prop_filter("distinct attribute names", |attrs| {
                let mut names: Vec<&String> = attrs.iter().map(|(n, _)| n).collect();
                names.sort();
                names.dedup();
                names.len() == attrs.len()
            }),
            prop_oneof![
                Just(ClassAst::Static),
                Just(ClassAst::Rollback),
                Just(ClassAst::Historical),
                Just(ClassAst::Temporal),
            ],
            any::<bool>()
        )
            .prop_map(|(relation, attrs, class, event)| Statement::Create {
                relation,
                attrs,
                class,
                event,
            }),
        arb_ident().prop_map(|relation| Statement::Destroy { relation }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn unparse_parse_round_trip(stmt in arb_statement()) {
        let printed = unparse(&stmt);
        let reparsed = parse_statement(&printed).map_err(|e| {
            TestCaseError::fail(format!("unparse output failed to parse: {printed:?}: {e}"))
        })?;
        prop_assert_eq!(reparsed, stmt, "round trip changed the AST via {}", printed);
    }

    #[test]
    fn lexer_and_parser_never_panic(src in "\\PC{0,80}") {
        let _ = chronos_tquel::token::lex(&src);
        let _ = parse_statement(&src); // errors allowed; panics are not
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("retrieve".to_string()),
                Just("range".to_string()),
                Just("of".to_string()),
                Just("when".to_string()),
                Just("overlap".to_string()),
                Just("start".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just("=".to_string()),
                Just("\"x\"".to_string()),
                Just("f".to_string()),
                Just("forever".to_string()),
                Just("as".to_string()),
            ],
            0..25
        )
    ) {
        let src = words.join(" ");
        let _ = parse_statement(&src);
    }
}
