//! Algebraic laws of the operators, property-tested: the classical
//! relational identities on static relations, and the temporal laws
//! connecting joins, timeslices and coalescing.

use chronos_algebra::coalesce::coalesce;
use chronos_algebra::expr::Predicate;
use chronos_algebra::join::overlap_join;
use chronos_algebra::ops;
use chronos_algebra::when::{TemporalExpr, TemporalPred};
use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::prelude::*;
use chronos_core::schema::faculty_schema;
use proptest::prelude::*;

const NAMES: [&str; 5] = ["Merrie", "Tom", "Mike", "Ilsoo", "Rick"];
const RANKS: [&str; 3] = ["assistant", "associate", "full"];

fn arb_static() -> impl Strategy<Value = StaticRelation> {
    prop::collection::hash_set((0..NAMES.len(), 0..RANKS.len()), 0..12).prop_map(|pairs| {
        let mut r = StaticRelation::new(faculty_schema());
        for (n, k) in pairs {
            r.insert(tuple([NAMES[n], RANKS[k]])).expect("distinct");
        }
        r
    })
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (0..NAMES.len()).prop_map(|n| Predicate::attr_eq(0, NAMES[n])),
        (0..RANKS.len()).prop_map(|k| Predicate::attr_eq(1, RANKS[k])),
        Just(Predicate::True),
    ]
}

fn arb_historical() -> impl Strategy<Value = HistoricalRelation> {
    prop::collection::hash_set((0..NAMES.len(), 0..RANKS.len(), 0i64..80, 1i64..60), 0..12)
        .prop_map(|rows| {
            let mut r = HistoricalRelation::new(faculty_schema(), TemporalSignature::Interval);
            for (n, k, a, len) in rows {
                // Duplicate (tuple, validity) pairs are possible from the
                // set; skip them.
                let _ = r.insert(
                    tuple([NAMES[n], RANKS[k]]),
                    Period::new(Chronon::new(a), Chronon::new(a + len)).expect("fwd"),
                );
            }
            r
        })
}

proptest! {
    #[test]
    fn select_conjunction_composes(r in arb_static(), p in arb_pred(), q in arb_pred()) {
        let both = ops::select(&r, &p.clone().and(q.clone())).unwrap();
        let chained = ops::select(&ops::select(&r, &p).unwrap(), &q).unwrap();
        prop_assert_eq!(both, chained);
    }

    #[test]
    fn select_disjunction_is_union(r in arb_static(), p in arb_pred(), q in arb_pred()) {
        let either = ops::select(&r, &p.clone().or(q.clone())).unwrap();
        let unioned = ops::union(
            &ops::select(&r, &p).unwrap(),
            &ops::select(&r, &q).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(either, unioned);
    }

    #[test]
    fn select_negation_is_difference(r in arb_static(), p in arb_pred()) {
        let negated = ops::select(&r, &p.clone().not()).unwrap();
        let diffed = ops::difference(&r, &ops::select(&r, &p).unwrap()).unwrap();
        prop_assert_eq!(negated, diffed);
    }

    #[test]
    fn union_laws(a in arb_static(), b in arb_static(), c in arb_static()) {
        // Commutative, associative, idempotent.
        prop_assert_eq!(ops::union(&a, &b).unwrap(), ops::union(&b, &a).unwrap());
        prop_assert_eq!(
            ops::union(&ops::union(&a, &b).unwrap(), &c).unwrap(),
            ops::union(&a, &ops::union(&b, &c).unwrap()).unwrap()
        );
        prop_assert_eq!(ops::union(&a, &a).unwrap(), a.clone());
        // Intersection distributes the other way.
        prop_assert_eq!(
            ops::intersect(&a, &b).unwrap(),
            ops::difference(&a, &ops::difference(&a, &b).unwrap()).unwrap()
        );
    }

    #[test]
    fn projection_is_idempotent(r in arb_static()) {
        let once = ops::project(&r, &[1]).unwrap();
        let twice = ops::project(&once, &[0]).unwrap();
        prop_assert_eq!(once, twice);
        // Identity projection is the identity.
        prop_assert_eq!(ops::project(&r, &[0, 1]).unwrap(), r);
    }

    #[test]
    fn cartesian_size_is_product(a in arb_static(), b in arb_static()) {
        let c = ops::cartesian(&a, &b, "b").unwrap();
        prop_assert_eq!(c.len(), a.len() * b.len());
    }

    #[test]
    fn hash_join_matches_filtered_cartesian(a in arb_static(), b in arb_static()) {
        // a ⋈[name=name] b  ==  σ(name = b.name)(a × b)
        let joined = ops::hash_join(&a, &b, &[(0, 0)], "b").unwrap();
        let cart = ops::cartesian(&a, &b, "b").unwrap();
        let eq_idx = cart.schema().index_of("b.name").unwrap();
        let filtered = ops::select(
            &cart,
            &Predicate::Cmp(
                chronos_algebra::expr::CmpOp::Eq,
                chronos_algebra::expr::Expr::Attr(0),
                chronos_algebra::expr::Expr::Attr(eq_idx),
            ),
        )
        .unwrap();
        prop_assert_eq!(joined, filtered);
    }

    #[test]
    fn overlap_join_slices_commute(a in arb_historical(), b in arb_historical(), t in 0i64..140) {
        // τ_t(a ⋈overlap b) == τ_t(a) × τ_t(b) restricted to co-valid rows:
        // a joined row is valid at t iff both operands were.
        let j = overlap_join(&a, &b, &Predicate::True, "b").unwrap();
        let t = Chronon::new(t);
        let slice_join = j.valid_at(t);
        let slice_a = a.valid_at(t);
        let slice_b = b.valid_at(t);
        let cross = ops::cartesian(&slice_a, &slice_b, "b").unwrap();
        prop_assert_eq!(slice_join, cross, "at {}", t);
    }

    #[test]
    fn coalesce_preserves_joins(a in arb_historical(), b in arb_historical(), t in 0i64..140) {
        // Joining coalesced operands gives the same timeslices as
        // joining the originals.
        let j1 = overlap_join(&a, &b, &Predicate::True, "b").unwrap();
        let j2 = overlap_join(
            &coalesce(&a).unwrap(),
            &coalesce(&b).unwrap(),
            &Predicate::True,
            "b",
        )
        .unwrap();
        let t = Chronon::new(t);
        prop_assert_eq!(j1.valid_at(t), j2.valid_at(t), "at {}", t);
    }

    #[test]
    fn when_predicates_respect_allen(
        a in 0i64..100, la in 1i64..40,
        b in 0i64..100, lb in 1i64..40,
    ) {
        let pa = Period::new(Chronon::new(a), Chronon::new(a + la)).unwrap();
        let pb = Period::new(Chronon::new(b), Chronon::new(b + lb)).unwrap();
        let env = [pa, pb];
        let overlap = TemporalPred::Overlap(TemporalExpr::Var(0), TemporalExpr::Var(1))
            .eval(&env)
            .unwrap();
        let precede_ab = TemporalPred::Precede(TemporalExpr::Var(0), TemporalExpr::Var(1))
            .eval(&env)
            .unwrap();
        let precede_ba = TemporalPred::Precede(TemporalExpr::Var(1), TemporalExpr::Var(0))
            .eval(&env)
            .unwrap();
        // Exactly one of: overlap, a before b, b before a.
        prop_assert_eq!(
            u8::from(overlap) + u8::from(precede_ab) + u8::from(precede_ba),
            1,
            "{:?} vs {:?}", pa, pb
        );
        // And extend is always an upper bound for both.
        let ext = TemporalExpr::Var(0)
            .extend(TemporalExpr::Var(1))
            .eval(&env)
            .unwrap();
        prop_assert!(ext.encloses(pa) && ext.encloses(pb));
    }
}
