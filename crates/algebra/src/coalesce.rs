//! Coalescing: the normal form of a historical relation.
//!
//! Two rows of a historical relation are *value-equivalent* when their
//! explicit attributes are equal.  Coalescing merges value-equivalent
//! rows whose valid periods meet or overlap into maximal periods, so
//! `Merrie associate [09/01/77, 06/01/80)` and
//! `Merrie associate [06/01/80, 12/01/82)` become the single row the
//! paper's Figure 6 shows.  Coalescing never changes the answer to any
//! timeslice query — the property test in the integration suite checks
//! exactly that — and is idempotent.

use chronos_core::error::CoreResult;
use chronos_core::period::Period;
use chronos_core::relation::historical::HistoricalRelation;
use chronos_core::relation::Validity;
use chronos_core::schema::TemporalSignature;
use chronos_core::tuple::Tuple;
use std::collections::HashMap;

/// Merges value-equivalent rows with meeting or overlapping periods.
///
/// Event relations coalesce only exact duplicates (which the relation
/// classes already forbid), so they are returned unchanged.
pub fn coalesce(rel: &HistoricalRelation) -> CoreResult<HistoricalRelation> {
    if rel.signature() == TemporalSignature::Event {
        return Ok(rel.clone());
    }
    // Group periods by tuple value.
    let mut groups: HashMap<&Tuple, Vec<Period>> = HashMap::new();
    let mut order: Vec<&Tuple> = Vec::new();
    for row in rel.rows() {
        let entry = groups.entry(&row.tuple).or_default();
        if entry.is_empty() {
            order.push(&row.tuple);
        }
        entry.push(row.validity.period());
    }
    let mut out = HistoricalRelation::new(rel.schema().clone(), rel.signature());
    for tuple in order {
        let periods = groups.get_mut(tuple).expect("grouped above");
        for p in merge_periods(periods) {
            out.insert(tuple.clone(), Validity::Interval(p))?;
        }
    }
    Ok(out)
}

/// Merges a set of periods into maximal non-overlapping, non-adjacent
/// periods (sorted by start).
pub fn merge_periods(periods: &mut [Period]) -> Vec<Period> {
    periods.sort_by_key(|p| (p.start().order_key(), p.end().order_key()));
    let mut out: Vec<Period> = Vec::new();
    for &p in periods.iter() {
        if p.is_empty() {
            continue;
        }
        match out.last_mut() {
            Some(last) if last.meets_or_overlaps(p) => {
                *last = last.union(p).expect("meeting periods union");
            }
            _ => out.push(p),
        }
    }
    out
}

/// True iff the relation is already coalesced: no two value-equivalent
/// rows meet or overlap.
pub fn is_coalesced(rel: &HistoricalRelation) -> bool {
    if rel.signature() == TemporalSignature::Event {
        return true;
    }
    let rows = rel.rows();
    for (i, a) in rows.iter().enumerate() {
        for b in &rows[i + 1..] {
            if a.tuple == b.tuple && a.validity.period().meets_or_overlaps(b.validity.period()) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::chronon::Chronon;
    use chronos_core::schema::faculty_schema;
    use chronos_core::tuple::tuple;

    fn p(a: i64, b: i64) -> Period {
        Period::new(Chronon::new(a), Chronon::new(b)).unwrap()
    }

    fn rel_with(periods: &[Period]) -> HistoricalRelation {
        let mut r = HistoricalRelation::new(faculty_schema(), TemporalSignature::Interval);
        for &per in periods {
            r.insert(tuple(["Merrie", "associate"]), per).unwrap();
        }
        r
    }

    #[test]
    fn merges_adjacent_and_overlapping() {
        let r = rel_with(&[p(0, 10), p(10, 20), p(15, 30), p(40, 50)]);
        let c = coalesce(&r).unwrap();
        assert_eq!(c.len(), 2);
        let periods: Vec<Period> = c.rows().iter().map(|r| r.validity.period()).collect();
        assert!(periods.contains(&p(0, 30)));
        assert!(periods.contains(&p(40, 50)));
        assert!(is_coalesced(&c));
        assert!(!is_coalesced(&r));
    }

    #[test]
    fn distinct_values_never_merge() {
        let mut r = HistoricalRelation::new(faculty_schema(), TemporalSignature::Interval);
        r.insert(tuple(["Merrie", "associate"]), p(0, 10)).unwrap();
        r.insert(tuple(["Merrie", "full"]), p(10, 20)).unwrap();
        let c = coalesce(&r).unwrap();
        assert_eq!(c.len(), 2, "rank change is not coalescible");
        assert!(is_coalesced(&c));
    }

    #[test]
    fn idempotent() {
        let r = rel_with(&[p(0, 5), p(3, 9), p(9, 12)]);
        let once = coalesce(&r).unwrap();
        let twice = coalesce(&once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn preserves_timeslices() {
        let r = rel_with(&[p(0, 10), p(10, 20), p(25, 30)]);
        let c = coalesce(&r).unwrap();
        for t in -2i64..32 {
            let t = Chronon::new(t);
            assert_eq!(r.valid_at(t), c.valid_at(t), "slice at {t:?}");
        }
    }

    #[test]
    fn open_ended_periods_merge() {
        let r = rel_with(&[p(0, 10), Period::from_start(Chronon::new(8))]);
        let c = coalesce(&r).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.rows()[0].validity.period(),
            Period::from_start(Chronon::new(0))
        );
    }

    #[test]
    fn event_relations_pass_through() {
        let mut r = HistoricalRelation::new(faculty_schema(), TemporalSignature::Event);
        r.insert(tuple(["Merrie", "full"]), Chronon::new(5))
            .unwrap();
        r.insert(tuple(["Merrie", "full"]), Chronon::new(6))
            .unwrap();
        let c = coalesce(&r).unwrap();
        assert_eq!(c.len(), 2);
        assert!(is_coalesced(&r));
    }

    #[test]
    fn merge_periods_unit() {
        let mut ps = [p(5, 7), p(0, 2), p(2, 4), Period::EMPTY];
        assert_eq!(merge_periods(&mut ps), vec![p(0, 4), p(5, 7)]);
        let mut empty: [Period; 0] = [];
        assert!(merge_periods(&mut empty).is_empty());
    }
}
