//! Step-function aggregates over valid time.
//!
//! The paper motivates historical databases with trend analysis: "How
//! did the number of faculty change over the last 5 years?"  Because a
//! historical relation stamps each tuple with a period, any aggregate of
//! it is a *step function* of time, changing only at period endpoints.
//! [`StepFunction`] materializes that function from endpoint events and
//! answers point and range queries; [`count_over_time`] and
//! [`sum_over_time`] build the standard instances.

use chronos_core::chronon::Chronon;
use chronos_core::error::{CoreError, CoreResult};
use chronos_core::period::Period;
use chronos_core::relation::historical::HistoricalRelation;
use chronos_core::timepoint::TimePoint;
use chronos_core::value::AttrType;

/// A right-continuous step function `time → i64`, zero before the first
/// breakpoint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StepFunction {
    /// `(t, v)`: the function takes value `v` from `t` (inclusive) to the
    /// next breakpoint (exclusive).  Sorted by `t`, values distinct
    /// between neighbours.
    steps: Vec<(TimePoint, i64)>,
}

impl StepFunction {
    /// Builds from `(time, delta)` events: the function at `t` is the sum
    /// of deltas at or before `t`.
    pub fn from_deltas(mut events: Vec<(TimePoint, i64)>) -> StepFunction {
        events.sort_by_key(|(t, _)| *t);
        let mut steps: Vec<(TimePoint, i64)> = Vec::new();
        let mut acc = 0i64;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                acc += events[i].1;
                i += 1;
            }
            match steps.last() {
                Some(&(_, v)) if v == acc => {}
                // The function is implicitly 0 before the first
                // breakpoint, so a leading net-zero event is elided too.
                None if acc == 0 => {}
                _ => steps.push((t, acc)),
            }
        }
        StepFunction { steps }
    }

    /// The function's value at `t`.
    pub fn value_at(&self, t: impl Into<TimePoint>) -> i64 {
        let t = t.into();
        match self.steps.partition_point(|(s, _)| *s <= t) {
            0 => 0,
            i => self.steps[i - 1].1,
        }
    }

    /// The breakpoints `(t, v)`.
    pub fn steps(&self) -> &[(TimePoint, i64)] {
        &self.steps
    }

    /// The pieces of the function restricted to `window`, as
    /// `(period, value)` with zero-valued leading piece included when the
    /// window starts before the first breakpoint.
    pub fn pieces_in(&self, window: Period) -> Vec<(Period, i64)> {
        if window.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut cursor = window.start();
        let mut current = self.value_at(cursor);
        for &(t, v) in &self.steps {
            if t <= cursor {
                continue;
            }
            if t >= window.end() {
                break;
            }
            out.push((Period::clamped(cursor, t), current));
            cursor = t;
            current = v;
        }
        out.push((Period::clamped(cursor, window.end()), current));
        out.retain(|(p, _)| !p.is_empty());
        out
    }

    /// Maximum value attained inside `window`.
    pub fn max_in(&self, window: Period) -> Option<i64> {
        self.pieces_in(window).iter().map(|&(_, v)| v).max()
    }

    /// Minimum value attained inside `window`.
    pub fn min_in(&self, window: Period) -> Option<i64> {
        self.pieces_in(window).iter().map(|&(_, v)| v).min()
    }

    /// Time-weighted integral over a finite window (value × chronons).
    pub fn integral_over(&self, window: Period) -> CoreResult<i64> {
        let mut total = 0i64;
        for (p, v) in self.pieces_in(window) {
            let dur = p
                .duration()
                .ok_or_else(|| CoreError::Invalid("integral over an unbounded window".into()))?;
            total += v * dur;
        }
        Ok(total)
    }
}

/// Events contributed by one validity period: `+w` at the start, `-w` at
/// the end (open-ended periods never decrement).
fn period_deltas(p: Period, w: i64, events: &mut Vec<(TimePoint, i64)>) {
    if p.is_empty() || w == 0 {
        return;
    }
    events.push((p.start(), w));
    if p.end() != TimePoint::PlusInfinity {
        events.push((p.end(), -w));
    }
}

/// `count(r)` over time: how many tuples are valid at each instant.
pub fn count_over_time(rel: &HistoricalRelation) -> StepFunction {
    let mut events = Vec::with_capacity(rel.len() * 2);
    for row in rel.rows() {
        period_deltas(row.validity.period(), 1, &mut events);
    }
    StepFunction::from_deltas(events)
}

/// `sum(attr)` over time for an integer attribute.
pub fn sum_over_time(rel: &HistoricalRelation, attr: usize) -> CoreResult<StepFunction> {
    let a = rel
        .schema()
        .attributes()
        .get(attr)
        .ok_or_else(|| CoreError::Invalid(format!("attribute {attr} out of range")))?;
    if a.attr_type() != AttrType::Int {
        return Err(CoreError::Invalid(format!(
            "sum over non-integer attribute {} ({})",
            a.name(),
            a.attr_type()
        )));
    }
    let mut events = Vec::with_capacity(rel.len() * 2);
    for row in rel.rows() {
        let w = row.tuple.get(attr).as_int().expect("schema-checked int");
        period_deltas(row.validity.period(), w, &mut events);
    }
    Ok(StepFunction::from_deltas(events))
}

/// Samples an aggregate yearly (or at any stride) across a window —
/// the shape of the paper's five-year trend query.
pub fn sample(f: &StepFunction, from: Chronon, to: Chronon, stride: i64) -> Vec<(Chronon, i64)> {
    let mut out = Vec::new();
    let mut t = from;
    while t <= to {
        out.push((t, f.value_at(t)));
        t = t + stride.max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::calendar::date;
    use chronos_core::schema::faculty_schema;
    use chronos_core::schema::TemporalSignature;
    use chronos_core::tuple::tuple;

    fn d(s: &str) -> Chronon {
        date(s).unwrap()
    }

    fn figure_6() -> HistoricalRelation {
        let mut r = HistoricalRelation::new(faculty_schema(), TemporalSignature::Interval);
        r.insert(
            tuple(["Merrie", "associate"]),
            Period::new(d("09/01/77"), d("12/01/82")).unwrap(),
        )
        .unwrap();
        r.insert(tuple(["Merrie", "full"]), Period::from_start(d("12/01/82")))
            .unwrap();
        r.insert(
            tuple(["Tom", "associate"]),
            Period::from_start(d("12/05/82")),
        )
        .unwrap();
        r.insert(
            tuple(["Mike", "assistant"]),
            Period::new(d("01/01/83"), d("03/01/84")).unwrap(),
        )
        .unwrap();
        r
    }

    #[test]
    fn faculty_headcount_trend() {
        let f = count_over_time(&figure_6());
        // Merrie is one person across her promotion (periods meet).
        assert_eq!(f.value_at(d("01/01/80")), 1);
        assert_eq!(f.value_at(d("12/01/82")), 1);
        assert_eq!(f.value_at(d("12/05/82")), 2); // Tom arrives
        assert_eq!(f.value_at(d("06/01/83")), 3); // Mike too
        assert_eq!(f.value_at(d("06/01/84")), 2); // Mike left
        assert_eq!(f.value_at(d("01/01/70")), 0); // before history
    }

    #[test]
    fn sampled_series_matches_point_queries() {
        let f = count_over_time(&figure_6());
        let series = sample(&f, d("01/01/79"), d("01/01/84"), 365);
        assert_eq!(series.len(), 6);
        for (t, v) in series {
            assert_eq!(v, f.value_at(t));
        }
    }

    #[test]
    fn pieces_and_extrema() {
        let f = count_over_time(&figure_6());
        let window = Period::new(d("01/01/82"), d("01/01/85")).unwrap();
        let pieces = f.pieces_in(window);
        // Pieces tile the window exactly.
        assert_eq!(
            pieces.first().unwrap().0.start(),
            TimePoint::at(d("01/01/82"))
        );
        assert_eq!(pieces.last().unwrap().0.end(), TimePoint::at(d("01/01/85")));
        for w in pieces.windows(2) {
            assert_eq!(w[0].0.end(), w[1].0.start(), "no gaps");
            assert_ne!(w[0].1, w[1].1, "value changes at breakpoints");
        }
        assert_eq!(f.max_in(window), Some(3));
        assert_eq!(f.min_in(window), Some(1));
    }

    #[test]
    fn integral_is_time_weighted() {
        let mut r = HistoricalRelation::new(faculty_schema(), TemporalSignature::Interval);
        r.insert(
            tuple(["A", "x"]),
            Period::new(Chronon::new(0), Chronon::new(10)).unwrap(),
        )
        .unwrap();
        r.insert(
            tuple(["B", "x"]),
            Period::new(Chronon::new(5), Chronon::new(10)).unwrap(),
        )
        .unwrap();
        let f = count_over_time(&r);
        // 5 days of 1 + 5 days of 2 = 15 tuple-days.
        let w = Period::new(Chronon::new(0), Chronon::new(10)).unwrap();
        assert_eq!(f.integral_over(w).unwrap(), 15);
        assert!(f.integral_over(Period::ALWAYS).is_err());
    }

    #[test]
    fn sum_over_time_weights_by_attribute() {
        use chronos_core::schema::{Attribute, Schema};
        use chronos_core::value::Value;
        let schema = Schema::new(vec![
            Attribute::new("name", AttrType::Str),
            Attribute::new("salary", AttrType::Int),
        ])
        .unwrap();
        let mut r = HistoricalRelation::new(schema, TemporalSignature::Interval);
        r.insert(
            chronos_core::tuple::Tuple::new(vec![Value::str("Merrie"), Value::Int(40_000)]),
            Period::new(Chronon::new(0), Chronon::new(100)).unwrap(),
        )
        .unwrap();
        r.insert(
            chronos_core::tuple::Tuple::new(vec![Value::str("Merrie"), Value::Int(55_000)]),
            Period::from_start(Chronon::new(100)),
        )
        .unwrap();
        let f = sum_over_time(&r, 1).unwrap();
        assert_eq!(f.value_at(Chronon::new(50)), 40_000);
        assert_eq!(f.value_at(Chronon::new(150)), 55_000);
        assert!(sum_over_time(&r, 0).is_err(), "string attribute rejected");
        assert!(sum_over_time(&r, 9).is_err());
    }

    #[test]
    fn from_deltas_collapses_no_ops() {
        let f = StepFunction::from_deltas(vec![
            (TimePoint::at(Chronon::new(5)), 1),
            (TimePoint::at(Chronon::new(5)), -1),
            (TimePoint::at(Chronon::new(7)), 2),
        ]);
        assert_eq!(f.steps().len(), 1, "net-zero event elided");
        assert_eq!(f.value_at(Chronon::new(6)), 0);
        assert_eq!(f.value_at(Chronon::new(7)), 2);
    }
}
