//! The temporal operators: rollback ρ, timeslice τ, and bitemporal
//! slices.
//!
//! These are the operators the paper's four-way classification turns on:
//!
//! * ρ_t (rollback) maps a rollback relation to the *static* relation
//!   stored at transaction time `t`, and a temporal relation to the
//!   *historical* relation stored at `t`;
//! * τ_t (timeslice) maps a historical relation to the static relation
//!   of tuples *valid* at `t`;
//! * their composition ρ_t₁ ∘ τ_t₂ is the bitemporal point query "tuples
//!   valid at t₂ seen as of t₁".

use chronos_core::chronon::Chronon;
use chronos_core::relation::historical::HistoricalRelation;
use chronos_core::relation::rollback::RollbackStore;
use chronos_core::relation::static_rel::StaticRelation;
use chronos_core::relation::temporal::TemporalStore;

/// ρ_t over a rollback relation: the static state as of `t`.
pub fn rollback_static<S: RollbackStore>(rel: &S, t: Chronon) -> StaticRelation {
    rel.rollback(t)
}

/// ρ_t over a temporal relation: the historical state as of `t`.
pub fn rollback_temporal<S: TemporalStore>(rel: &S, t: Chronon) -> HistoricalRelation {
    rel.rollback(t)
}

/// τ_t over a historical relation: tuples valid at `t`, as best known.
pub fn timeslice(rel: &HistoricalRelation, t: Chronon) -> StaticRelation {
    rel.valid_at(t)
}

/// The bitemporal point query: tuples valid at `valid`, as the database
/// stored them at `as_of`.
pub fn bitemporal_slice<S: TemporalStore>(
    rel: &S,
    valid: Chronon,
    as_of: Chronon,
) -> StaticRelation {
    rel.rollback(as_of).valid_at(valid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::calendar::date;
    use chronos_core::period::Period;
    use chronos_core::prelude::*;
    use chronos_core::schema::faculty_schema;

    fn d(s: &str) -> Chronon {
        date(s).unwrap()
    }

    fn figure_8_table() -> BitemporalTable {
        let mut s = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
        s.begin()
            .insert(
                tuple(["Merrie", "associate"]),
                Period::from_start(d("09/01/77")),
            )
            .commit(d("08/25/77"))
            .unwrap();
        s.begin()
            .insert(tuple(["Tom", "full"]), Period::from_start(d("12/05/82")))
            .commit(d("12/01/82"))
            .unwrap();
        s.begin()
            .remove(RowSelector::tuple(tuple(["Tom", "full"])))
            .insert(
                tuple(["Tom", "associate"]),
                Period::from_start(d("12/05/82")),
            )
            .commit(d("12/07/82"))
            .unwrap();
        s.begin()
            .set_validity(
                RowSelector::tuple(tuple(["Merrie", "associate"])),
                Period::new(d("09/01/77"), d("12/01/82")).unwrap(),
            )
            .insert(tuple(["Merrie", "full"]), Period::from_start(d("12/01/82")))
            .commit(d("12/15/82"))
            .unwrap();
        s
    }

    #[test]
    fn rollback_then_timeslice_is_the_paper_query_pair() {
        let rel = figure_8_table();
        // Valid at 12/05/82 as of 12/10/82: Merrie associate.
        let early = bitemporal_slice(&rel, d("12/05/82"), d("12/10/82"));
        assert!(early.contains(&tuple(["Merrie", "associate"])));
        assert!(!early.contains(&tuple(["Merrie", "full"])));
        // Same valid instant as of 12/20/82: Merrie full.
        let late = bitemporal_slice(&rel, d("12/05/82"), d("12/20/82"));
        assert!(late.contains(&tuple(["Merrie", "full"])));
        assert!(!late.contains(&tuple(["Merrie", "associate"])));
    }

    #[test]
    fn timeslice_of_rollback_state_composes() {
        let rel = figure_8_table();
        let hist = rollback_temporal(&rel, d("12/10/82"));
        let slice = timeslice(&hist, d("12/05/82"));
        assert_eq!(slice, bitemporal_slice(&rel, d("12/05/82"), d("12/10/82")));
    }

    #[test]
    fn rollback_static_store() {
        let mut r = TimestampedRollback::new(faculty_schema());
        r.begin()
            .insert(tuple(["Merrie", "associate"]))
            .commit(d("08/25/77"))
            .unwrap();
        r.begin()
            .replace(tuple(["Merrie", "associate"]), tuple(["Merrie", "full"]))
            .commit(d("12/15/82"))
            .unwrap();
        let s = rollback_static(&r, d("12/10/82"));
        assert!(s.contains(&tuple(["Merrie", "associate"])));
    }
}
