//! Static relational algebra.
//!
//! The classic five operators plus joins, over
//! [`StaticRelation`].
//! Rollback results and valid-time slices are static relations, so these
//! operators close the loop: any classical query can run over any slice
//! of a temporal database.

use std::collections::HashMap;

use chronos_core::error::{CoreError, CoreResult};
use chronos_core::relation::static_rel::StaticRelation;
use chronos_core::schema::Schema;
use chronos_core::tuple::Tuple;
use chronos_core::value::Value;

use crate::expr::Predicate;

/// σ — tuples satisfying the predicate.
pub fn select(rel: &StaticRelation, pred: &Predicate) -> CoreResult<StaticRelation> {
    let mut out = StaticRelation::new(rel.schema().clone());
    for t in rel.iter() {
        if pred.eval(t)? {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// π — projection onto attribute indices, with duplicate elimination.
pub fn project(rel: &StaticRelation, indices: &[usize]) -> CoreResult<StaticRelation> {
    let schema = rel.schema().project(indices)?;
    let mut out = StaticRelation::new(schema);
    for t in rel.iter() {
        let p = t.project(indices);
        if !out.contains(&p) {
            out.insert(p)?;
        }
    }
    Ok(out)
}

fn check_union_compatible(a: &StaticRelation, b: &StaticRelation) -> CoreResult<()> {
    let (sa, sb) = (a.schema(), b.schema());
    if sa.arity() != sb.arity()
        || sa
            .attributes()
            .iter()
            .zip(sb.attributes())
            .any(|(x, y)| x.attr_type() != y.attr_type())
    {
        return Err(CoreError::SchemaMismatch {
            expected: sa.to_string(),
            found: sb.to_string(),
        });
    }
    Ok(())
}

/// ∪ — set union (schemas must be union-compatible; the left schema
/// names the result).
pub fn union(a: &StaticRelation, b: &StaticRelation) -> CoreResult<StaticRelation> {
    check_union_compatible(a, b)?;
    let mut out = StaticRelation::new(a.schema().clone());
    for t in a.iter().chain(b.iter()) {
        if !out.contains(t) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// − — set difference `a \ b`.
pub fn difference(a: &StaticRelation, b: &StaticRelation) -> CoreResult<StaticRelation> {
    check_union_compatible(a, b)?;
    let mut out = StaticRelation::new(a.schema().clone());
    for t in a.iter() {
        if !b.contains(t) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// ∩ — set intersection.
pub fn intersect(a: &StaticRelation, b: &StaticRelation) -> CoreResult<StaticRelation> {
    check_union_compatible(a, b)?;
    let mut out = StaticRelation::new(a.schema().clone());
    for t in a.iter() {
        if b.contains(t) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

fn concat_schema(a: &Schema, b: &Schema, b_prefix: &str) -> CoreResult<Schema> {
    let mut attrs: Vec<chronos_core::schema::Attribute> = a.attributes().to_vec();
    for attr in b.attributes() {
        let name = if a.index_of(attr.name()).is_some() {
            format!("{b_prefix}.{}", attr.name())
        } else {
            attr.name().to_string()
        };
        attrs.push(chronos_core::schema::Attribute::new(name, attr.attr_type()));
    }
    Schema::new(attrs)
}

/// × — cartesian product.  Clashing attribute names from `b` are
/// prefixed with `b_prefix`.
pub fn cartesian(
    a: &StaticRelation,
    b: &StaticRelation,
    b_prefix: &str,
) -> CoreResult<StaticRelation> {
    let schema = concat_schema(a.schema(), b.schema(), b_prefix)?;
    let mut out = StaticRelation::new(schema);
    for ta in a.iter() {
        for tb in b.iter() {
            let joined = ta.concat(tb);
            if !out.contains(&joined) {
                out.insert(joined)?;
            }
        }
    }
    Ok(out)
}

/// ⋈ — equi-join on `a.attrs[la] = b.attrs[lb]` pairs, via hash join on
/// the build side `b`.
pub fn hash_join(
    a: &StaticRelation,
    b: &StaticRelation,
    keys: &[(usize, usize)],
    b_prefix: &str,
) -> CoreResult<StaticRelation> {
    for &(la, lb) in keys {
        let ta = a
            .schema()
            .attributes()
            .get(la)
            .ok_or_else(|| CoreError::Invalid(format!("join key {la} out of range")))?;
        let tb = b
            .schema()
            .attributes()
            .get(lb)
            .ok_or_else(|| CoreError::Invalid(format!("join key {lb} out of range")))?;
        if ta.attr_type() != tb.attr_type() {
            return Err(CoreError::Invalid(format!(
                "join key type mismatch: {} vs {}",
                ta.attr_type(),
                tb.attr_type()
            )));
        }
    }
    let schema = concat_schema(a.schema(), b.schema(), b_prefix)?;
    let mut build: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    for tb in b.iter() {
        let key: Vec<Value> = keys.iter().map(|&(_, lb)| tb.get(lb).clone()).collect();
        build.entry(key).or_default().push(tb);
    }
    let mut out = StaticRelation::new(schema);
    for ta in a.iter() {
        let key: Vec<Value> = keys.iter().map(|&(la, _)| ta.get(la).clone()).collect();
        if let Some(matches) = build.get(&key) {
            for tb in matches {
                let joined = ta.concat(tb);
                if !out.contains(&joined) {
                    out.insert(joined)?;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::schema::{faculty_schema, Attribute};
    use chronos_core::tuple::tuple;
    use chronos_core::value::AttrType;

    fn faculty() -> StaticRelation {
        let mut r = StaticRelation::new(faculty_schema());
        r.insert(tuple(["Merrie", "full"])).unwrap();
        r.insert(tuple(["Tom", "associate"])).unwrap();
        r.insert(tuple(["Mike", "assistant"])).unwrap();
        r
    }

    #[test]
    fn select_project_answers_figure_2_query() {
        // retrieve (f.rank) where f.name = "Merrie"
        let r = faculty();
        let sel = select(&r, &Predicate::attr_eq(0, "Merrie")).unwrap();
        let ranks = project(&sel, &[1]).unwrap();
        assert_eq!(ranks.len(), 1);
        assert!(ranks.contains(&tuple(["full"])));
    }

    #[test]
    fn project_eliminates_duplicates() {
        let mut r = StaticRelation::new(faculty_schema());
        r.insert(tuple(["Merrie", "full"])).unwrap();
        r.insert(tuple(["Tom", "full"])).unwrap();
        let p = project(&r, &[1]).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn union_difference_intersect() {
        let a = faculty();
        let mut b = StaticRelation::new(faculty_schema());
        b.insert(tuple(["Merrie", "full"])).unwrap();
        b.insert(tuple(["Ilsoo", "assistant"])).unwrap();
        assert_eq!(union(&a, &b).unwrap().len(), 4);
        assert_eq!(difference(&a, &b).unwrap().len(), 2);
        assert_eq!(intersect(&a, &b).unwrap().len(), 1);
        // Incompatible schemas rejected.
        let other =
            StaticRelation::new(Schema::new(vec![Attribute::new("n", AttrType::Int)]).unwrap());
        assert!(union(&a, &other).is_err());
    }

    #[test]
    fn cartesian_product_sizes() {
        let a = faculty();
        let mut b =
            StaticRelation::new(Schema::new(vec![Attribute::new("dept", AttrType::Str)]).unwrap());
        b.insert(tuple(["cs"])).unwrap();
        b.insert(tuple(["math"])).unwrap();
        let c = cartesian(&a, &b, "b").unwrap();
        assert_eq!(c.len(), 6);
        assert_eq!(c.schema().arity(), 3);
    }

    #[test]
    fn cartesian_renames_clashing_attributes() {
        let a = faculty();
        let c = cartesian(&a, &faculty(), "f2").unwrap();
        assert_eq!(c.schema().index_of("f2.name"), Some(2));
        assert_eq!(c.len(), 9);
    }

    #[test]
    fn hash_join_matches_nested_loop_semantics() {
        // Join faculty with an office relation on name.
        let schema = Schema::new(vec![
            Attribute::new("prof", AttrType::Str),
            Attribute::new("office", AttrType::Int),
        ])
        .unwrap();
        let mut offices = StaticRelation::new(schema);
        offices
            .insert(tuple::<Value, _>([Value::str("Merrie"), Value::Int(101)]))
            .unwrap();
        offices
            .insert(tuple::<Value, _>([Value::str("Tom"), Value::Int(202)]))
            .unwrap();
        offices
            .insert(tuple::<Value, _>([Value::str("Nobody"), Value::Int(303)]))
            .unwrap();
        let j = hash_join(&faculty(), &offices, &[(0, 0)], "o").unwrap();
        assert_eq!(j.len(), 2);
        assert!(j
            .iter()
            .any(|t| t.get(0).as_str() == Some("Merrie") && t.get(3).as_int() == Some(101)));
        // Mismatched key types rejected.
        assert!(hash_join(&faculty(), &offices, &[(0, 1)], "o").is_err());
    }
}
