//! # chronos-algebra
//!
//! Temporal relational algebra over the relation classes of
//! `chronos-core`.
//!
//! The paper observes that historical databases need "more sophisticated
//! operations … to manipulate the complex semantics of valid time
//! adequately, compared to the simple rollback operation".  This crate
//! supplies both:
//!
//! * [`ops`] — the static relational algebra (select, project, union,
//!   difference, cartesian product, joins), since the result of a
//!   rollback is "a pure static relation" that ordinary queries apply to;
//! * [`expr`] — scalar expressions and predicates over tuples (the
//!   `where` clause);
//! * [`temporal`] — the rollback operator ρ, valid-time timeslice τ, and
//!   bitemporal slices;
//! * [`when`] — temporal expressions (`start of`, `end of`, `extend`)
//!   and predicates (`overlap`, `precede`, `equal`) over tuple
//!   timestamps (the TQuel `when` clause);
//! * [`coalesce`] — merging of value-equivalent tuples with adjacent or
//!   overlapping periods, the normal form of a historical relation;
//! * [`join`] — temporal joins that intersect validity periods;
//! * [`aggregate`] — step-function aggregates over valid time (trend
//!   analysis: "how did the number of faculty change over the last 5
//!   years?").

pub mod aggregate;
pub mod coalesce;
pub mod expr;
pub mod join;
pub mod ops;
pub mod temporal;
pub mod when;
