//! Temporal joins.
//!
//! Joining historical relations must combine both the explicit attributes
//! and the timestamps.  The *temporal natural join* pairs rows whose
//! valid periods overlap and stamps the result with the intersection —
//! "Merrie was full *while* Tom was associate".  The general form takes a
//! scalar predicate over the concatenated tuple and a temporal predicate
//! over the operand periods, with a [`TemporalExpr`] computing the result
//! validity (TQuel's `valid` clause).

use chronos_core::error::CoreResult;
use chronos_core::relation::historical::HistoricalRelation;
use chronos_core::relation::Validity;
use chronos_core::schema::{Attribute, Schema, TemporalSignature};

use crate::expr::Predicate;
use crate::when::{TemporalExpr, TemporalPred};

fn concat_schema(a: &Schema, b: &Schema, b_prefix: &str) -> CoreResult<Schema> {
    let mut attrs: Vec<Attribute> = a.attributes().to_vec();
    for attr in b.attributes() {
        let name = if a.index_of(attr.name()).is_some() {
            format!("{b_prefix}.{}", attr.name())
        } else {
            attr.name().to_string()
        };
        attrs.push(Attribute::new(name, attr.attr_type()));
    }
    Schema::new(attrs)
}

/// General historical join.
///
/// For every pair of rows `(ra, rb)` the scalar predicate sees the
/// concatenated tuple, the temporal predicate sees `[period(ra),
/// period(rb)]` as variables 0 and 1, and the result row is stamped with
/// `valid_expr` evaluated on the same environment (rows whose computed
/// validity is empty are dropped — they hold at no time).
pub fn theta_join(
    a: &HistoricalRelation,
    b: &HistoricalRelation,
    scalar: &Predicate,
    temporal: &TemporalPred,
    valid_expr: &TemporalExpr,
    b_prefix: &str,
) -> CoreResult<HistoricalRelation> {
    let schema = concat_schema(a.schema(), b.schema(), b_prefix)?;
    let mut out = HistoricalRelation::new(schema, TemporalSignature::Interval);
    for ra in a.rows() {
        for rb in b.rows() {
            let env = [ra.validity.period(), rb.validity.period()];
            if !temporal.eval(&env)? {
                continue;
            }
            let joined = ra.tuple.concat(&rb.tuple);
            if !scalar.eval(&joined)? {
                continue;
            }
            let validity = valid_expr.eval(&env)?;
            if validity.is_empty() {
                continue;
            }
            // Joins can produce duplicate (tuple, validity) pairs from
            // distinct operand fragments; keep the first.
            if out
                .rows()
                .iter()
                .any(|r| r.tuple == joined && r.validity.period() == validity)
            {
                continue;
            }
            out.insert(joined, Validity::Interval(validity))?;
        }
    }
    Ok(out)
}

/// Temporal natural join on overlapping periods: result validity is the
/// intersection of the operands' periods.
pub fn overlap_join(
    a: &HistoricalRelation,
    b: &HistoricalRelation,
    scalar: &Predicate,
    b_prefix: &str,
) -> CoreResult<HistoricalRelation> {
    theta_join(
        a,
        b,
        scalar,
        &TemporalPred::Overlap(TemporalExpr::Var(0), TemporalExpr::Var(1)),
        &TemporalExpr::Intersect(
            Box::new(TemporalExpr::Var(0)),
            Box::new(TemporalExpr::Var(1)),
        ),
        b_prefix,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::calendar::date;
    use chronos_core::chronon::Chronon;
    use chronos_core::period::Period;
    use chronos_core::schema::faculty_schema;
    use chronos_core::tuple::tuple;

    fn d(s: &str) -> Chronon {
        date(s).unwrap()
    }

    fn figure_6() -> HistoricalRelation {
        let mut r = HistoricalRelation::new(faculty_schema(), TemporalSignature::Interval);
        r.insert(
            tuple(["Merrie", "associate"]),
            Period::new(d("09/01/77"), d("12/01/82")).unwrap(),
        )
        .unwrap();
        r.insert(tuple(["Merrie", "full"]), Period::from_start(d("12/01/82")))
            .unwrap();
        r.insert(
            tuple(["Tom", "associate"]),
            Period::from_start(d("12/05/82")),
        )
        .unwrap();
        r.insert(
            tuple(["Mike", "assistant"]),
            Period::new(d("01/01/83"), d("03/01/84")).unwrap(),
        )
        .unwrap();
        r
    }

    #[test]
    fn overlap_join_stamps_intersection() {
        let f = figure_6();
        // Who served concurrently with Mike, and when?
        let mike_only = Predicate::attr_eq(2, "Mike");
        let j = overlap_join(&f, &f, &mike_only, "f2").unwrap();
        // Merrie full ∩ Mike, Tom ∩ Mike, Mike ∩ Mike.
        assert_eq!(j.len(), 3);
        for row in j.rows() {
            assert_eq!(
                row.validity.period(),
                row.validity
                    .period()
                    .intersect(Period::new(d("01/01/83"), d("03/01/84")).unwrap()),
                "stamped with the overlap"
            );
        }
        let merrie_row = j
            .rows()
            .iter()
            .find(|r| r.tuple.get(0).as_str() == Some("Merrie"))
            .unwrap();
        assert_eq!(merrie_row.tuple.get(1).as_str(), Some("full"));
        assert_eq!(
            merrie_row.validity.period(),
            Period::new(d("01/01/83"), d("03/01/84")).unwrap()
        );
    }

    #[test]
    fn theta_join_with_custom_valid_expr() {
        let f = figure_6();
        // Pair Merrie's ranks with Tom, stamped with `extend` (total span).
        let scalar = Predicate::attr_eq(0, "Merrie").and(Predicate::attr_eq(2, "Tom"));
        let j = theta_join(
            &f,
            &f,
            &scalar,
            &TemporalPred::True,
            &TemporalExpr::Var(0).extend(TemporalExpr::Var(1)),
            "f2",
        )
        .unwrap();
        assert_eq!(j.len(), 2);
        for row in j.rows() {
            assert_eq!(
                row.validity.period().end(),
                chronos_core::TimePoint::INFINITY
            );
        }
    }

    #[test]
    fn join_schema_renames_clashes() {
        let f = figure_6();
        let j = overlap_join(&f, &f, &Predicate::True, "g").unwrap();
        assert_eq!(j.schema().index_of("g.name"), Some(2));
        assert_eq!(j.schema().index_of("g.rank"), Some(3));
    }

    #[test]
    fn empty_intersections_are_dropped() {
        let f = figure_6();
        // Merrie-associate vs Mike never overlap.
        let scalar = Predicate::attr_eq(1, "associate").and(Predicate::attr_eq(2, "Mike"));
        let j = overlap_join(&f, &f, &scalar, "f2").unwrap();
        assert!(
            j.rows()
                .iter()
                .all(|r| r.tuple.get(0).as_str() != Some("Merrie")),
            "no Merrie-associate × Mike row"
        );
    }
}
