//! Scalar expressions and predicates over tuples.
//!
//! An [`Expr`] evaluates against a single *flat* tuple — for
//! multi-variable queries the evaluator concatenates the tuples of all
//! range variables and the expression addresses attributes by flat
//! index.  This keeps evaluation allocation-free on the hot path; the
//! TQuel layer resolves names to indices during semantic analysis.

use std::fmt;

use chronos_core::error::{CoreError, CoreResult};
use chronos_core::tuple::Tuple;
use chronos_core::value::Value;

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A scalar expression over a flat tuple.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// The value at a flat attribute index.
    Attr(usize),
    /// A constant.
    Const(Value),
}

impl Expr {
    /// Evaluates to a value.
    pub fn eval<'a>(&'a self, tuple: &'a Tuple) -> CoreResult<&'a Value> {
        match self {
            Expr::Attr(i) => tuple
                .try_get(*i)
                .ok_or_else(|| CoreError::Invalid(format!("attribute index {i} out of range"))),
            Expr::Const(v) => Ok(v),
        }
    }
}

/// A boolean predicate over a flat tuple.
#[derive(Clone, PartialEq, Debug)]
pub enum Predicate {
    /// Always true (empty `where` clause).
    True,
    /// Comparison of two scalar expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluates against a flat tuple.
    pub fn eval(&self, tuple: &Tuple) -> CoreResult<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp(op, a, b) => {
                let (a, b) = (a.eval(tuple)?, b.eval(tuple)?);
                if a.attr_type() != b.attr_type() {
                    return Err(CoreError::Invalid(format!(
                        "cannot compare {} with {}",
                        a.attr_type(),
                        b.attr_type()
                    )));
                }
                Ok(op.holds(a.cmp(b)))
            }
            Predicate::And(a, b) => Ok(a.eval(tuple)? && b.eval(tuple)?),
            Predicate::Or(a, b) => Ok(a.eval(tuple)? || b.eval(tuple)?),
            Predicate::Not(a) => Ok(!a.eval(tuple)?),
        }
    }

    /// Convenience: `attr = constant` (the paper's
    /// `where f.name = "Merrie"`).
    pub fn attr_eq(idx: usize, v: impl Into<Value>) -> Predicate {
        Predicate::Cmp(CmpOp::Eq, Expr::Attr(idx), Expr::Const(v.into()))
    }

    /// Conjunction builder.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction builder.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation builder.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::tuple::tuple;

    #[test]
    fn comparisons() {
        let t = tuple(["Merrie", "full"]);
        assert!(Predicate::attr_eq(0, "Merrie").eval(&t).unwrap());
        assert!(!Predicate::attr_eq(0, "Tom").eval(&t).unwrap());
        let lt = Predicate::Cmp(CmpOp::Lt, Expr::Attr(1), Expr::Const("zzz".into()));
        assert!(lt.eval(&t).unwrap());
        let ge = Predicate::Cmp(CmpOp::Ge, Expr::Attr(0), Expr::Const("Merrie".into()));
        assert!(ge.eval(&t).unwrap());
        let ne = Predicate::Cmp(CmpOp::Ne, Expr::Attr(0), Expr::Attr(1));
        assert!(ne.eval(&t).unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let t = tuple(["Merrie", "full"]);
        let p = Predicate::attr_eq(0, "Merrie").and(Predicate::attr_eq(1, "full"));
        assert!(p.eval(&t).unwrap());
        let q = Predicate::attr_eq(0, "Tom").or(Predicate::attr_eq(1, "full"));
        assert!(q.eval(&t).unwrap());
        assert!(!q.clone().not().eval(&t).unwrap());
        assert!(Predicate::True.eval(&t).unwrap());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let t = tuple(["Merrie", "full"]);
        let bad = Predicate::Cmp(CmpOp::Eq, Expr::Attr(0), Expr::Const(Value::Int(3)));
        assert!(bad.eval(&t).is_err());
    }

    #[test]
    fn out_of_range_attr_is_an_error() {
        let t = tuple(["Merrie"]);
        assert!(Predicate::attr_eq(5, "x").eval(&t).is_err());
    }
}
