//! Temporal expressions and predicates — the TQuel `when` clause.
//!
//! The paper's historical query
//!
//! ```text
//! retrieve (f1.rank)
//! where f1.name = "Merrie" and f2.name = "Tom"
//! when f1 overlap start of f2
//! ```
//!
//! combines *temporal expressions* over the valid times of the range
//! variables (`f1`, `start of f2`, `e1 extend e2`) with *temporal
//! predicates* (`overlap`, `precede`, `equal`).  Expressions evaluate to
//! periods (instants are one-chronon periods); predicates evaluate to
//! booleans over an environment binding each range variable to its
//! tuple's valid period.

use std::fmt;

use chronos_core::error::{CoreError, CoreResult};
use chronos_core::period::Period;

/// A temporal expression over the valid times of range variables.
#[derive(Clone, PartialEq, Debug)]
pub enum TemporalExpr {
    /// The valid period of the `i`-th range variable.
    Var(usize),
    /// A constant period (a date literal, or a literal interval).
    Const(Period),
    /// `start of e` — the instant at which `e` begins.
    StartOf(Box<TemporalExpr>),
    /// `end of e` — the last instant inside `e`.
    EndOf(Box<TemporalExpr>),
    /// `e1 extend e2` — the smallest period covering both.
    Extend(Box<TemporalExpr>, Box<TemporalExpr>),
    /// `e1 overlap e2` as an expression — the intersection (TQuel's
    /// `valid` clause uses this form).
    Intersect(Box<TemporalExpr>, Box<TemporalExpr>),
}

impl TemporalExpr {
    /// Evaluates against the periods of the range variables.
    pub fn eval(&self, env: &[Period]) -> CoreResult<Period> {
        match self {
            TemporalExpr::Var(i) => env
                .get(*i)
                .copied()
                .ok_or_else(|| CoreError::Invalid(format!("range variable {i} unbound"))),
            TemporalExpr::Const(p) => Ok(*p),
            TemporalExpr::StartOf(e) => Ok(e.eval(env)?.start_of()),
            TemporalExpr::EndOf(e) => Ok(e.eval(env)?.end_of()),
            TemporalExpr::Extend(a, b) => Ok(a.eval(env)?.extend(b.eval(env)?)),
            TemporalExpr::Intersect(a, b) => Ok(a.eval(env)?.intersect(b.eval(env)?)),
        }
    }

    /// `start of` builder.
    #[must_use]
    pub fn start_of(self) -> TemporalExpr {
        TemporalExpr::StartOf(Box::new(self))
    }

    /// `end of` builder.
    #[must_use]
    pub fn end_of(self) -> TemporalExpr {
        TemporalExpr::EndOf(Box::new(self))
    }

    /// `extend` builder.
    #[must_use]
    pub fn extend(self, other: TemporalExpr) -> TemporalExpr {
        TemporalExpr::Extend(Box::new(self), Box::new(other))
    }
}

impl fmt::Display for TemporalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalExpr::Var(i) => write!(f, "${i}"),
            TemporalExpr::Const(p) => write!(f, "{p}"),
            TemporalExpr::StartOf(e) => write!(f, "start of {e}"),
            TemporalExpr::EndOf(e) => write!(f, "end of {e}"),
            TemporalExpr::Extend(a, b) => write!(f, "({a} extend {b})"),
            TemporalExpr::Intersect(a, b) => write!(f, "({a} overlap {b})"),
        }
    }
}

/// A temporal predicate — the body of a `when` clause.
#[derive(Clone, PartialEq, Debug)]
pub enum TemporalPred {
    /// Empty `when` clause.
    True,
    /// `e1 overlap e2` — the periods share a chronon.
    Overlap(TemporalExpr, TemporalExpr),
    /// `e1 precede e2` — `e1` ends before (or exactly when) `e2` starts.
    Precede(TemporalExpr, TemporalExpr),
    /// `e1 equal e2`.
    Equal(TemporalExpr, TemporalExpr),
    /// Conjunction.
    And(Box<TemporalPred>, Box<TemporalPred>),
    /// Disjunction.
    Or(Box<TemporalPred>, Box<TemporalPred>),
    /// Negation.
    Not(Box<TemporalPred>),
}

impl TemporalPred {
    /// Evaluates against the periods of the range variables.
    pub fn eval(&self, env: &[Period]) -> CoreResult<bool> {
        match self {
            TemporalPred::True => Ok(true),
            TemporalPred::Overlap(a, b) => Ok(a.eval(env)?.overlaps(b.eval(env)?)),
            TemporalPred::Precede(a, b) => Ok(a.eval(env)?.precedes(b.eval(env)?)),
            TemporalPred::Equal(a, b) => Ok(a.eval(env)? == b.eval(env)?),
            TemporalPred::And(a, b) => Ok(a.eval(env)? && b.eval(env)?),
            TemporalPred::Or(a, b) => Ok(a.eval(env)? || b.eval(env)?),
            TemporalPred::Not(a) => Ok(!a.eval(env)?),
        }
    }

    /// Conjunction builder.
    #[must_use]
    pub fn and(self, other: TemporalPred) -> TemporalPred {
        TemporalPred::And(Box::new(self), Box::new(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::calendar::date;
    use chronos_core::period::Period;

    fn env_fig6() -> Vec<Period> {
        // f1 = Merrie full [12/01/82, ∞); f2 = Tom [12/05/82, ∞).
        vec![
            Period::from_start(date("12/01/82").unwrap()),
            Period::from_start(date("12/05/82").unwrap()),
        ]
    }

    #[test]
    fn paper_when_clause_holds_for_full_not_associate() {
        // when f1 overlap start of f2
        let pred = TemporalPred::Overlap(TemporalExpr::Var(0), TemporalExpr::Var(1).start_of());
        assert!(pred.eval(&env_fig6()).unwrap());
        // Merrie associate [09/01/77, 12/01/82) does not overlap Tom's start.
        let env = vec![
            Period::new(date("09/01/77").unwrap(), date("12/01/82").unwrap()).unwrap(),
            Period::from_start(date("12/05/82").unwrap()),
        ];
        assert!(!pred.eval(&env).unwrap());
        // …but it does precede Tom.
        let prec = TemporalPred::Precede(TemporalExpr::Var(0), TemporalExpr::Var(1));
        assert!(prec.eval(&env).unwrap());
    }

    #[test]
    fn extend_and_intersect_expressions() {
        let a = Period::new(date("01/01/80").unwrap(), date("01/01/81").unwrap()).unwrap();
        let b = Period::new(date("06/01/80").unwrap(), date("06/01/82").unwrap()).unwrap();
        let env = vec![a, b];
        let ext = TemporalExpr::Var(0).extend(TemporalExpr::Var(1));
        assert_eq!(ext.eval(&env).unwrap(), a.extend(b));
        let inter = TemporalExpr::Intersect(
            Box::new(TemporalExpr::Var(0)),
            Box::new(TemporalExpr::Var(1)),
        );
        assert_eq!(inter.eval(&env).unwrap(), a.intersect(b));
        let eq = TemporalPred::Equal(
            TemporalExpr::Var(0).start_of(),
            TemporalExpr::Const(Period::instant(date("01/01/80").unwrap())),
        );
        assert!(eq.eval(&env).unwrap());
    }

    #[test]
    fn boolean_structure() {
        let env = env_fig6();
        let t = TemporalPred::True;
        let p = TemporalPred::Overlap(TemporalExpr::Var(0), TemporalExpr::Var(1));
        let both = t.clone().and(p.clone());
        assert!(both.eval(&env).unwrap());
        assert!(!TemporalPred::Not(Box::new(p.clone())).eval(&env).unwrap());
        assert!(
            TemporalPred::Or(Box::new(TemporalPred::Not(Box::new(t))), Box::new(p))
                .eval(&env)
                .unwrap()
        );
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let pred = TemporalPred::Overlap(TemporalExpr::Var(5), TemporalExpr::Var(0));
        assert!(pred.eval(&env_fig6()).is_err());
    }
}
