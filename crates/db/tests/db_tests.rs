//! Database-level tests: TQuel end-to-end against all four relation
//! classes, durability, and the paper's Figure 8 built purely from TQuel
//! modification statements.

use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::period::Period;
use chronos_core::relation::temporal::TemporalStore as _;
use chronos_core::relation::Validity;
use chronos_core::taxonomy::DatabaseClass;
use chronos_core::timepoint::TimePoint;
use chronos_db::{Database, DbError, ExecOutcome};

fn d(s: &str) -> Chronon {
    date(s).unwrap()
}

/// Builds the paper's Figure 8 temporal `faculty` relation using only
/// TQuel statements, advancing the clock between transactions.
fn build_figure_8(db: &mut Database, clock: &Arc<ManualClock>) {
    let mut run = |day: &str, stmt: &str| {
        clock.advance_to(d(day));
        db.session()
            .run(stmt)
            .unwrap_or_else(|e| panic!("{stmt}: {e}"));
    };
    run(
        "08/25/77",
        r#"append to faculty (name = "Merrie", rank = "associate")
           valid from "09/01/77" to forever"#,
    );
    run(
        "12/01/82",
        r#"append to faculty (name = "Tom", rank = "full")
           valid from "12/05/82" to forever"#,
    );
    // Correction: Tom was actually an associate.  The retraction and the
    // corrected fact must be one transaction, as in the paper.
    run(
        "12/07/82",
        r#"range of f is faculty
           replace f (rank = "associate") valid from "12/05/82" to forever
           where f.name = "Tom""#,
    );
    run(
        "12/15/82",
        r#"range of f is faculty
           replace f (rank = "full") valid from "12/01/82" to forever
           where f.name = "Merrie""#,
    );
    run(
        "01/10/83",
        r#"append to faculty (name = "Mike", rank = "assistant")
           valid from "01/01/83" to forever"#,
    );
    run(
        "02/25/84",
        r#"range of f is faculty
           delete f where f.name = "Mike""#,
    );
}

fn fresh_db() -> (Database, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    (db, clock)
}

#[test]
fn tquel_replay_of_figure_8_history() {
    let (mut db, clock) = fresh_db();
    build_figure_8(&mut db, &clock);
    let rel = db.relation("faculty").unwrap().as_temporal();
    assert_eq!(rel.transactions(), 6);
    assert_eq!(rel.stored_tuples(), 7, "exactly the 7 rows of Figure 8");

    // Mike's delete on 02/25/84 closes validity at the *commit* time
    // (02/25/84): in the paper the letter said 03/01/84; reproduce that
    // exact row with an explicit replace instead when needed.  Here we
    // check the closure happened.
    let rows = rel.scan_rows().unwrap();
    let mike_current: Vec<_> = rows
        .iter()
        .filter(|r| r.tuple.get(0).as_str() == Some("Mike") && r.is_current())
        .collect();
    assert_eq!(mike_current.len(), 1);
    match mike_current[0].validity {
        Validity::Interval(p) => assert_eq!(p.end(), TimePoint::at(d("02/25/84"))),
        other => panic!("unexpected validity {other:?}"),
    }
}

#[test]
fn paper_query_pair_through_tquel() {
    let (mut db, clock) = fresh_db();
    build_figure_8(&mut db, &clock);
    clock.advance_to(d("01/01/85"));

    let query = |db: &mut Database, as_of: &str| {
        db.session()
            .query(&format!(
                r#"range of f1 is faculty
                   range of f2 is faculty
                   retrieve (f1.rank)
                   where f1.name = "Merrie" and f2.name = "Tom"
                   when f1 overlap start of f2
                   as of "{as_of}""#
            ))
            .unwrap()
    };
    // As of 12/10/82 the database still believed Merrie was associate.
    let early = query(&mut db, "12/10/82");
    assert_eq!(early.kind, DatabaseClass::Temporal);
    assert_eq!(early.column_strings(0), ["associate"]);
    let row = &early.rows[0];
    assert_eq!(
        row.validity,
        Some(Validity::Interval(Period::from_start(d("09/01/77"))))
    );
    assert_eq!(
        row.tx,
        Some(Period::new(d("08/25/77"), d("12/15/82")).unwrap())
    );
    // As of 12/20/82 the retroactive promotion is visible.
    let late = query(&mut db, "12/20/82");
    assert_eq!(late.column_strings(0), ["full"]);
}

#[test]
fn historical_query_without_as_of() {
    let (mut db, clock) = fresh_db();
    build_figure_8(&mut db, &clock);
    let result = db
        .session()
        .query(
            r#"range of f1 is faculty
               range of f2 is faculty
               retrieve (f1.rank)
               where f1.name = "Merrie" and f2.name = "Tom"
               when f1 overlap start of f2"#,
        )
        .unwrap();
    // Current knowledge: Merrie was full when Tom arrived.
    assert_eq!(result.column_strings(0), ["full"]);
    assert_eq!(
        result.rows[0].validity,
        Some(Validity::Interval(Period::from_start(d("12/01/82"))))
    );
}

#[test]
fn four_classes_coexist_in_one_database() {
    let clock = Arc::new(ManualClock::new(Chronon::new(100)));
    let mut db = Database::in_memory(clock.clone());
    let mut s = db.session();
    s.run(
        r#"
        create s_rel (name = str) as static
        create r_rel (name = str) as rollback
        create h_rel (name = str) as historical
        create t_rel (name = str) as temporal
    "#,
    )
    .unwrap();
    assert_eq!(db.classify("s_rel"), Some(DatabaseClass::Static));
    assert_eq!(db.classify("r_rel"), Some(DatabaseClass::StaticRollback));
    assert_eq!(db.classify("h_rel"), Some(DatabaseClass::Historical));
    assert_eq!(db.classify("t_rel"), Some(DatabaseClass::Temporal));

    for rel in ["s_rel", "r_rel", "h_rel", "t_rel"] {
        clock.tick(1);
        db.session()
            .run(&format!(r#"append to {rel} (name = "x")"#))
            .unwrap();
    }

    // `as of` works only where transaction time exists.
    for (rel, ok) in [
        ("s_rel", false),
        ("r_rel", true),
        ("h_rel", false),
        ("t_rel", true),
    ] {
        let res = db.session().query(&format!(
            r#"range of v is {rel}
               retrieve (v.name) as of "{}""#,
            chronos_core::calendar::Date::from_chronon(Chronon::new(150))
        ));
        assert_eq!(res.is_ok(), ok, "{rel}: {res:?}");
    }

    // Result classes follow Figure 10.
    let kind = |db: &mut Database, rel: &str| {
        db.session()
            .query(&format!("range of v is {rel} retrieve (v.name)"))
            .unwrap()
            .kind
    };
    assert_eq!(kind(&mut db, "s_rel"), DatabaseClass::Static);
    assert_eq!(
        kind(&mut db, "r_rel"),
        DatabaseClass::Static,
        "pure static result"
    );
    assert_eq!(kind(&mut db, "h_rel"), DatabaseClass::Historical);
    assert_eq!(kind(&mut db, "t_rel"), DatabaseClass::Temporal);
}

#[test]
fn durable_database_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("chronos-db-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    {
        let mut db = Database::open(&dir, clock.clone()).unwrap();
        db.session()
            .run("create faculty (name = str, rank = str) as temporal")
            .unwrap();
        build_figure_8(&mut db, &clock);
    }
    {
        let clock2 = Arc::new(ManualClock::new(d("01/01/85")));
        let mut db = Database::open(&dir, clock2).unwrap();
        assert_eq!(db.relation_names(), ["faculty"]);
        let rel = db.relation("faculty").unwrap().as_temporal();
        assert_eq!(rel.transactions(), 6);
        assert_eq!(rel.stored_tuples(), 7);
        // The bitemporal query still answers from the replayed state.
        let res = db
            .session()
            .query(
                r#"range of f1 is faculty
                   range of f2 is faculty
                   retrieve (f1.rank)
                   where f1.name = "Merrie" and f2.name = "Tom"
                   when f1 overlap start of f2
                   as of "12/10/82""#,
            )
            .unwrap();
        assert_eq!(res.column_strings(0), ["associate"]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn destroyed_relations_stay_destroyed_after_reopen() {
    let dir = std::env::temp_dir().join(format!("chronos-db-destroy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(ManualClock::new(Chronon::new(10)));
    {
        let mut db = Database::open(&dir, clock.clone()).unwrap();
        let mut s = db.session();
        s.run(r#"create temp_rel (name = str) as temporal"#)
            .unwrap();
        s.run(r#"append to temp_rel (name = "ghost")"#).unwrap();
        s.run("destroy temp_rel").unwrap();
        s.run("create keeper (name = str) as temporal").unwrap();
        s.run(r#"append to keeper (name = "kept")"#).unwrap();
    }
    let db = Database::open(&dir, clock).unwrap();
    assert_eq!(db.relation_names(), ["keeper"]);
    // The old relation's log records were skipped, the new one's
    // replayed; rel-ids were not confused.
    assert_eq!(
        db.relation("keeper").unwrap().as_temporal().stored_tuples(),
        1
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn errors_are_reported_not_panicked() {
    let clock = Arc::new(ManualClock::new(Chronon::new(10)));
    let mut db = Database::in_memory(clock);
    let mut s = db.session();
    s.run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    // Unknown relation.
    assert!(matches!(
        s.run("range of f is nosuch"),
        Err(DbError::Catalog(_))
    ));
    // Unknown attribute.
    assert!(s
        .run(r#"append to faculty (name = "x", salary = "high")"#)
        .is_err());
    // Missing attribute.
    assert!(s.run(r#"append to faculty (name = "x")"#).is_err());
    // Duplicate create.
    assert!(s.run("create faculty (a = int) as static").is_err());
    // valid clause on a static relation.
    s.run("create s (name = str) as static").unwrap();
    assert!(s
        .run(r#"append to s (name = "x") valid from "01/01/80" to forever"#)
        .is_err());
    // Delete with no matches affects zero rows but succeeds.
    let out = s
        .run(r#"range of f is faculty delete f where f.name = "nobody""#)
        .unwrap();
    assert!(matches!(out[1], ExecOutcome::Deleted(0)));
}

#[test]
fn event_relation_appends_take_valid_at() {
    let clock = Arc::new(ManualClock::new(d("08/25/77")));
    let mut db = Database::in_memory(clock.clone());
    let mut s = db.session();
    s.run("create promotion (name = str, rank = str, effective = date) as temporal event")
        .unwrap();
    s.run(
        r#"append to promotion (name = "Merrie", rank = "associate", effective = "09/01/77")
           valid at "08/25/77""#,
    )
    .unwrap();
    // Interval clause on an event relation rejected.
    assert!(s
        .run(
            r#"append to promotion (name = "X", rank = "full", effective = "01/01/80")
               valid from "01/01/80" to forever"#
        )
        .is_err());
    let res = s
        .query(r#"range of p is promotion retrieve (p.effective) where p.name = "Merrie""#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["09/01/77"]);
    assert_eq!(res.rows[0].validity, Some(Validity::Event(d("08/25/77"))));
}
