//! Database-level tests: TQuel end-to-end against all four relation
//! classes, durability, and the paper's Figure 8 built purely from TQuel
//! modification statements.

use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::clock::ManualClock;
use chronos_core::period::Period;
use chronos_core::relation::temporal::TemporalStore as _;
use chronos_core::relation::Validity;
use chronos_core::taxonomy::DatabaseClass;
use chronos_core::timepoint::TimePoint;
use chronos_db::{Database, DbError, ExecOutcome};

fn d(s: &str) -> Chronon {
    date(s).unwrap()
}

/// Builds the paper's Figure 8 temporal `faculty` relation using only
/// TQuel statements, advancing the clock between transactions.
fn build_figure_8(db: &mut Database, clock: &Arc<ManualClock>) {
    let mut run = |day: &str, stmt: &str| {
        clock.advance_to(d(day));
        db.session()
            .run(stmt)
            .unwrap_or_else(|e| panic!("{stmt}: {e}"));
    };
    run(
        "08/25/77",
        r#"append to faculty (name = "Merrie", rank = "associate")
           valid from "09/01/77" to forever"#,
    );
    run(
        "12/01/82",
        r#"append to faculty (name = "Tom", rank = "full")
           valid from "12/05/82" to forever"#,
    );
    // Correction: Tom was actually an associate.  The retraction and the
    // corrected fact must be one transaction, as in the paper.
    run(
        "12/07/82",
        r#"range of f is faculty
           replace f (rank = "associate") valid from "12/05/82" to forever
           where f.name = "Tom""#,
    );
    run(
        "12/15/82",
        r#"range of f is faculty
           replace f (rank = "full") valid from "12/01/82" to forever
           where f.name = "Merrie""#,
    );
    run(
        "01/10/83",
        r#"append to faculty (name = "Mike", rank = "assistant")
           valid from "01/01/83" to forever"#,
    );
    run(
        "02/25/84",
        r#"range of f is faculty
           delete f where f.name = "Mike""#,
    );
}

fn fresh_db() -> (Database, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    let mut db = Database::in_memory(clock.clone());
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    (db, clock)
}

#[test]
fn tquel_replay_of_figure_8_history() {
    let (mut db, clock) = fresh_db();
    build_figure_8(&mut db, &clock);
    let rel = db.relation("faculty").unwrap().as_temporal();
    assert_eq!(rel.transactions(), 6);
    assert_eq!(rel.stored_tuples(), 7, "exactly the 7 rows of Figure 8");

    // Mike's delete on 02/25/84 closes validity at the *commit* time
    // (02/25/84): in the paper the letter said 03/01/84; reproduce that
    // exact row with an explicit replace instead when needed.  Here we
    // check the closure happened.
    let rows = rel.scan_rows().unwrap();
    let mike_current: Vec<_> = rows
        .iter()
        .filter(|r| r.tuple.get(0).as_str() == Some("Mike") && r.is_current())
        .collect();
    assert_eq!(mike_current.len(), 1);
    match mike_current[0].validity {
        Validity::Interval(p) => assert_eq!(p.end(), TimePoint::at(d("02/25/84"))),
        other => panic!("unexpected validity {other:?}"),
    }
}

#[test]
fn paper_query_pair_through_tquel() {
    let (mut db, clock) = fresh_db();
    build_figure_8(&mut db, &clock);
    clock.advance_to(d("01/01/85"));

    let query = |db: &mut Database, as_of: &str| {
        db.session()
            .query(&format!(
                r#"range of f1 is faculty
                   range of f2 is faculty
                   retrieve (f1.rank)
                   where f1.name = "Merrie" and f2.name = "Tom"
                   when f1 overlap start of f2
                   as of "{as_of}""#
            ))
            .unwrap()
    };
    // As of 12/10/82 the database still believed Merrie was associate.
    let early = query(&mut db, "12/10/82");
    assert_eq!(early.kind, DatabaseClass::Temporal);
    assert_eq!(early.column_strings(0), ["associate"]);
    let row = &early.rows[0];
    assert_eq!(
        row.validity,
        Some(Validity::Interval(Period::from_start(d("09/01/77"))))
    );
    assert_eq!(
        row.tx,
        Some(Period::new(d("08/25/77"), d("12/15/82")).unwrap())
    );
    // As of 12/20/82 the retroactive promotion is visible.
    let late = query(&mut db, "12/20/82");
    assert_eq!(late.column_strings(0), ["full"]);
}

#[test]
fn historical_query_without_as_of() {
    let (mut db, clock) = fresh_db();
    build_figure_8(&mut db, &clock);
    let result = db
        .session()
        .query(
            r#"range of f1 is faculty
               range of f2 is faculty
               retrieve (f1.rank)
               where f1.name = "Merrie" and f2.name = "Tom"
               when f1 overlap start of f2"#,
        )
        .unwrap();
    // Current knowledge: Merrie was full when Tom arrived.
    assert_eq!(result.column_strings(0), ["full"]);
    assert_eq!(
        result.rows[0].validity,
        Some(Validity::Interval(Period::from_start(d("12/01/82"))))
    );
}

#[test]
fn four_classes_coexist_in_one_database() {
    let clock = Arc::new(ManualClock::new(Chronon::new(100)));
    let mut db = Database::in_memory(clock.clone());
    let mut s = db.session();
    s.run(
        r#"
        create s_rel (name = str) as static
        create r_rel (name = str) as rollback
        create h_rel (name = str) as historical
        create t_rel (name = str) as temporal
    "#,
    )
    .unwrap();
    assert_eq!(db.classify("s_rel"), Some(DatabaseClass::Static));
    assert_eq!(db.classify("r_rel"), Some(DatabaseClass::StaticRollback));
    assert_eq!(db.classify("h_rel"), Some(DatabaseClass::Historical));
    assert_eq!(db.classify("t_rel"), Some(DatabaseClass::Temporal));

    for rel in ["s_rel", "r_rel", "h_rel", "t_rel"] {
        clock.tick(1);
        db.session()
            .run(&format!(r#"append to {rel} (name = "x")"#))
            .unwrap();
    }

    // `as of` works only where transaction time exists.
    for (rel, ok) in [
        ("s_rel", false),
        ("r_rel", true),
        ("h_rel", false),
        ("t_rel", true),
    ] {
        let res = db.session().query(&format!(
            r#"range of v is {rel}
               retrieve (v.name) as of "{}""#,
            chronos_core::calendar::Date::from_chronon(Chronon::new(150))
        ));
        assert_eq!(res.is_ok(), ok, "{rel}: {res:?}");
    }

    // Result classes follow Figure 10.
    let kind = |db: &mut Database, rel: &str| {
        db.session()
            .query(&format!("range of v is {rel} retrieve (v.name)"))
            .unwrap()
            .kind
    };
    assert_eq!(kind(&mut db, "s_rel"), DatabaseClass::Static);
    assert_eq!(
        kind(&mut db, "r_rel"),
        DatabaseClass::Static,
        "pure static result"
    );
    assert_eq!(kind(&mut db, "h_rel"), DatabaseClass::Historical);
    assert_eq!(kind(&mut db, "t_rel"), DatabaseClass::Temporal);
}

#[test]
fn durable_database_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("chronos-db-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    {
        let mut db = Database::open(&dir, clock.clone()).unwrap();
        db.session()
            .run("create faculty (name = str, rank = str) as temporal")
            .unwrap();
        build_figure_8(&mut db, &clock);
    }
    {
        let clock2 = Arc::new(ManualClock::new(d("01/01/85")));
        let mut db = Database::open(&dir, clock2).unwrap();
        assert_eq!(db.relation_names(), ["faculty"]);
        let rel = db.relation("faculty").unwrap().as_temporal();
        assert_eq!(rel.transactions(), 6);
        assert_eq!(rel.stored_tuples(), 7);
        // The bitemporal query still answers from the replayed state.
        let res = db
            .session()
            .query(
                r#"range of f1 is faculty
                   range of f2 is faculty
                   retrieve (f1.rank)
                   where f1.name = "Merrie" and f2.name = "Tom"
                   when f1 overlap start of f2
                   as of "12/10/82""#,
            )
            .unwrap();
        assert_eq!(res.column_strings(0), ["associate"]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn destroyed_relations_stay_destroyed_after_reopen() {
    let dir = std::env::temp_dir().join(format!("chronos-db-destroy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(ManualClock::new(Chronon::new(10)));
    {
        let mut db = Database::open(&dir, clock.clone()).unwrap();
        let mut s = db.session();
        s.run(r#"create temp_rel (name = str) as temporal"#)
            .unwrap();
        s.run(r#"append to temp_rel (name = "ghost")"#).unwrap();
        s.run("destroy temp_rel").unwrap();
        s.run("create keeper (name = str) as temporal").unwrap();
        s.run(r#"append to keeper (name = "kept")"#).unwrap();
    }
    let db = Database::open(&dir, clock).unwrap();
    assert_eq!(db.relation_names(), ["keeper"]);
    // The old relation's log records were skipped, the new one's
    // replayed; rel-ids were not confused.
    assert_eq!(
        db.relation("keeper").unwrap().as_temporal().stored_tuples(),
        1
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn errors_are_reported_not_panicked() {
    let clock = Arc::new(ManualClock::new(Chronon::new(10)));
    let mut db = Database::in_memory(clock);
    let mut s = db.session();
    s.run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    // Unknown relation.
    assert!(matches!(
        s.run("range of f is nosuch"),
        Err(DbError::Catalog(_))
    ));
    // Unknown attribute.
    assert!(s
        .run(r#"append to faculty (name = "x", salary = "high")"#)
        .is_err());
    // Missing attribute.
    assert!(s.run(r#"append to faculty (name = "x")"#).is_err());
    // Duplicate create.
    assert!(s.run("create faculty (a = int) as static").is_err());
    // valid clause on a static relation.
    s.run("create s (name = str) as static").unwrap();
    assert!(s
        .run(r#"append to s (name = "x") valid from "01/01/80" to forever"#)
        .is_err());
    // Delete with no matches affects zero rows but succeeds.
    let out = s
        .run(r#"range of f is faculty delete f where f.name = "nobody""#)
        .unwrap();
    assert!(matches!(out[1], ExecOutcome::Deleted(0)));
}

#[test]
fn event_relation_appends_take_valid_at() {
    let clock = Arc::new(ManualClock::new(d("08/25/77")));
    let mut db = Database::in_memory(clock.clone());
    let mut s = db.session();
    s.run("create promotion (name = str, rank = str, effective = date) as temporal event")
        .unwrap();
    s.run(
        r#"append to promotion (name = "Merrie", rank = "associate", effective = "09/01/77")
           valid at "08/25/77""#,
    )
    .unwrap();
    // Interval clause on an event relation rejected.
    assert!(s
        .run(
            r#"append to promotion (name = "X", rank = "full", effective = "01/01/80")
               valid from "01/01/80" to forever"#
        )
        .is_err());
    let res = s
        .query(r#"range of p is promotion retrieve (p.effective) where p.name = "Merrie""#)
        .unwrap();
    assert_eq!(res.column_strings(0), ["09/01/77"]);
    assert_eq!(res.rows[0].validity, Some(Validity::Event(d("08/25/77"))));
}

// ---------------------------------------------------------------------
// workload analytics: analyze / sys$tablestats / sys$queries / explain
// ---------------------------------------------------------------------

/// Queries `sys$tablestats` for one relation's latest sample as a
/// `stat -> value` map (optionally rolled back with `as of`).
fn tablestats_map(
    db: &mut Database,
    relation: &str,
    as_of: Option<&str>,
) -> std::collections::HashMap<String, i64> {
    let as_of = as_of.map(|t| format!(" as of \"{t}\"")).unwrap_or_default();
    let res = db
        .session()
        .query(&format!(
            r#"range of ts is sys$tablestats
               retrieve (ts.stat, ts.value) where ts.relation = "{relation}"{as_of}"#
        ))
        .unwrap();
    res.rows
        .iter()
        .map(|r| {
            (
                r.tuple.get(0).to_string(),
                r.tuple.get(1).to_string().parse::<i64>().unwrap(),
            )
        })
        .collect()
}

#[test]
fn analyze_populates_sys_tablestats_with_histograms() {
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    let mut db = Database::in_memory(clock.clone());
    let mut s = db.session();
    s.run("create people (name = str, rank = str) as temporal")
        .unwrap();
    // 500 facts, then a sweeping retroactive replace: 1000 stored
    // versions in chains of length 2.
    let mut program = String::new();
    for i in 0..500 {
        program.push_str(&format!(
            "append to people (name = \"p{i}\", rank = \"junior\")\n"
        ));
    }
    s.run(&program).unwrap();
    clock.advance_to(d("01/01/80"));
    s.run(r#"range of p is people replace p (rank = "senior") where p.rank = "junior""#)
        .unwrap();

    let out = s.run("analyze people").unwrap();
    match &out[0] {
        ExecOutcome::Analyzed { relation, stats } => {
            assert_eq!(relation, "people");
            assert!(
                *stats > 10,
                "expected a full statistics sample, got {stats}"
            );
        }
        other => panic!("expected Analyzed, got {other:?}"),
    }
    drop(s);

    // A temporal replace supersedes the old version (its transaction
    // period closes), stores a correction copy with closed validity,
    // and opens the new version: 3 versions per key.
    let map = tablestats_map(&mut db, "people", None);
    assert_eq!(map["versions"], 1500);
    assert_eq!(map["rows"], 1000, "tx-current versions after the replace");
    assert_eq!(map["distinct_keys"], 500);
    assert_eq!(
        map["chain_len_le_4"], 500,
        "every key has exactly 3 versions"
    );
    // The replace closed 500 validity intervals (3 years each) and left
    // 1000 open; transaction periods mirror that shape.
    let closed_vt: i64 = [
        "vt_dur_le_1",
        "vt_dur_le_4",
        "vt_dur_le_16",
        "vt_dur_le_64",
        "vt_dur_le_256",
        "vt_dur_gt_256",
    ]
    .iter()
    .map(|k| map[*k])
    .sum();
    assert_eq!(closed_vt, 500);
    assert_eq!(map["vt_dur_open"], 1000);
    assert_eq!(map["tx_dur_open"], 1000);
    // All 500 superseded intervals cover [77, 80): peak concurrency is
    // far past the last bucket edge.
    assert!(
        map["overlap_gt_8"] > 0,
        "overlap histogram is empty: {map:?}"
    );
}

#[test]
fn sys_tablestats_as_of_shows_statistics_evolution() {
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    let mut db = Database::in_memory(clock.clone());
    let mut s = db.session();
    s.run("create people (name = str) as temporal").unwrap();
    s.run(r#"append to people (name = "a")"#).unwrap();
    s.run("analyze people").unwrap();
    clock.advance_to(d("01/01/80"));
    s.run(r#"append to people (name = "b")"#).unwrap();
    s.run("analyze people").unwrap();
    drop(s);

    assert_eq!(tablestats_map(&mut db, "people", None)["versions"], 2);
    // Rolled back between the two samples, the first one answers.
    assert_eq!(
        tablestats_map(&mut db, "people", Some("01/01/78"))["versions"],
        1
    );
}

#[test]
fn same_shape_queries_share_one_fingerprint() {
    let (mut db, clock) = fresh_db();
    build_figure_8(&mut db, &clock);
    let mut s = db.session();
    s.query(r#"range of f is faculty retrieve (f.rank) where f.name = "Mike""#)
        .unwrap();
    s.query(r#"range of f is faculty retrieve (f.rank) where f.name = "Tom""#)
        .unwrap();
    let res = s
        .query(r#"range of q is sys$queries retrieve (q.statement, q.calls) where q.kind = "retrieve""#)
        .unwrap();
    assert_eq!(res.len(), 1, "two literals, one fingerprint: {res:?}");
    let statement = res.rows[0].tuple.get(0).to_string();
    assert!(
        statement.contains("\"?\""),
        "literals should be normalized away: {statement}"
    );
    assert_eq!(res.rows[0].tuple.get(1).to_string(), "2");
}

#[test]
fn explain_shows_estimated_vs_actual_after_analyze() {
    let (mut db, clock) = fresh_db();
    build_figure_8(&mut db, &clock);
    let mut s = db.session();
    s.run("analyze faculty").unwrap();
    let out = s
        .run(r#"range of f is faculty explain retrieve (f.rank) where f.name = "Mike""#)
        .unwrap();
    let report = match &out[1] {
        ExecOutcome::Explained { report, .. } => report.clone(),
        other => panic!("expected Explained, got {other:?}"),
    };
    assert!(
        report.contains("est="),
        "explain should show the statistics-based estimate: {report}"
    );
}

#[test]
fn connections_as_of_rejection_names_the_relation() {
    let (mut db, _clock) = fresh_db();
    let err = db
        .session()
        .query(r#"range of c is sys$connections retrieve (c.peer) as of "01/01/80""#)
        .unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("sys$connections"),
        "the rejection should name the relation, not just the range variable: {msg}"
    );
}

/// Reads the `sys$wal` system relation into `stat -> value`.
fn sys_wal_map(db: &mut Database) -> std::collections::HashMap<String, i64> {
    let res = db
        .session()
        .query(r#"range of w is sys$wal retrieve (w.stat, w.value)"#)
        .unwrap();
    res.rows
        .iter()
        .map(|r| {
            (
                r.tuple.get(0).to_string(),
                r.tuple.get(1).to_string().parse::<i64>().unwrap(),
            )
        })
        .collect()
}

#[test]
fn sys_wal_agrees_with_the_offline_inspector() {
    let dir = std::env::temp_dir().join(format!("chronos-db-syswal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    let mut db = Database::open(&dir, clock.clone()).unwrap();
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    build_figure_8(&mut db, &clock);

    // Live view (the sys$wal relation) vs the offline walker the
    // doctor uses, on a quiesced database: they must agree exactly.
    let map = sys_wal_map(&mut db);
    let scan = chronos_storage::inspect::scan_wal(&dir.join("wal")).unwrap();
    assert_eq!(map["durable"], 1);
    assert_eq!(map["frames"], scan.frames.len() as i64);
    assert_eq!(map["bytes"], scan.total_len as i64);
    assert_eq!(map["valid_bytes"], scan.valid_len as i64);
    assert_eq!(map["tail_bad_bytes"], 0);
    let (ins, rem, setv) = scan.op_totals();
    assert_eq!(map["ops_insert"], ins as i64);
    assert_eq!(map["ops_remove"], rem as i64);
    assert_eq!(map["ops_set_validity"], setv as i64);
    assert!(map["frames"] > 0, "figure 8 committed six transactions");
    assert_eq!(
        map["lsn_last"],
        d("02/25/84").ticks(),
        "last frame carries the last commit time"
    );
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sys_wal_reports_truncations_after_checkpoint() {
    let dir = std::env::temp_dir().join(format!("chronos-db-waltrunc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    let mut db = Database::open(&dir, clock.clone()).unwrap();
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    build_figure_8(&mut db, &clock);
    let written = sys_wal_map(&mut db)["bytes"];
    assert!(written > 0);
    db.checkpoint().unwrap();
    let map = sys_wal_map(&mut db);
    assert_eq!(map["bytes"], 0, "checkpoint resets the log");
    assert_eq!(map["truncations"], 1);
    assert_eq!(map["last_truncation_bytes"], written);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sys_pages_reports_physical_shape() {
    let (mut db, clock) = fresh_db();
    build_figure_8(&mut db, &clock);
    let res = db
        .session()
        .query(
            r#"range of p is sys$pages
               retrieve (p.versions, p.pages, p.bytes_per_version, p.dup_factor_x1000)
               where p.relation = "faculty""#,
        )
        .unwrap();
    assert_eq!(res.len(), 1);
    let row = &res.rows[0].tuple;
    let versions: i64 = row.get(0).to_string().parse().unwrap();
    let pages: i64 = row.get(1).to_string().parse().unwrap();
    let bytes_per_version: i64 = row.get(2).to_string().parse().unwrap();
    let dup: i64 = row.get(3).to_string().parse().unwrap();
    assert_eq!(versions, 7, "the seven stored rows of Figure 8");
    assert!(pages >= 1);
    assert!(bytes_per_version > 0);
    assert!(
        dup > 1000,
        "version chains share key bytes, so duplication > 1.0x: {dup}"
    );
}

#[test]
fn storage_system_relations_reject_writes_and_as_of_by_name() {
    let (mut db, _clock) = fresh_db();
    let err = db
        .session()
        .run(r#"append to sys$wal (stat = "x", value = 1, detail = "y")"#)
        .unwrap_err();
    assert!(
        format!("{err}").contains("sys$wal"),
        "write rejection should name the relation: {err}"
    );
    let err = db
        .session()
        .query(r#"range of p is sys$pages retrieve (p.relation) as of "01/01/80""#)
        .unwrap_err();
    assert!(
        format!("{err}").contains("sys$pages"),
        "as-of rejection should name the relation: {err}"
    );
}

#[test]
fn analyze_records_bytes_per_version_and_duplication() {
    let (mut db, clock) = fresh_db();
    build_figure_8(&mut db, &clock);
    db.session().run("analyze faculty").unwrap();
    let map = tablestats_map(&mut db, "faculty", None);
    assert!(map["bytes_per_version"] > 0, "stats: {map:?}");
    assert!(map["dup_factor_x1000"] > 1000, "stats: {map:?}");
}

/// Sorted, printable rows of every relation answer we care about —
/// captured before and after a freeze to prove the migration is
/// invisible to queries.
fn query_fingerprint(db: &mut Database) -> Vec<String> {
    let mut out = Vec::new();
    for q in [
        r#"range of f is faculty retrieve (f.name, f.rank)"#,
        r#"range of f is faculty retrieve (f.name, f.rank) as of "01/01/83""#,
        r#"range of f is faculty retrieve (f.name, f.rank) as of "12/10/82""#,
        r#"range of f is faculty retrieve (f.name, f.rank) when f overlap "12/05/82""#,
    ] {
        let res = db.session().query(q).unwrap();
        let mut rows: Vec<String> = res.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        out.push(format!("{q} => {rows:?}"));
    }
    out
}

#[test]
fn freeze_migrates_closed_versions_without_changing_answers() {
    let dir = std::env::temp_dir().join(format!("chronos-db-freeze-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    let mut db = Database::open(&dir, clock.clone()).unwrap();
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    build_figure_8(&mut db, &clock);
    let before = query_fingerprint(&mut db);

    let outcomes = db.session().run("freeze faculty").unwrap();
    match &outcomes[0] {
        ExecOutcome::Frozen {
            relation,
            versions,
            chains,
            file_bytes,
        } => {
            assert_eq!(relation, "faculty");
            assert_eq!(*versions, 3, "Figure 8 has exactly 3 closed versions");
            assert!(*chains >= 2 && *file_bytes > 0);
        }
        other => panic!("expected Frozen, got {other:?}"),
    }
    assert!(dir.join("segments/faculty-0.seg").is_file());
    let rel = db.relation("faculty").unwrap().as_temporal();
    assert_eq!(rel.segment_versions(), 3);
    assert_eq!(
        rel.frozen_version_count(),
        0,
        "heap keeps only the open tail"
    );
    assert_eq!(rel.stored_tuples(), 7, "logical content unchanged");

    // Queries are unchanged by the physical migration.
    assert_eq!(query_fingerprint(&mut db), before);

    // sys$pages grows a `segment` class row with ~1.0x duplication and
    // a pseudo-row sizing the segment file.
    let res = db
        .session()
        .query(
            r#"range of p is sys$pages
               retrieve (p.relation, p.versions, p.dup_factor_x1000)
               where p.class = "segment""#,
        )
        .unwrap();
    assert_eq!(res.len(), 1);
    let row = &res.rows[0].tuple;
    assert_eq!(row.get(0).as_str(), Some("faculty"));
    assert_eq!(row.get(1).to_string(), "3");
    // Three singleton chains: all directory overhead, no delta savings
    // yet — the ≤1.3x bound is measured at chain length 32 (bench T16).
    let dup: i64 = row.get(2).to_string().parse().unwrap();
    assert!(
        (900..=1500).contains(&dup),
        "tiny segments stay within overhead bounds: {dup}"
    );
    let res = db
        .session()
        .query(
            r#"range of p is sys$pages retrieve (p.bytes_disk)
               where p.relation = "file:segments/faculty-0.seg""#,
        )
        .unwrap();
    assert_eq!(res.len(), 1);

    // A second freeze has nothing left to move.
    let outcomes = db.session().run("freeze faculty").unwrap();
    assert!(
        matches!(&outcomes[0], ExecOutcome::Frozen { versions: 0, .. }),
        "nothing freezable twice in a row"
    );

    // Reopen: segments are a cache, so recovery rebuilds the full heap
    // and purges stale segment files — answers still identical.
    drop(db);
    let mut db = Database::open(&dir, clock.clone()).unwrap();
    assert!(
        !dir.join("segments/faculty-0.seg").exists(),
        "stale segments purged at open"
    );
    let rel = db.relation("faculty").unwrap().as_temporal();
    assert_eq!(rel.segment_versions(), 0);
    assert_eq!(rel.stored_tuples(), 7);
    assert_eq!(query_fingerprint(&mut db), before);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_auto_freezes_past_the_threshold() {
    let dir = std::env::temp_dir().join(format!("chronos-db-autofreeze-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    let mut db = Database::open(&dir, clock.clone()).unwrap();
    db.session()
        .run("create faculty (name = str, rank = str) as temporal")
        .unwrap();
    build_figure_8(&mut db, &clock);

    // Below the threshold nothing freezes at checkpoint.
    db.set_freeze_threshold(4);
    db.checkpoint().unwrap();
    assert!(std::fs::read_dir(dir.join("segments"))
        .map(|d| d.count() == 0)
        .unwrap_or(true));

    // At (or past) it, the checkpoint freezes automatically.
    db.set_freeze_threshold(3);
    db.checkpoint().unwrap();
    assert!(dir.join("segments/faculty-0.seg").is_file());
    let rel = db.relation("faculty").unwrap().as_temporal();
    assert_eq!(rel.segment_versions(), 3);
    assert_eq!(rel.frozen_version_count(), 0);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn freeze_requires_a_durable_temporal_relation() {
    let (mut db, _clock) = fresh_db();
    let err = db.session().run("freeze faculty").unwrap_err();
    assert!(
        matches!(err, DbError::Capability(_)),
        "in-memory databases have no segment directory: {err}"
    );

    let dir = std::env::temp_dir().join(format!("chronos-db-freezecap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Arc::new(ManualClock::new(d("01/01/77")));
    let mut db = Database::open(&dir, clock).unwrap();
    db.session()
        .run("create snap (name = str) as static")
        .unwrap();
    let err = db.session().run("freeze snap").unwrap_err();
    assert!(
        matches!(err, DbError::Capability(_)),
        "only temporal histories freeze: {err}"
    );
    let err = db.session().run("freeze sys$pages").unwrap_err();
    assert!(matches!(err, DbError::Capability(_)));
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}
