//! Sessions: executing TQuel programs against a database.
//!
//! A [`Session`] tracks `range of` declarations and dispatches each
//! statement: retrieves go to the `chronos-tquel` evaluator; data
//! definition and modification statements are lowered here to the
//! uniform [`HistoricalOp`] vocabulary and committed through the
//! database.
//!
//! ## Modification semantics by class
//!
//! * **static** — destructive insert/delete/replace (§4.1);
//! * **static rollback** — the same operations, recorded append-only at
//!   the allocated transaction time (§4.2);
//! * **historical / temporal, interval** — `append` records a new fact
//!   over its `valid` period (default `[now, ∞)`); `delete` *logically
//!   deletes*: it closes the validity of affected rows at `now`
//!   (future-only rows are retracted outright); `replace` terminates the
//!   old fact where the new period begins and records the new fact —
//!   exactly the transaction shape that produces the paper's Figure 8;
//! * **event relations** — `append` records an event at `valid at e`
//!   (default `now`); `delete` retracts matching events; `replace`
//!   retracts and re-records.

use std::collections::HashMap;
use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::relation::{HistoricalOp, RowSelector, Validity};
use chronos_core::schema::{RelationClass, Schema, TemporalSignature};
use chronos_core::timepoint::TimePoint;
use chronos_core::tuple::Tuple;
use chronos_core::value::{AttrType, Value};
use chronos_obs::trace::Recorder;
use chronos_tquel::analyze::{analyze_valid_const, analyze_where_single, ValidPlan};
use chronos_tquel::ast::{
    Assignment, ClassAst, Operand, Retrieve, Statement, ValidClause, WhereExpr,
};
use chronos_tquel::exec::{execute_retrieve, execute_retrieve_traced, ResultRelation};
use chronos_tquel::parser::{parse_program, parse_statement};
use chronos_tquel::provider::{RelationInfo, SourceRow};
use chronos_tquel::unparse::unparse;
use chronos_tquel::{TquelError, TquelResult};

use crate::database::Database;
use crate::error::{DbError, DbResult};

/// What executing one statement produced.
#[derive(Debug)]
pub enum ExecOutcome {
    /// A `range of` declaration was recorded.
    Declared,
    /// A retrieve produced a derived relation.
    Retrieved(ResultRelation),
    /// A `retrieve into` materialized a derived relation in the catalog.
    Materialized {
        /// The new relation's name.
        relation: String,
        /// How many rows it holds.
        rows: usize,
    },
    /// An `append` committed (with its transaction time).
    Appended(Chronon),
    /// A `delete` affected this many rows.
    Deleted(usize),
    /// A `replace` affected this many rows.
    Replaced(usize),
    /// A `create` defined a relation.
    Created,
    /// A `destroy` dropped a relation.
    Destroyed,
    /// An `explain`/`profile` prefix traced the inner statement.
    Explained {
        /// True when invoked as `profile` (timings included).
        profile: bool,
        /// The rendered span tree plus counter deltas.
        report: String,
    },
    /// An `analyze` collected storage statistics into `sys$tablestats`.
    Analyzed {
        /// The analyzed relation.
        relation: String,
        /// How many statistics the sample holds.
        stats: usize,
    },
    /// A `freeze` migrated closed versions into an immutable segment.
    Frozen {
        /// The frozen relation.
        relation: String,
        /// Versions moved off the heap (0 ⇒ nothing was freezable).
        versions: u64,
        /// Distinct version chains in the segment.
        chains: u64,
        /// On-disk size of the segment written, bytes.
        file_bytes: u64,
    },
}

impl ExecOutcome {
    /// The derived relation, if this outcome carries one.
    pub fn relation(&self) -> Option<&ResultRelation> {
        match self {
            ExecOutcome::Retrieved(r) => Some(r),
            _ => None,
        }
    }
}

/// What a [`Session`] needs from the engine underneath it.
///
/// Two implementations exist: `&mut Database` executes directly
/// against an exclusively-owned database (the original single-
/// threaded path), and [`EngineBackend`](crate::engine::EngineBackend)
/// routes reads through a snapshot pin and writes through the
/// group-commit queue of a shared [`Engine`](crate::engine::Engine).
pub trait SessionBackend {
    /// Catalog lookup (stored relations and `sys$` projections).
    fn info(&self, relation: &str) -> Option<RelationInfo>;

    /// The transaction time the next commit would receive.
    fn now(&self) -> Chronon;

    /// The observability recorder statements report into.
    fn recorder(&self) -> Arc<Recorder>;

    /// The engine-unique session id; 0 for local, unregistered
    /// backends (the CLI's embedded `&mut Database` session).
    fn session_id(&self) -> u64 {
        0
    }

    /// Hook invoked once per executed statement with its trace id
    /// (engine backends mirror it into the live session registry).
    fn note_statement(&self, _trace_id: &str) {}

    /// Commits `ops` to `relation`; the returned chronon is the
    /// allocated transaction time, durable on return.
    fn commit(&mut self, relation: &str, ops: &[HistoricalOp]) -> DbResult<Chronon>;

    /// Scans the latest stored state of `relation` (modification
    /// lowering: `delete`/`replace` act on what exists *now*).
    fn scan_latest(&self, relation: &str) -> DbResult<Vec<SourceRow>>;

    /// Runs a retrieve; with `recorder` the traced evaluator records
    /// analyze/scan/product spans into it (`explain`/`profile`).
    fn retrieve(
        &mut self,
        stmt: &Retrieve,
        ranges: &HashMap<String, String>,
        recorder: Option<&Recorder>,
    ) -> TquelResult<ResultRelation>;

    /// Materializes a derived relation (`retrieve into`).
    fn materialize(&mut self, name: &str, result: &ResultRelation) -> DbResult<()>;

    /// Defines a new relation.
    fn create_relation(
        &mut self,
        name: &str,
        schema: Schema,
        class: RelationClass,
        signature: TemporalSignature,
    ) -> DbResult<()>;

    /// Drops a relation and its store.
    fn destroy_relation(&mut self, name: &str) -> DbResult<()>;

    /// Collects storage statistics for `relation` into
    /// `sys$tablestats`; returns how many statistics the sample holds.
    fn analyze(&mut self, relation: &str) -> DbResult<usize>;

    /// Freezes `relation`'s closed versions into an immutable segment.
    fn freeze(&mut self, relation: &str) -> DbResult<crate::database::FreezeOutcome>;
}

impl SessionBackend for &mut Database {
    fn info(&self, relation: &str) -> Option<RelationInfo> {
        chronos_tquel::provider::RelationProvider::info(&**self, relation)
    }

    fn now(&self) -> Chronon {
        Database::now(self)
    }

    fn recorder(&self) -> Arc<Recorder> {
        Arc::clone(Database::recorder(self))
    }

    fn commit(&mut self, relation: &str, ops: &[HistoricalOp]) -> DbResult<Chronon> {
        Database::commit(self, relation, ops)
    }

    fn scan_latest(&self, relation: &str) -> DbResult<Vec<SourceRow>> {
        self.relation(relation)
            .ok_or_else(|| DbError::Catalog(format!("unknown relation {relation:?}")))?
            .scan(None)
    }

    fn retrieve(
        &mut self,
        stmt: &Retrieve,
        ranges: &HashMap<String, String>,
        recorder: Option<&Recorder>,
    ) -> TquelResult<ResultRelation> {
        match recorder {
            Some(r) => execute_retrieve_traced(stmt, ranges, &**self, r),
            None => execute_retrieve(stmt, ranges, &**self),
        }
    }

    fn materialize(&mut self, name: &str, result: &ResultRelation) -> DbResult<()> {
        Database::materialize(self, name, result)
    }

    fn create_relation(
        &mut self,
        name: &str,
        schema: Schema,
        class: RelationClass,
        signature: TemporalSignature,
    ) -> DbResult<()> {
        Database::create_relation(self, name, schema, class, signature)
    }

    fn destroy_relation(&mut self, name: &str) -> DbResult<()> {
        Database::destroy_relation(self, name)
    }

    fn analyze(&mut self, relation: &str) -> DbResult<usize> {
        Database::analyze_relation(self, relation)
    }

    fn freeze(&mut self, relation: &str) -> DbResult<crate::database::FreezeOutcome> {
        Database::freeze_relation(self, relation)
    }
}

/// An interactive session over a database or engine.
pub struct Session<B: SessionBackend> {
    backend: B,
    ranges: HashMap<String, String>,
    /// Trace id to attribute the next [`run`](Self::run) to
    /// (client-chosen, set via [`set_trace_id`](Self::set_trace_id));
    /// consumed by the next `run`, which mints one otherwise.
    pending_trace: Option<String>,
    /// Trace id of the most recent [`run`](Self::run) (empty before the
    /// first one); echoed in wire responses and stamped on slow-log
    /// admissions and `slow_query` journal events.
    last_trace: String,
    /// Single-entry fingerprint memo: the last fingerprinted statement
    /// with its hash and normalized text.  Shell and driver loops
    /// re-execute structurally identical statements, and a structural
    /// equality check is far cheaper than the clone + unparse + hash it
    /// replaces — the T10 overhead budget depends on this.  Statements
    /// differing only in literals miss (their fingerprints coincide,
    /// but the memo cannot know that without normalizing) and take the
    /// full path.
    fp_memo: Option<(Statement, u64, String)>,
}

impl<'a> Session<&'a mut Database> {
    pub(crate) fn new(db: &'a mut Database) -> Session<&'a mut Database> {
        Session::with_backend(db)
    }

    /// The underlying database.
    pub fn database(&mut self) -> &mut Database {
        self.backend
    }
}

impl<B: SessionBackend> Session<B> {
    /// Wraps a backend in a fresh session (no range declarations).
    pub(crate) fn with_backend(backend: B) -> Session<B> {
        Session {
            backend,
            ranges: HashMap::new(),
            pending_trace: None,
            last_trace: String::new(),
            fp_memo: None,
        }
    }

    /// Attributes the next [`run`](Self::run) to `trace_id` instead of
    /// a minted one (the TQuel service sets the client-chosen id here).
    pub fn set_trace_id(&mut self, trace_id: impl Into<String>) {
        let trace_id = trace_id.into();
        if !trace_id.is_empty() {
            self.pending_trace = Some(trace_id);
        }
    }

    /// The trace id of the most recent [`run`](Self::run) (empty before
    /// the first one).
    pub fn last_trace_id(&self) -> &str {
        &self.last_trace
    }

    /// The session's backend.
    pub(crate) fn backend(&self) -> &B {
        &self.backend
    }

    /// The session's backend, mutably.
    pub(crate) fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Parses and executes a TQuel program, returning one outcome per
    /// statement.  Execution stops at the first error.
    pub fn run(&mut self, src: &str) -> DbResult<Vec<ExecOutcome>> {
        // One trace id per request: the whole program runs under the
        // client-chosen id when one is pending, a minted one otherwise.
        self.last_trace = self
            .pending_trace
            .take()
            .unwrap_or_else(chronos_obs::next_trace_id);
        let stmts = parse_program(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_monitored(stmt)?);
        }
        Ok(out)
    }

    /// Parses and executes a program, returning the last derived
    /// relation (convenience for query-shaped programs).
    pub fn query(&mut self, src: &str) -> DbResult<ResultRelation> {
        let outcomes = self.run(src)?;
        outcomes
            .into_iter()
            .rev()
            .find_map(|o| match o {
                ExecOutcome::Retrieved(r) => Some(r),
                _ => None,
            })
            .ok_or_else(|| DbError::Catalog("program contained no retrieve".into()))
    }

    /// Executes one parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> DbResult<ExecOutcome> {
        match stmt {
            Statement::RangeDecl { var, relation } => {
                // Resolve through the provider so `sys$` system relations
                // (catalog-less) are rangeable just like stored ones.
                if self.backend.info(relation).is_none() {
                    return Err(DbError::Catalog(format!("unknown relation {relation:?}")));
                }
                self.ranges.insert(var.clone(), relation.clone());
                Ok(ExecOutcome::Declared)
            }
            Statement::Retrieve(r) => {
                let result = self.backend.retrieve(r, &self.ranges, None)?;
                if let Some(into) = &r.into {
                    let n = result.len();
                    self.backend.materialize(into, &result)?;
                    return Ok(ExecOutcome::Materialized {
                        relation: into.clone(),
                        rows: n,
                    });
                }
                Ok(ExecOutcome::Retrieved(result))
            }
            Statement::Append {
                relation,
                assignments,
                valid,
            } => self.append(relation, assignments, valid.as_ref()),
            Statement::Delete { var, where_clause } => self.delete(var, where_clause.as_ref()),
            Statement::Replace {
                var,
                assignments,
                valid,
                where_clause,
            } => self.replace(var, assignments, valid.as_ref(), where_clause.as_ref()),
            Statement::Create {
                relation,
                attrs,
                class,
                event,
            } => {
                let schema = Schema::new(
                    attrs
                        .iter()
                        .map(|(n, t)| chronos_core::schema::Attribute::new(n, *t))
                        .collect(),
                )?;
                let class = match class {
                    ClassAst::Static => RelationClass::Static,
                    ClassAst::Rollback => RelationClass::StaticRollback,
                    ClassAst::Historical => RelationClass::Historical,
                    ClassAst::Temporal => RelationClass::Temporal,
                };
                let signature = if *event {
                    TemporalSignature::Event
                } else {
                    TemporalSignature::Interval
                };
                self.backend
                    .create_relation(relation, schema, class, signature)?;
                Ok(ExecOutcome::Created)
            }
            Statement::Destroy { relation } => {
                self.backend.destroy_relation(relation)?;
                Ok(ExecOutcome::Destroyed)
            }
            Statement::Explain { profile, inner } => self.explain(*profile, inner),
            Statement::Analyze { relation } => {
                let stats = self.backend.analyze(relation)?;
                Ok(ExecOutcome::Analyzed {
                    relation: relation.clone(),
                    stats,
                })
            }
            Statement::Freeze { relation } => {
                let outcome = self.backend.freeze(relation)?;
                Ok(ExecOutcome::Frozen {
                    relation: outcome.relation,
                    versions: outcome.versions,
                    chains: outcome.chains,
                    file_bytes: outcome.file_bytes,
                })
            }
        }
    }

    /// [`execute`](Self::execute) wrapped in workload analytics and
    /// slow-query capture.
    ///
    /// With the recorder enabled, every statement's execution is folded
    /// into the query-fingerprint store under its literal-normalized
    /// hash (calls, latency, rows out, cache hits/misses — the
    /// `sys$queries` projection).  When additionally the statement's
    /// wall time meets the recorder's slow-log threshold, its rendered
    /// span tree plus counter deltas — the `profile` artifact — is
    /// admitted to the bounded slow-query ring and a `slow_query` event
    /// is journaled.  With the recorder disabled this is one atomic
    /// load and a branch on top of [`execute`](Self::execute); the T10
    /// and T14 experiments assert that overhead stays under 5%.
    pub fn execute_monitored(&mut self, stmt: &Statement) -> DbResult<ExecOutcome> {
        self.backend.note_statement(&self.last_trace);
        // `explain`/`profile` runs its own capture (wrapping it would
        // steal that capture — newest trace request wins) and records
        // its own fingerprint, so it — and any disabled recorder —
        // takes the plain path.
        let recorder = self.backend.recorder();
        if !recorder.is_enabled() || matches!(stmt, Statement::Explain { .. }) {
            return self.execute(stmt);
        }
        // Span capture is dearer than fingerprint aggregation, so it
        // stays gated behind the slow log being armed.
        let capture = recorder.slowlog().is_enabled();
        let threshold = recorder.slowlog().threshold_ns();
        let hits_before = recorder.instruments().cache_hits.get();
        let misses_before = recorder.instruments().cache_misses.get();
        let before = capture.then(|| {
            let snapshot = recorder.snapshot();
            recorder.begin_trace();
            snapshot
        });
        let started = std::time::Instant::now();
        let result = if capture {
            // The root span guarantees every captured profile has a
            // non-empty tree; access-path details (e.g. a rollback
            // reconstruction's "checkpoint hit" vs "full replay") are
            // recorded by the layers below on this same recorder.
            let span = recorder.span("session/statement");
            span.detail(statement_kind(stmt).to_string());
            self.execute(stmt)
        } else {
            self.execute(stmt)
        };
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // End the capture even on error so a failed statement does not
        // leave a stale capture eating later spans.
        let report = before.as_ref().and_then(|b| recorder.end_trace(b));
        let rows_out = match &result {
            Ok(ExecOutcome::Retrieved(r)) => r.len() as u64,
            Ok(ExecOutcome::Materialized { rows, .. }) => *rows as u64,
            _ => 0,
        };
        if !self.fp_memo.as_ref().is_some_and(|(s, ..)| s == stmt) {
            let (hash, normalized) = chronos_tquel::fingerprint(stmt);
            self.fp_memo = Some((stmt.clone(), hash, normalized));
        }
        let (_, hash, normalized) = self.fp_memo.as_ref().expect("memo just filled");
        let hash = *hash;
        recorder.fingerprints().record(
            hash,
            normalized,
            statement_kind(stmt),
            elapsed_ns,
            rows_out,
            recorder
                .instruments()
                .cache_hits
                .get()
                .saturating_sub(hits_before),
            recorder
                .instruments()
                .cache_misses
                .get()
                .saturating_sub(misses_before),
            report.as_ref().and_then(access_path_of).as_deref(),
        );
        if let Some(report) = report {
            for (_, factor) in report.misestimates() {
                recorder.fingerprints().record_misestimate(hash, factor);
            }
            if elapsed_ns >= threshold {
                let statement = unparse(stmt);
                let seq = recorder.slowlog().admit(
                    statement.clone(),
                    elapsed_ns,
                    report.render(true),
                    self.backend.now().ticks(),
                    self.backend.session_id(),
                    self.last_trace.clone(),
                );
                recorder.emit_event(
                    "slow_query",
                    &[
                        ("slow_seq", seq.into()),
                        ("duration_ns", elapsed_ns.into()),
                        ("threshold_ns", threshold.into()),
                        ("session", self.backend.session_id().into()),
                        ("trace_id", self.last_trace.as_str().into()),
                        ("statement", statement.as_str().into()),
                    ],
                );
            }
        }
        result
    }

    /// Executes `inner` with tracing active and returns the rendered
    /// span tree (`explain` shows structure, access paths, and row
    /// counts; `profile` adds wall times).
    fn explain(&mut self, profile: bool, inner: &Statement) -> DbResult<ExecOutcome> {
        let recorder = self.backend.recorder();
        let before = recorder.snapshot();
        recorder.begin_trace();
        // Parse cost is measured honestly by re-parsing the statement's
        // canonical text (the unparser round-trips by construction).
        {
            let span = recorder.span("tquel/parse");
            let text = unparse(inner);
            span.rows_out(text.len() as u64);
            let _ = parse_statement(&text);
        }
        let started = std::time::Instant::now();
        let mut rows_out = 0u64;
        let result: DbResult<()> = match inner {
            // Retrieves run through the traced evaluator so analyze /
            // scan / product spans land in this capture.
            Statement::Retrieve(r) => {
                match self.backend.retrieve(r, &self.ranges, Some(&recorder)) {
                    Ok(result) => {
                        rows_out = result.len() as u64;
                        if let Some(into) = &r.into {
                            self.backend.materialize(into, &result).map(|_| ())
                        } else {
                            Ok(())
                        }
                    }
                    Err(e) => Err(e.into()),
                }
            }
            // Everything else takes the normal path; the db/storage
            // layer spans it emits are captured all the same.
            other => self.execute(other).map(|_| ()),
        };
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // End the capture even on error so a failed statement does not
        // leave a stale capture eating later spans.
        let report = recorder.end_trace(&before);
        result?;
        // The *inner* statement's fingerprint absorbs this execution —
        // an explained retrieve is the same workload shape as a bare
        // one — along with any estimated-vs-actual misestimation
        // factors its operators exposed.
        if recorder.is_enabled() {
            let (hash, normalized) = chronos_tquel::fingerprint(inner);
            recorder.fingerprints().record(
                hash,
                &normalized,
                statement_kind(inner),
                elapsed_ns,
                rows_out,
                0,
                0,
                report.as_ref().and_then(access_path_of).as_deref(),
            );
            if let Some(report) = &report {
                for (_, factor) in report.misestimates() {
                    recorder.fingerprints().record_misestimate(hash, factor);
                }
            }
        }
        let report = report
            .map(|r| r.render(profile))
            .unwrap_or_else(|| "(tracing disabled on this database)".to_string());
        Ok(ExecOutcome::Explained { profile, report })
    }

    // ----------------------------------------------------------------
    // append
    // ----------------------------------------------------------------

    fn append(
        &mut self,
        relation: &str,
        assignments: &[Assignment],
        valid: Option<&ValidClause>,
    ) -> DbResult<ExecOutcome> {
        let info = self.info(relation)?;
        let tuple = build_tuple(&info.schema, assignments)?;
        let validity = self.modification_validity(&info, valid, None)?;
        let ops = [HistoricalOp::Insert { tuple, validity }];
        let t = self.backend.commit(relation, &ops)?;
        Ok(ExecOutcome::Appended(t))
    }

    // ----------------------------------------------------------------
    // delete
    // ----------------------------------------------------------------

    fn delete(&mut self, var: &str, where_clause: Option<&WhereExpr>) -> DbResult<ExecOutcome> {
        let relation = self.resolve_var(var)?;
        reject_system_modification(&relation)?;
        let info = self.info(&relation)?;
        let pred = self.lower_where(where_clause, var, &info)?;
        let now = self.backend.now();
        let rows = self.backend.scan_latest(&relation)?;
        let mut ops = Vec::new();
        for row in &rows {
            if !pred.eval(&row.tuple).map_err(TquelError::Core)? {
                continue;
            }
            match row.validity {
                None => {
                    // Static classes: remove the tuple.
                    ops.push(HistoricalOp::remove(RowSelector::tuple(row.tuple.clone())));
                }
                Some(Validity::Event(_)) => {
                    ops.push(HistoricalOp::remove(RowSelector::exact(
                        row.tuple.clone(),
                        row.validity.expect("matched Some"),
                    )));
                }
                Some(Validity::Interval(p)) => {
                    // Logical delete at `now`.
                    if p.end() <= TimePoint::at(now) {
                        continue; // already ended; nothing to delete
                    }
                    let sel = RowSelector::exact(row.tuple.clone(), Validity::Interval(p));
                    if p.start() >= TimePoint::at(now) {
                        // Postactive row: retract it outright.
                        ops.push(HistoricalOp::remove(sel));
                    } else {
                        ops.push(HistoricalOp::set_validity(
                            sel,
                            Period::clamped(p.start(), TimePoint::at(now)),
                        ));
                    }
                }
            }
        }
        if ops.is_empty() {
            return Ok(ExecOutcome::Deleted(0));
        }
        let n = ops.len();
        self.backend.commit(&relation, &ops)?;
        Ok(ExecOutcome::Deleted(n))
    }

    // ----------------------------------------------------------------
    // replace
    // ----------------------------------------------------------------

    fn replace(
        &mut self,
        var: &str,
        assignments: &[Assignment],
        valid: Option<&ValidClause>,
        where_clause: Option<&WhereExpr>,
    ) -> DbResult<ExecOutcome> {
        let relation = self.resolve_var(var)?;
        reject_system_modification(&relation)?;
        let info = self.info(&relation)?;
        let pred = self.lower_where(where_clause, var, &info)?;
        let rows = self.backend.scan_latest(&relation)?;

        let mut ops = Vec::new();
        let mut affected = 0usize;
        // Several matched rows may produce the *same* new fact (e.g. a
        // retroactive promotion superseding both the old rank's rows);
        // the fact is recorded once.
        let mut staged: std::collections::HashSet<(Tuple, Validity)> =
            std::collections::HashSet::new();
        for row in &rows {
            if !pred.eval(&row.tuple).map_err(TquelError::Core)? {
                continue;
            }
            let new_tuple = apply_assignments(&info.schema, &row.tuple, assignments)?;
            match row.validity {
                None => {
                    // Static classes: in-place replacement.
                    ops.push(HistoricalOp::remove(RowSelector::tuple(row.tuple.clone())));
                    ops.push(HistoricalOp::insert(
                        new_tuple,
                        Validity::Interval(Period::ALWAYS),
                    ));
                }
                Some(Validity::Event(at)) => {
                    let validity =
                        self.modification_validity(&info, valid, Some(Validity::Event(at)))?;
                    ops.push(HistoricalOp::remove(RowSelector::exact(
                        row.tuple.clone(),
                        Validity::Event(at),
                    )));
                    if staged.insert((new_tuple.clone(), validity)) {
                        ops.push(HistoricalOp::insert(new_tuple, validity));
                    }
                }
                Some(Validity::Interval(old)) => {
                    let validity =
                        self.modification_validity(&info, valid, Some(Validity::Interval(old)))?;
                    let new_period = validity.period();
                    if old.end() <= new_period.start() {
                        continue; // old fact entirely before the new period
                    }
                    let sel = RowSelector::exact(row.tuple.clone(), Validity::Interval(old));
                    if old.start() < new_period.start() {
                        // Terminate the old belief where the new one
                        // begins (Merrie's promotion, Figure 8).
                        ops.push(HistoricalOp::set_validity(
                            sel,
                            Period::clamped(old.start(), new_period.start()),
                        ));
                    } else {
                        ops.push(HistoricalOp::remove(sel));
                    }
                    if staged.insert((new_tuple.clone(), validity)) {
                        ops.push(HistoricalOp::insert(new_tuple, validity));
                    }
                }
            }
            affected += 1;
        }
        if ops.is_empty() {
            return Ok(ExecOutcome::Replaced(0));
        }
        self.backend.commit(&relation, &ops)?;
        Ok(ExecOutcome::Replaced(affected))
    }

    // ----------------------------------------------------------------
    // helpers
    // ----------------------------------------------------------------

    fn info(&self, relation: &str) -> DbResult<RelationInfo> {
        self.backend
            .info(relation)
            .ok_or_else(|| DbError::Catalog(format!("unknown relation {relation:?}")))
    }

    fn resolve_var(&self, var: &str) -> DbResult<String> {
        self.ranges.get(var).cloned().ok_or_else(|| {
            DbError::Tquel(TquelError::Semantic(format!(
                "range variable {var:?} is not declared"
            )))
        })
    }

    fn lower_where(
        &self,
        where_clause: Option<&WhereExpr>,
        var: &str,
        info: &RelationInfo,
    ) -> DbResult<chronos_algebra::expr::Predicate> {
        match where_clause {
            Some(w) => Ok(analyze_where_single(w, var, info)?),
            None => Ok(chronos_algebra::expr::Predicate::True),
        }
    }

    /// Computes the validity for a modification from its `valid` clause,
    /// the relation's class/signature, and "now" defaults.
    fn modification_validity(
        &self,
        info: &RelationInfo,
        valid: Option<&ValidClause>,
        _old: Option<Validity>,
    ) -> DbResult<Validity> {
        let timestamped = matches!(
            info.class,
            RelationClass::Historical | RelationClass::Temporal
        );
        if !timestamped {
            if valid.is_some() {
                return Err(DbError::Capability(format!(
                    "'valid' clause on a {} relation (no valid time)",
                    info.class
                )));
            }
            // Static classes carry no valid time; the op's validity is a
            // placeholder ignored by the store.
            return Ok(Validity::Interval(Period::ALWAYS));
        }
        let now = self.backend.now();
        match (info.signature, valid) {
            (TemporalSignature::Event, None) => Ok(Validity::Event(now)),
            (TemporalSignature::Event, Some(clause)) => match analyze_valid_const(clause)? {
                ValidPlan::At(e) => {
                    let p = e.eval(&[]).map_err(TquelError::Core)?;
                    match p.start() {
                        TimePoint::Finite(c) => Ok(Validity::Event(c)),
                        other => Err(DbError::Capability(format!(
                            "event validity must be finite, got {other}"
                        ))),
                    }
                }
                ValidPlan::FromTo(..) => Err(DbError::Capability(
                    "event relations take 'valid at', not 'valid from … to …'".into(),
                )),
            },
            (TemporalSignature::Interval, None) => Ok(Validity::Interval(Period::from_start(now))),
            (TemporalSignature::Interval, Some(clause)) => match analyze_valid_const(clause)? {
                ValidPlan::FromTo(a, b) => {
                    // `to` is an exclusive bound (see the paper's Figure
                    // 6: `associate … to 12/01/82` meets `full` starting
                    // that same day).
                    let from = a.eval(&[]).map_err(TquelError::Core)?.start();
                    let to = b.eval(&[]).map_err(TquelError::Core)?.start();
                    let p = Period::new(from, to).ok_or_else(|| {
                        DbError::Capability(format!("backwards validity [{from}, {to})"))
                    })?;
                    if p.is_empty() {
                        return Err(DbError::Capability(format!("empty validity {p}")));
                    }
                    Ok(Validity::Interval(p))
                }
                ValidPlan::At(_) => Err(DbError::Capability(
                    "interval relations take 'valid from … to …', not 'valid at'".into(),
                )),
            },
        }
    }
}

/// System relations are projections of engine state; TQuel
/// modifications cannot target them.
fn reject_system_modification(relation: &str) -> DbResult<()> {
    if crate::introspect::is_system(relation) {
        return Err(DbError::Capability(format!(
            "cannot modify {relation:?}: system relations are read-only"
        )));
    }
    Ok(())
}

/// A short label for the root span of a monitored statement.
fn statement_kind(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::RangeDecl { .. } => "range",
        Statement::Retrieve(r) if r.into.is_some() => "retrieve into",
        Statement::Retrieve(_) => "retrieve",
        Statement::Append { .. } => "append",
        Statement::Delete { .. } => "delete",
        Statement::Replace { .. } => "replace",
        Statement::Create { .. } => "create",
        Statement::Destroy { .. } => "destroy",
        Statement::Explain { .. } => "explain",
        Statement::Analyze { .. } => "analyze",
        Statement::Freeze { .. } => "freeze",
    }
}

/// The access-path label a traced execution exposed: the detail of the
/// deepest storage-layer span (scan strategy, checkpoint hit vs full
/// replay, cache hit).  `None` when the capture recorded no such span.
fn access_path_of(report: &chronos_obs::trace::TraceReport) -> Option<String> {
    report
        .spans
        .iter()
        .rev()
        .filter(|s| s.name.starts_with("db/") || s.name.starts_with("storage/"))
        .find(|s| !s.detail.is_empty())
        .map(|s| s.detail.clone())
}

fn literal_value(op: &Operand, expected: AttrType) -> DbResult<Value> {
    let v = match (op, expected) {
        (Operand::Str(s), AttrType::Str) => Value::str(s),
        (Operand::Str(s), AttrType::Date) => Value::Date(date(s)?),
        (Operand::Int(i), AttrType::Int) => Value::Int(*i),
        (Operand::Int(i), AttrType::Float) => Value::Float(*i as f64),
        (Operand::Float(x), AttrType::Float) => Value::Float(*x),
        (Operand::Str(s), AttrType::Bool) => match s.as_str() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            other => {
                return Err(DbError::Tquel(TquelError::Semantic(format!(
                    "expected a boolean, got {other:?}"
                ))))
            }
        },
        (Operand::Attr(_), _) => {
            return Err(DbError::Tquel(TquelError::Semantic(
                "assignments take literals, not attribute references".into(),
            )))
        }
        (op, ty) => {
            return Err(DbError::Tquel(TquelError::Semantic(format!(
                "cannot assign {op:?} to an attribute of type {ty}"
            ))))
        }
    };
    Ok(v)
}

fn build_tuple(schema: &Schema, assignments: &[Assignment]) -> DbResult<Tuple> {
    let mut values: Vec<Option<Value>> = vec![None; schema.arity()];
    for a in assignments {
        let idx = schema.index_of(&a.attr).ok_or_else(|| {
            DbError::Tquel(TquelError::Semantic(format!(
                "no attribute {:?} in schema {schema}",
                a.attr
            )))
        })?;
        if values[idx].is_some() {
            return Err(DbError::Tquel(TquelError::Semantic(format!(
                "attribute {:?} assigned twice",
                a.attr
            ))));
        }
        values[idx] = Some(literal_value(&a.value, schema.attribute(idx).attr_type())?);
    }
    let mut out = Vec::with_capacity(schema.arity());
    for (i, v) in values.into_iter().enumerate() {
        match v {
            Some(v) => out.push(v),
            None => {
                return Err(DbError::Tquel(TquelError::Semantic(format!(
                    "attribute {:?} not assigned in append",
                    schema.attribute(i).name()
                ))))
            }
        }
    }
    Ok(Tuple::new(out))
}

fn apply_assignments(schema: &Schema, old: &Tuple, assignments: &[Assignment]) -> DbResult<Tuple> {
    let mut values: Vec<Value> = old.values().to_vec();
    for a in assignments {
        let idx = schema.index_of(&a.attr).ok_or_else(|| {
            DbError::Tquel(TquelError::Semantic(format!(
                "no attribute {:?} in schema {schema}",
                a.attr
            )))
        })?;
        values[idx] = literal_value(&a.value, schema.attribute(idx).attr_type())?;
    }
    Ok(Tuple::new(values))
}
