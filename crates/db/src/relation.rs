//! The four relation classes behind one interface.
//!
//! A [`Relation`] is whichever store the catalog entry's class calls
//! for.  All mutation flows through [`Relation::validate`] +
//! [`Relation::apply`] with a *uniform* operation vocabulary (the
//! [`HistoricalOp`]s that the write-ahead log records):
//!
//! * static and rollback relations read only the tuple out of an op
//!   (`Insert` ignores the validity, which is stamped `(-∞, ∞)` by the
//!   session layer);
//! * historical relations apply the ops directly (arbitrary
//!   modification, no memory of corrections — §4.3);
//! * temporal relations commit them at the allocated transaction time
//!   (append-only — §4.4), through the storage-backed, index-accelerated
//!   table.

use chronos_core::chronon::Chronon;
use chronos_core::period::Period;
use chronos_core::relation::historical::HistoricalRelation;
use chronos_core::relation::rollback::{CheckpointedRollback, RollbackStore, TimestampedRollback};
use chronos_core::relation::static_rel::StaticRelation;
use chronos_core::relation::temporal::TemporalStore;
use chronos_core::relation::{HistoricalOp, StaticOp};
use chronos_core::schema::{RelationClass, Schema, TemporalSignature};
use chronos_obs::{noop_recorder, Recorder};
use chronos_storage::table::StoredBitemporalTable;

use crate::error::{DbError, DbResult};
use chronos_tquel::provider::{AsOfSpec, SourceRow};

/// Checkpoint interval of the rollback-class accelerator.  Interactive
/// rollback relations see far fewer commits than the K=64 sweet spot of
/// the storage table's E14b sweep; a small K makes checkpoint-seeded
/// reconstruction reachable (and observable) in short histories.
pub const ROLLBACK_CHECKPOINT_INTERVAL: usize = 8;

/// The rollback-class store pair: the tuple-timestamped encoding of
/// Figure 4 (authoritative — it alone can answer `through` windows and
/// feeds checkpoint images) plus the checkpointed accelerator answering
/// `as of t` reconstructions sublinearly.
///
/// Both commit every transaction; the paper's store-equivalence
/// property (checked in core and the integration suite) guarantees they
/// agree on every `rollback(t)`.  A relation restored from a checkpoint
/// image has no replay log to rebuild the accelerator from, so it runs
/// without one — the scan path then reports a full tuple-timestamped
/// scan, which is exactly what it does.
pub struct RollbackRelation {
    ts: TimestampedRollback,
    accel: Option<CheckpointedRollback>,
}

impl RollbackRelation {
    fn new(schema: Schema) -> RollbackRelation {
        RollbackRelation {
            ts: TimestampedRollback::new(schema.clone()),
            accel: Some(CheckpointedRollback::with_interval(
                schema,
                ROLLBACK_CHECKPOINT_INTERVAL,
            )),
        }
    }

    /// Wraps a store restored from a checkpoint image (no commit log —
    /// no accelerator).
    pub(crate) fn from_restored(ts: TimestampedRollback) -> RollbackRelation {
        RollbackRelation { ts, accel: None }
    }

    /// The authoritative tuple-timestamped store.
    pub fn store(&self) -> &TimestampedRollback {
        &self.ts
    }

    /// True iff `as of` reconstructions are checkpoint-accelerated.
    pub fn is_accelerated(&self) -> bool {
        self.accel.is_some()
    }

    fn commit(&mut self, tx_time: Chronon, ops: &[StaticOp]) -> DbResult<()> {
        self.ts.commit(tx_time, ops)?;
        if let Some(accel) = &mut self.accel {
            // The stores apply identical validated ops to identical
            // states; a divergence would be a bug, but degrade to the
            // unaccelerated path rather than desynchronize.
            if accel.commit(tx_time, ops).is_err() {
                self.accel = None;
            }
        }
        Ok(())
    }

    /// Reconstructs the state `as of t`, reporting the access path into
    /// `span`/`recorder` ("checkpoint hit" vs "full replay").
    fn rollback_traced(
        &self,
        t: Chronon,
        span: &chronos_obs::SpanGuard<'_>,
        recorder: &Recorder,
    ) -> StaticRelation {
        match &self.accel {
            Some(accel) => {
                let (state, access) = accel.rollback_traced(t);
                recorder.count_n(|m| &m.rollback_txns_replayed, access.replayed as u64);
                if access.checkpoint_hit() {
                    recorder.count(|m| &m.rollback_checkpoint_hits);
                    span.detail(format!(
                        "checkpoint hit (seed at {} commits, replayed {} of {} txns, K={})",
                        access.checkpoint_seed.unwrap_or(0),
                        access.replayed,
                        access.visible,
                        access.interval
                    ));
                } else {
                    span.detail(format!(
                        "full replay ({} of {} txns, K={})",
                        access.replayed, access.visible, access.interval
                    ));
                }
                state
            }
            None => {
                recorder.count_n(|m| &m.rollback_txns_replayed, self.ts.transactions() as u64);
                span.detail(format!(
                    "full replay (tuple-timestamped scan of {} versions)",
                    self.ts.stored_tuples()
                ));
                self.ts.rollback(t)
            }
        }
    }
}

/// A named relation of any class.
pub enum Relation {
    /// §4.1 — snapshot only.
    Static(StaticRelation),
    /// §4.2 — transaction time, append-only: the tuple-timestamped
    /// store paired with the checkpointed reconstruction accelerator.
    Rollback(RollbackRelation),
    /// §4.3 — valid time, arbitrarily correctable.
    Historical(HistoricalRelation),
    /// §4.4 — both axes, storage-backed (boxed: the stored table with
    /// its indexes is much larger than the other variants).
    Temporal(Box<StoredBitemporalTable>),
}

impl Relation {
    /// Creates an empty relation of the given class.
    pub fn new(schema: Schema, class: RelationClass, signature: TemporalSignature) -> Relation {
        match class {
            RelationClass::Static => Relation::Static(StaticRelation::new(schema)),
            RelationClass::StaticRollback => Relation::Rollback(RollbackRelation::new(schema)),
            RelationClass::Historical => {
                Relation::Historical(HistoricalRelation::new(schema, signature))
            }
            RelationClass::Temporal => Relation::Temporal(Box::new(
                StoredBitemporalTable::in_memory(schema, signature),
            )),
        }
    }

    /// Routes the store's instruments into `recorder`.  Only temporal
    /// relations have instrumented storage underneath; the in-memory
    /// reference stores are observed at the `db`/`tquel` layers.
    pub fn set_recorder(&mut self, recorder: std::sync::Arc<chronos_obs::Recorder>) {
        if let Relation::Temporal(table) = self {
            table.set_recorder(recorder);
        }
    }

    /// The relation's class.
    pub fn class(&self) -> RelationClass {
        match self {
            Relation::Static(_) => RelationClass::Static,
            Relation::Rollback(_) => RelationClass::StaticRollback,
            Relation::Historical(_) => RelationClass::Historical,
            Relation::Temporal(_) => RelationClass::Temporal,
        }
    }

    /// Rows currently stored (versions included for temporal relations).
    pub fn stored_tuples(&self) -> usize {
        match self {
            Relation::Static(r) => r.len(),
            Relation::Rollback(r) => r.store().stored_tuples(),
            Relation::Historical(r) => r.len(),
            Relation::Temporal(r) => r.stored_tuples(),
        }
    }

    /// Borrows the static store (panics on class mismatch — callers
    /// check the catalog first).
    pub fn as_static(&self) -> &StaticRelation {
        match self {
            Relation::Static(r) => r,
            _ => panic!("relation is not static"),
        }
    }

    /// Borrows the rollback store (the authoritative tuple-timestamped
    /// encoding; see [`RollbackRelation`] for the accelerator pair).
    pub fn as_rollback(&self) -> &TimestampedRollback {
        match self {
            Relation::Rollback(r) => r.store(),
            _ => panic!("relation is not a rollback relation"),
        }
    }

    /// Borrows the full rollback store pair.
    pub fn as_rollback_pair(&self) -> &RollbackRelation {
        match self {
            Relation::Rollback(r) => r,
            _ => panic!("relation is not a rollback relation"),
        }
    }

    /// Borrows the historical store.
    pub fn as_historical(&self) -> &HistoricalRelation {
        match self {
            Relation::Historical(r) => r,
            _ => panic!("relation is not historical"),
        }
    }

    /// Borrows the temporal store.
    pub fn as_temporal(&self) -> &StoredBitemporalTable {
        match self {
            Relation::Temporal(r) => r,
            _ => panic!("relation is not temporal"),
        }
    }

    fn to_static_ops(ops: &[HistoricalOp]) -> DbResult<Vec<StaticOp>> {
        ops.iter()
            .map(|op| match op {
                HistoricalOp::Insert { tuple, .. } => Ok(StaticOp::Insert(tuple.clone())),
                HistoricalOp::Remove { selector } => Ok(StaticOp::Delete(selector.tuple.clone())),
                HistoricalOp::SetValidity { .. } => Err(DbError::Capability(
                    "validity corrections require a historical or temporal relation".into(),
                )),
            })
            .collect()
    }

    /// Checks that `ops` would apply cleanly at `tx_time`, without
    /// modifying anything (so the write-ahead log never records a failing
    /// transaction).
    pub fn validate(&self, tx_time: Chronon, ops: &[HistoricalOp]) -> DbResult<()> {
        match self {
            Relation::Static(r) => {
                let mut scratch = r.clone();
                scratch.apply(&Self::to_static_ops(ops)?)?;
                Ok(())
            }
            Relation::Rollback(r) => {
                let mut scratch = r.store().clone();
                scratch.commit(tx_time, &Self::to_static_ops(ops)?)?;
                Ok(())
            }
            Relation::Historical(r) => {
                let mut scratch = r.clone();
                scratch.apply(ops)?;
                Ok(())
            }
            Relation::Temporal(r) => {
                if let Some(last) = r.last_commit() {
                    if tx_time <= last {
                        return Err(DbError::Core(chronos_core::CoreError::NonMonotonicCommit {
                            last: last.to_string(),
                            attempted: tx_time.to_string(),
                        }));
                    }
                }
                let mut current = r.current();
                current.apply(ops)?;
                Ok(())
            }
        }
    }

    /// Applies a validated transaction.
    pub fn apply(&mut self, tx_time: Chronon, ops: &[HistoricalOp]) -> DbResult<()> {
        match self {
            Relation::Static(r) => {
                r.apply(&Self::to_static_ops(ops)?)?;
                Ok(())
            }
            Relation::Rollback(r) => {
                r.commit(tx_time, &Self::to_static_ops(ops)?)?;
                Ok(())
            }
            // (RollbackRelation::commit feeds both paired stores.)
            Relation::Historical(r) => {
                r.apply(ops)?;
                Ok(())
            }
            Relation::Temporal(r) => {
                r.try_commit(tx_time, ops)?;
                Ok(())
            }
        }
    }

    /// Scans the relation for the evaluator, applying an `as of`
    /// specification when the class supports it.
    pub fn scan(&self, as_of: Option<&AsOfSpec>) -> DbResult<Vec<SourceRow>> {
        self.scan_traced(as_of, noop_recorder())
    }

    /// [`scan`](Self::scan) with access-path spans and counters routed
    /// into `recorder` (rollback-class `as of` reconstructions name
    /// "checkpoint hit" vs "full replay" there).
    pub fn scan_traced(
        &self,
        as_of: Option<&AsOfSpec>,
        recorder: &Recorder,
    ) -> DbResult<Vec<SourceRow>> {
        match self {
            Relation::Static(r) => {
                if as_of.is_some() {
                    return Err(DbError::Capability(
                        "'as of' on a static relation (no transaction time)".into(),
                    ));
                }
                Ok(r.iter()
                    .map(|t| SourceRow {
                        tuple: t.clone(),
                        validity: None,
                        tx: None,
                    })
                    .collect())
            }
            Relation::Rollback(r) => {
                // "The result of a query on a static rollback database is
                // a pure static relation": no timestamps on the rows.
                let tuples: Vec<chronos_core::tuple::Tuple> = match as_of {
                    None => r.store().current().iter().cloned().collect(),
                    Some(AsOfSpec::At(t)) => {
                        let span = recorder.span("db/rollback");
                        let state = r.rollback_traced(*t, &span, recorder);
                        span.rows_out(state.len() as u64);
                        state.iter().cloned().collect()
                    }
                    Some(AsOfSpec::Through(t1, t2)) => {
                        let window = Period::clamped(*t1, t2.succ());
                        let mut seen = std::collections::HashSet::new();
                        r.store()
                            .rows()
                            .iter()
                            .filter(|row| row.tx.overlaps(window))
                            .filter(|row| seen.insert(row.tuple.clone()))
                            .map(|row| row.tuple.clone())
                            .collect()
                    }
                };
                Ok(tuples
                    .into_iter()
                    .map(|tuple| SourceRow {
                        tuple,
                        validity: None,
                        tx: None,
                    })
                    .collect())
            }
            Relation::Historical(r) => {
                if as_of.is_some() {
                    return Err(DbError::Capability(
                        "'as of' on a historical relation (no transaction time)".into(),
                    ));
                }
                Ok(r.rows()
                    .iter()
                    .map(|row| SourceRow {
                        tuple: row.tuple.clone(),
                        validity: Some(row.validity),
                        tx: None,
                    })
                    .collect())
            }
            Relation::Temporal(r) => {
                let rows = match as_of {
                    None => r
                        .scan_rows()?
                        .into_iter()
                        .filter(|row| row.is_current())
                        .collect(),
                    Some(AsOfSpec::At(t)) => r.rows_at(*t)?,
                    Some(AsOfSpec::Through(t1, t2)) => {
                        r.rows_during(Period::clamped(*t1, t2.succ()))?
                    }
                };
                Ok(rows
                    .into_iter()
                    .map(|row| SourceRow {
                        tuple: row.tuple,
                        validity: Some(row.validity),
                        tx: Some(row.tx),
                    })
                    .collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::relation::RowSelector;
    use chronos_core::relation::Validity;
    use chronos_core::schema::faculty_schema;
    use chronos_core::tuple::tuple;

    fn always() -> Validity {
        Validity::Interval(Period::ALWAYS)
    }

    #[test]
    fn uniform_ops_drive_every_class() {
        let insert = HistoricalOp::insert(tuple(["Merrie", "full"]), always());
        let remove = HistoricalOp::remove(RowSelector::tuple(tuple(["Merrie", "full"])));
        for class in [
            RelationClass::Static,
            RelationClass::StaticRollback,
            RelationClass::Historical,
            RelationClass::Temporal,
        ] {
            let mut rel = Relation::new(faculty_schema(), class, TemporalSignature::Interval);
            assert_eq!(rel.class(), class);
            let t1 = Chronon::new(100);
            rel.validate(t1, std::slice::from_ref(&insert)).unwrap();
            rel.apply(t1, std::slice::from_ref(&insert)).unwrap();
            assert_eq!(rel.scan(None).unwrap().len(), 1, "{class}");
            let t2 = Chronon::new(200);
            rel.validate(t2, std::slice::from_ref(&remove)).unwrap();
            rel.apply(t2, std::slice::from_ref(&remove)).unwrap();
            assert!(rel.scan(None).unwrap().is_empty(), "{class}");
        }
    }

    #[test]
    fn validate_never_mutates() {
        let mut rel = Relation::new(
            faculty_schema(),
            RelationClass::Temporal,
            TemporalSignature::Interval,
        );
        let insert = HistoricalOp::insert(tuple(["Tom", "associate"]), always());
        rel.apply(Chronon::new(10), std::slice::from_ref(&insert))
            .unwrap();
        // A failing op validates to an error and changes nothing.
        let bad = HistoricalOp::remove(RowSelector::tuple(tuple(["Ghost", "x"])));
        assert!(rel
            .validate(Chronon::new(20), std::slice::from_ref(&bad))
            .is_err());
        assert_eq!(rel.stored_tuples(), 1);
        // A succeeding validate also changes nothing.
        let good = HistoricalOp::insert(tuple(["Mike", "assistant"]), always());
        rel.validate(Chronon::new(20), std::slice::from_ref(&good))
            .unwrap();
        assert_eq!(rel.stored_tuples(), 1);
    }

    #[test]
    fn set_validity_rejected_on_static_classes() {
        let op =
            HistoricalOp::set_validity(RowSelector::tuple(tuple(["Tom", "associate"])), always());
        for class in [RelationClass::Static, RelationClass::StaticRollback] {
            let rel = Relation::new(faculty_schema(), class, TemporalSignature::Interval);
            assert!(matches!(
                rel.validate(Chronon::new(1), std::slice::from_ref(&op)),
                Err(DbError::Capability(_))
            ));
        }
    }

    #[test]
    fn as_of_rejected_without_transaction_time() {
        for class in [RelationClass::Static, RelationClass::Historical] {
            let rel = Relation::new(faculty_schema(), class, TemporalSignature::Interval);
            assert!(rel.scan(Some(&AsOfSpec::At(Chronon::new(5)))).is_err());
        }
    }

    #[test]
    fn rollback_scan_as_of_and_through() {
        let mut rel = Relation::new(
            faculty_schema(),
            RelationClass::StaticRollback,
            TemporalSignature::Interval,
        );
        let merrie = HistoricalOp::insert(tuple(["Merrie", "associate"]), always());
        let tom = HistoricalOp::insert(tuple(["Tom", "associate"]), always());
        let drop_merrie = HistoricalOp::remove(RowSelector::tuple(tuple(["Merrie", "associate"])));
        rel.apply(Chronon::new(10), &[merrie]).unwrap();
        rel.apply(Chronon::new(20), &[tom]).unwrap();
        rel.apply(Chronon::new(30), &[drop_merrie]).unwrap();
        assert_eq!(
            rel.scan(Some(&AsOfSpec::At(Chronon::new(15))))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            rel.scan(Some(&AsOfSpec::At(Chronon::new(25))))
                .unwrap()
                .len(),
            2
        );
        assert_eq!(rel.scan(None).unwrap().len(), 1);
        // Through a window spanning Merrie's life sees both.
        let through = rel
            .scan(Some(&AsOfSpec::Through(Chronon::new(15), Chronon::new(35))))
            .unwrap();
        assert_eq!(through.len(), 2);
    }
}
