//! Checkpointing: bounding recovery time without giving up append-only
//! history.
//!
//! A durable ChronosDB database is logically *the write-ahead log*:
//! reopening replays every committed transaction.  That is faithful to
//! the paper's append-only transaction time, but recovery is O(history).
//! [`Database::checkpoint`](crate::Database::checkpoint) bounds it: the
//! complete physical state of every relation — including closed
//! versions, which a temporal database may never forget — is written to
//! a checksummed `checkpoint` file, and the log is truncated.  Reopening
//! loads the checkpoint and replays only the log suffix.
//!
//! The checkpoint preserves *everything* the log encoded: every
//! bitemporal version, every rollback version, all transaction counters
//! and the last commit time, so `as of` queries answer identically
//! before and after (asserted by the durability tests).

use std::collections::BTreeMap;
use std::path::Path;

use chronos_core::chronon::Chronon;
use chronos_core::relation::historical::HistoricalRelation;
use chronos_core::relation::rollback::RollbackStore as _;
use chronos_core::relation::rollback::{RollbackRow, TimestampedRollback};
use chronos_core::relation::static_rel::StaticRelation;
use chronos_core::relation::temporal::{BitemporalRow, TemporalStore as _};
use chronos_core::schema::Schema;
use chronos_storage::codec::{
    crc32, get_period, get_tuple, get_validity, put_ivarint, put_period, put_tuple, put_uvarint,
    put_validity, Reader,
};
use chronos_storage::table::StoredBitemporalTable;
use chronos_storage::{StorageError, StorageResult};

use crate::catalog::CatalogEntry;
use crate::relation::Relation;

const MAGIC: &[u8; 8] = b"CHRONCKP";

/// A loaded checkpoint: the per-relation images plus the WAL floor —
/// the last commit time the checkpoint has already absorbed.  Replay
/// skips log records at or below the floor, which makes recovery
/// idempotent when a crash lands *between* checkpoint rename and WAL
/// reset (the classic double-apply window: checkpoint and full log
/// both on disk).
pub struct Checkpoint {
    /// Last commit time captured by the images, if any commit happened.
    pub wal_floor: Option<Chronon>,
    /// `rel_id → image` for every relation at checkpoint time.
    pub images: BTreeMap<u32, RelationImage>,
}

/// The checkpointed state of one relation.
pub enum RelationImage {
    /// A static relation's tuples.
    Static(Vec<chronos_core::tuple::Tuple>),
    /// A rollback relation's rows plus counters.
    Rollback {
        /// All versions.
        rows: Vec<RollbackRow>,
        /// Latest commit time.
        last_commit: Option<Chronon>,
        /// Committed transaction count.
        transactions: u64,
    },
    /// A historical relation's rows.
    Historical(Vec<chronos_core::relation::historical::HistoricalRow>),
    /// A temporal relation's rows plus counters.
    Temporal {
        /// All versions.
        rows: Vec<BitemporalRow>,
        /// Latest commit time.
        last_commit: Option<Chronon>,
        /// Committed transaction count.
        transactions: u64,
    },
}

fn put_opt_chronon(buf: &mut Vec<u8>, c: Option<Chronon>) {
    match c {
        None => buf.push(0),
        Some(c) => {
            buf.push(1);
            put_ivarint(buf, c.ticks());
        }
    }
}

fn get_opt_chronon(r: &mut Reader<'_>) -> StorageResult<Option<Chronon>> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(Chronon::new(r.get_ivarint()?))),
        t => Err(StorageError::Corrupt(format!("bad option tag {t}"))),
    }
}

/// Captures the image of a live relation.
pub fn capture(rel: &Relation) -> StorageResult<RelationImage> {
    Ok(match rel {
        Relation::Static(r) => RelationImage::Static(r.iter().cloned().collect()),
        Relation::Rollback(r) => RelationImage::Rollback {
            rows: r.store().rows().to_vec(),
            last_commit: r.store().last_commit(),
            transactions: r.store().transactions() as u64,
        },
        Relation::Historical(r) => RelationImage::Historical(r.rows().to_vec()),
        Relation::Temporal(r) => RelationImage::Temporal {
            rows: r.scan_rows()?,
            last_commit: r.last_commit(),
            transactions: r.transactions() as u64,
        },
    })
}

fn encode_image(buf: &mut Vec<u8>, image: &RelationImage) {
    match image {
        RelationImage::Static(tuples) => {
            buf.push(0);
            put_uvarint(buf, tuples.len() as u64);
            for t in tuples {
                put_tuple(buf, t);
            }
        }
        RelationImage::Rollback {
            rows,
            last_commit,
            transactions,
        } => {
            buf.push(1);
            put_opt_chronon(buf, *last_commit);
            put_uvarint(buf, *transactions);
            put_uvarint(buf, rows.len() as u64);
            for row in rows {
                put_tuple(buf, &row.tuple);
                put_period(buf, row.tx);
            }
        }
        RelationImage::Historical(rows) => {
            buf.push(2);
            put_uvarint(buf, rows.len() as u64);
            for row in rows {
                put_tuple(buf, &row.tuple);
                put_validity(buf, row.validity);
            }
        }
        RelationImage::Temporal {
            rows,
            last_commit,
            transactions,
        } => {
            buf.push(3);
            put_opt_chronon(buf, *last_commit);
            put_uvarint(buf, *transactions);
            put_uvarint(buf, rows.len() as u64);
            for row in rows {
                put_tuple(buf, &row.tuple);
                put_validity(buf, row.validity);
                put_period(buf, row.tx);
            }
        }
    }
}

fn decode_image(r: &mut Reader<'_>) -> StorageResult<RelationImage> {
    match r.get_u8()? {
        0 => {
            let n = r.get_uvarint()? as usize;
            let mut tuples = Vec::with_capacity(n);
            for _ in 0..n {
                tuples.push(get_tuple(r)?);
            }
            Ok(RelationImage::Static(tuples))
        }
        1 => {
            let last_commit = get_opt_chronon(r)?;
            let transactions = r.get_uvarint()?;
            let n = r.get_uvarint()? as usize;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(RollbackRow {
                    tuple: get_tuple(r)?,
                    tx: get_period(r)?,
                });
            }
            Ok(RelationImage::Rollback {
                rows,
                last_commit,
                transactions,
            })
        }
        2 => {
            let n = r.get_uvarint()? as usize;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(chronos_core::relation::historical::HistoricalRow {
                    tuple: get_tuple(r)?,
                    validity: get_validity(r)?,
                });
            }
            Ok(RelationImage::Historical(rows))
        }
        3 => {
            let last_commit = get_opt_chronon(r)?;
            let transactions = r.get_uvarint()?;
            let n = r.get_uvarint()? as usize;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(BitemporalRow {
                    tuple: get_tuple(r)?,
                    validity: get_validity(r)?,
                    tx: get_period(r)?,
                });
            }
            Ok(RelationImage::Temporal {
                rows,
                last_commit,
                transactions,
            })
        }
        t => Err(StorageError::Corrupt(format!("bad relation image tag {t}"))),
    }
}

/// Restores a live relation from its image, validating against the
/// catalog entry's schema/class/signature.
pub fn restore(entry: &CatalogEntry, image: RelationImage) -> StorageResult<Relation> {
    let schema: Schema = entry.schema.clone();
    Ok(match image {
        RelationImage::Static(tuples) => {
            let mut r = StaticRelation::new(schema);
            for t in tuples {
                r.insert(t).map_err(StorageError::Core)?;
            }
            Relation::Static(r)
        }
        RelationImage::Rollback {
            rows,
            last_commit,
            transactions,
        } => Relation::Rollback(crate::relation::RollbackRelation::from_restored(
            TimestampedRollback::from_parts(schema, rows, last_commit, transactions as usize)
                .map_err(StorageError::Core)?,
        )),
        RelationImage::Historical(rows) => {
            let mut r = HistoricalRelation::new(schema, entry.signature);
            for row in rows {
                r.insert(row.tuple, row.validity)
                    .map_err(StorageError::Core)?;
            }
            Relation::Historical(r)
        }
        RelationImage::Temporal {
            rows,
            last_commit,
            transactions,
        } => Relation::Temporal(Box::new(StoredBitemporalTable::<
            chronos_storage::pager::MemPager,
        >::from_rows(
            schema,
            entry.signature,
            rows,
            last_commit,
            transactions as usize,
        )?)),
    })
}

/// Writes a checkpoint file: the WAL floor, then `(rel_id → image)`
/// for every relation, framed with magic and CRC-32.  The file is
/// written to a `.tmp` sibling, fsynced, and renamed into place, so a
/// crash at any point leaves either the old checkpoint or the new one
/// — never a torn mixture.
pub fn save(
    path: &Path,
    wal_floor: Option<Chronon>,
    images: &BTreeMap<u32, RelationImage>,
) -> StorageResult<()> {
    let mut body = Vec::new();
    put_opt_chronon(&mut body, wal_floor);
    put_uvarint(&mut body, images.len() as u64);
    for (rel_id, image) in images {
        put_uvarint(&mut body, u64::from(*rel_id));
        encode_image(&mut body, image);
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    let tmp = path.with_extension("tmp");
    chronos_storage::fault::crash_point("checkpoint.save.pre_write")?;
    {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, &out)?;
        f.sync_all()?;
    }
    chronos_storage::fault::crash_point("checkpoint.save.pre_rename")?;
    std::fs::rename(&tmp, path)?;
    chronos_storage::fault::crash_point("checkpoint.save.post_rename")?;
    Ok(())
}

/// Loads a checkpoint file; absent file means no checkpoint.
pub fn load(path: &Path) -> StorageResult<Option<Checkpoint>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 12 || &bytes[..8] != MAGIC {
        return Err(StorageError::Corrupt("bad checkpoint magic".into()));
    }
    let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let body = &bytes[12..];
    let computed = crc32(body);
    if stored != computed {
        return Err(StorageError::ChecksumMismatch {
            expected: stored,
            computed,
        });
    }
    let mut r = Reader::new(body);
    let wal_floor = get_opt_chronon(&mut r)?;
    let n = r.get_uvarint()? as usize;
    let mut images = BTreeMap::new();
    for _ in 0..n {
        let rel_id = r.get_uvarint()? as u32;
        images.insert(rel_id, decode_image(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(StorageError::Corrupt("trailing bytes in checkpoint".into()));
    }
    Ok(Some(Checkpoint { wal_floor, images }))
}
