//! The database's operational observability surface.
//!
//! [`ObsBootstrap`] bundles the `Arc`-shared engine handles the HTTP
//! exporter reads — recorder (metrics, slow log, journal), readiness
//! flags, and the query cache — *independently of the `Database` value
//! itself*.  That indirection is what lets an exporter start **before**
//! recovery: create a bootstrap, serve it (`/healthz` answers 503),
//! then pass it to [`Database::open_with_obs`], which marks the
//! readiness flags as the catalog, checkpoint image, and WAL replay
//! complete — flipping the endpoint to 200 with no server restart.
//!
//! For the common case (observe an already-open database),
//! [`Database::serve_observability`] does the same wiring from the
//! database's own handles.
//!
//! [`Database::open_with_obs`]: crate::Database::open_with_obs
//! [`Database::serve_observability`]: crate::Database::serve_observability

use std::sync::Arc;

use parking_lot::Mutex;

use chronos_obs::export::{serve, Health, ObsServer, ObsSource};
use chronos_obs::Recorder;

use crate::cache::{QueryCache, DEFAULT_CACHE_CAPACITY};
use crate::database::EngineStats;
use crate::introspect::{PhysicalStore, SessionRegistry, TelemetryStore};

/// Pre-created engine handles shared between a [`Database`] and the
/// exporter serving it.
///
/// [`Database`]: crate::Database
pub struct ObsBootstrap {
    pub(crate) recorder: Arc<Recorder>,
    pub(crate) health: Arc<Health>,
    pub(crate) cache: Arc<Mutex<QueryCache>>,
    pub(crate) telemetry: Arc<TelemetryStore>,
    pub(crate) registry: Arc<SessionRegistry>,
    pub(crate) physical: Arc<PhysicalStore>,
}

impl Default for ObsBootstrap {
    fn default() -> Self {
        ObsBootstrap::new()
    }
}

impl ObsBootstrap {
    /// Fresh handles with every readiness flag down.
    pub fn new() -> ObsBootstrap {
        ObsBootstrap {
            recorder: Arc::new(Recorder::new()),
            health: Arc::new(Health::starting()),
            cache: Arc::new(Mutex::new(QueryCache::new(DEFAULT_CACHE_CAPACITY))),
            telemetry: Arc::new(TelemetryStore::default()),
            registry: Arc::new(SessionRegistry::default()),
            physical: Arc::new(PhysicalStore::default()),
        }
    }

    /// Handles whose recorder is *disabled*: every instrument
    /// short-circuits to a branch.  The overhead experiments open one
    /// database with these and one with the default to price the
    /// observability layer itself.
    pub fn disabled() -> ObsBootstrap {
        ObsBootstrap {
            recorder: Arc::new(Recorder::disabled()),
            ..ObsBootstrap::new()
        }
    }

    /// The readiness flags (for tests and callers that mark stages).
    pub fn health(&self) -> &Arc<Health> {
        &self.health
    }

    /// The shared recorder.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The shared telemetry store (`sys$stats` samples, `/history`).
    pub fn telemetry(&self) -> &Arc<TelemetryStore> {
        &self.telemetry
    }

    /// The shared session/connection registry (`/sessions`).
    pub fn session_registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// The shared physical-storage snapshot (`/wal` + `/storage`).
    pub fn physical(&self) -> &Arc<PhysicalStore> {
        &self.physical
    }

    /// Starts the HTTP exporter over these handles.  Endpoints answer
    /// immediately; `/healthz` stays 503 until a database opened with
    /// this bootstrap finishes recovery.
    pub fn serve(&self, addr: &str) -> std::io::Result<ObsServer> {
        serve(
            addr,
            Arc::new(DbObsSource {
                recorder: Arc::clone(&self.recorder),
                health: Arc::clone(&self.health),
                cache: Arc::clone(&self.cache),
                telemetry: Arc::clone(&self.telemetry),
                registry: Arc::clone(&self.registry),
                physical: Arc::clone(&self.physical),
            }),
        )
    }
}

/// The exporter's view of a database: everything it serves is computed
/// from `Arc`-shared handles, so it never borrows the `Database`.
pub(crate) struct DbObsSource {
    pub(crate) recorder: Arc<Recorder>,
    pub(crate) health: Arc<Health>,
    pub(crate) cache: Arc<Mutex<QueryCache>>,
    pub(crate) telemetry: Arc<TelemetryStore>,
    pub(crate) registry: Arc<SessionRegistry>,
    pub(crate) physical: Arc<PhysicalStore>,
}

impl ObsSource for DbObsSource {
    fn prometheus(&self) -> String {
        engine_stats_from(&self.recorder, &self.cache, &self.telemetry).to_prometheus()
    }

    fn stats_json(&self) -> String {
        engine_stats_from(&self.recorder, &self.cache, &self.telemetry).to_json()
    }

    fn slow_json(&self) -> String {
        self.recorder.slowlog().to_json()
    }

    fn queries_json(&self) -> String {
        self.recorder.fingerprints().to_json()
    }

    fn events_json(&self, n: usize) -> String {
        match self.recorder.journal() {
            Some(journal) => {
                // Each tail line is already one well-formed JSON object.
                let lines = journal.tail_lines(n);
                let mut out = String::from("{\"events\": [");
                for (i, line) in lines.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(line.trim());
                }
                out.push_str("]}");
                out
            }
            None => "{\"events\": []}".to_string(),
        }
    }

    fn history_json(&self, metric: &str, n: usize) -> String {
        let mut out = format!(
            "{{\"metric\": \"{}\", \"samples\": [",
            chronos_obs::events::escape_json(metric)
        );
        for (i, (at, value)) in self.telemetry.history(metric, n).iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{{\"at\": {}, \"value\": {value}}}", at.ticks()));
        }
        out.push_str("]}");
        out
    }

    fn sessions_json(&self) -> String {
        self.registry.to_json()
    }

    fn wal_json(&self) -> String {
        self.physical.wal_json()
    }

    fn storage_json(&self) -> String {
        self.physical.storage_json()
    }

    fn health(&self) -> &Health {
        &self.health
    }
}

/// Builds the unified stats snapshot from the shared handles (also the
/// body of [`Database::engine_stats`](crate::Database::engine_stats)).
pub(crate) fn engine_stats_from(
    recorder: &Recorder,
    cache: &Mutex<QueryCache>,
    telemetry: &TelemetryStore,
) -> EngineStats {
    let cache = cache.lock();
    EngineStats {
        metrics: recorder.snapshot(),
        cache: cache.stats(),
        cache_entries: cache.len(),
        journal: recorder.journal().map(|j| j.stats()),
        telemetry: telemetry.stats(),
    }
}
