//! The bitemporal query cache.
//!
//! Retrieves repeatedly scan the same relations at the same bitemporal
//! coordinates — a figure-generation loop probes one relation `as of`
//! many times, and a multi-variable retrieve scans each operand once per
//! statement.  [`QueryCache`] memoizes those scans: the key is the
//! relation name plus the resolved [`AsOfSpec`] (the transaction-time
//! coordinate; valid-time selection happens downstream in the
//! evaluator), and the value is the scanned row set behind an [`Arc`] so
//! hits clone a pointer, not the rows.
//!
//! Invalidation is epoch-based, which suits the paper's append-only
//! transaction-time semantics: every commit to a relation bumps that
//! relation's epoch, and a cached entry is served only while its
//! recorded epoch is current.  Entries for historical coordinates are
//! *logically* immortal — a rollback relation's state `as of t` never
//! changes once `t` is strictly before every future commit time — and
//! the cache exploits that: an entry inserted with `frozen = true`
//! (the inserter proved `t` below the transaction manager's next
//! commit time) survives epoch bumps and is only dropped by a
//! *generation* bump, which structural changes (create, destroy,
//! materialize) issue.  Frozen entries are what make many concurrent
//! snapshot-pinned readers cheap: a pinned session's scans keep
//! hitting while the writer commits underneath it.
//!
//! Eviction is least-recently-used over a small fixed capacity: each
//! access stamps the entry with a monotone use counter and inserts
//! evict the smallest stamp when full.  Capacity is small (relations ×
//! distinct coordinates per workload), so the linear eviction scan is
//! noise next to the scans it saves.

use std::collections::HashMap;
use std::sync::Arc;

use chronos_tquel::provider::{AsOfSpec, SourceRow};

/// Default number of cached scans.
pub const DEFAULT_CACHE_CAPACITY: usize = 32;

/// Observable cache behaviour (tests assert on these; the experiments
/// binary reports them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Scans answered from the cache.
    pub hits: u64,
    /// Scans that had to run (absent or stale entry).
    pub misses: u64,
    /// Entries dropped because their relation's epoch moved on.
    pub invalidations: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Epoch bumps recorded (one per commit/create/destroy/materialize
    /// touching any relation).
    pub epoch_bumps: u64,
    /// Hits served by frozen entries across an epoch bump — scans a
    /// non-frozen entry would have re-run.
    pub frozen_hits: u64,
}

#[derive(Clone)]
struct Entry {
    rows: Arc<Vec<SourceRow>>,
    /// Relation epoch the rows were scanned at.
    epoch: u64,
    /// Relation generation (structural version) at scan time.
    generation: u64,
    /// Immortal under commits: the coordinate is a fully-past
    /// transaction time that no future commit can rewrite.
    frozen: bool,
    /// LRU stamp: the use counter at last access.
    last_used: u64,
}

/// An LRU cache of relation scans keyed by bitemporal coordinate.
pub struct QueryCache {
    capacity: usize,
    entries: HashMap<(String, Option<AsOfSpec>), Entry>,
    /// Per-relation modification epochs (bumped on every commit, create,
    /// destroy, and materialize touching the relation).
    epochs: HashMap<String, u64>,
    /// Per-relation structural generations (bumped on create, destroy,
    /// and materialize only); the drop signal for frozen entries.
    generations: HashMap<String, u64>,
    use_counter: u64,
    stats: CacheStats,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` scans (capacity 0
    /// disables caching: every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            entries: HashMap::new(),
            epochs: HashMap::new(),
            generations: HashMap::new(),
            use_counter: 0,
            stats: CacheStats::default(),
        }
    }

    fn epoch_of(&self, relation: &str) -> u64 {
        self.epochs.get(relation).copied().unwrap_or(0)
    }

    fn generation_of(&self, relation: &str) -> u64 {
        self.generations.get(relation).copied().unwrap_or(0)
    }

    /// Looks up a cached scan, refreshing its LRU stamp.  A stale entry
    /// (relation committed to since it was cached, unless frozen; or
    /// structurally replaced since it was cached) is dropped and
    /// reported as a miss.
    pub fn get(&mut self, relation: &str, as_of: Option<&AsOfSpec>) -> Option<Arc<Vec<SourceRow>>> {
        let key = (relation.to_string(), as_of.copied());
        let epoch = self.epoch_of(relation);
        let generation = self.generation_of(relation);
        match self.entries.get_mut(&key) {
            Some(entry)
                if entry.generation == generation && (entry.frozen || entry.epoch == epoch) =>
            {
                self.use_counter += 1;
                entry.last_used = self.use_counter;
                self.stats.hits += 1;
                if entry.frozen && entry.epoch != epoch {
                    self.stats.frozen_hits += 1;
                }
                Some(Arc::clone(&entry.rows))
            }
            Some(_) => {
                self.entries.remove(&key);
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Caches a scan result at the relation's current epoch and
    /// generation, evicting the least-recently-used entry when full.
    /// `frozen` asserts the coordinate is immune to future commits (the
    /// caller proved its transaction time is below every commit time
    /// the engine can still allocate); such entries outlive epoch bumps.
    pub fn insert(
        &mut self,
        relation: &str,
        as_of: Option<&AsOfSpec>,
        rows: Arc<Vec<SourceRow>>,
        frozen: bool,
    ) {
        if self.capacity == 0 {
            return;
        }
        let key = (relation.to_string(), as_of.copied());
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.use_counter += 1;
        let epoch = self.epoch_of(relation);
        let generation = self.generation_of(relation);
        self.entries.insert(
            key,
            Entry {
                rows,
                epoch,
                generation,
                frozen,
                last_used: self.use_counter,
            },
        );
    }

    /// Records a commit to `relation`: bumps its epoch so non-frozen
    /// cached entries become stale (dropped lazily on next lookup).
    pub fn bump_epoch(&mut self, relation: &str) {
        *self.epochs.entry(relation.to_string()).or_insert(0) += 1;
        self.stats.epoch_bumps += 1;
    }

    /// Records a structural change of `relation` (create, destroy,
    /// materialize): bumps its generation — which stales *every* entry,
    /// frozen ones included — along with its epoch.
    pub fn bump_generation(&mut self, relation: &str) {
        *self.generations.entry(relation.to_string()).or_insert(0) += 1;
        self.bump_epoch(relation);
    }

    /// Drops every entry (epochs are kept — they order modifications,
    /// not cache contents).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::chronon::Chronon;
    use chronos_core::tuple::tuple;

    fn rows(tag: &str) -> Arc<Vec<SourceRow>> {
        Arc::new(vec![SourceRow {
            tuple: tuple([tag]),
            validity: None,
            tx: None,
        }])
    }

    #[test]
    fn hit_after_insert_miss_after_bump() {
        let mut c = QueryCache::new(4);
        assert!(c.get("faculty", None).is_none());
        c.insert("faculty", None, rows("a"), false);
        let hit = c.get("faculty", None).expect("cached");
        assert_eq!(hit[0].tuple, tuple(["a"]));
        c.bump_epoch("faculty");
        assert!(c.get("faculty", None).is_none(), "stale after commit");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
    }

    #[test]
    fn distinct_coordinates_are_distinct_entries() {
        let mut c = QueryCache::new(4);
        let at = AsOfSpec::At(Chronon::new(10));
        c.insert("r", None, rows("current"), false);
        c.insert("r", Some(&at), rows("past"), false);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("r", Some(&at)).unwrap()[0].tuple, tuple(["past"]));
        assert_eq!(c.get("r", None).unwrap()[0].tuple, tuple(["current"]));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = QueryCache::new(2);
        c.insert("a", None, rows("a"), false);
        c.insert("b", None, rows("b"), false);
        assert!(c.get("a", None).is_some()); // warm "a"
        c.insert("c", None, rows("c"), false); // evicts "b"
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get("a", None).is_some());
        assert!(c.get("b", None).is_none());
        assert!(c.get("c", None).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = QueryCache::new(0);
        c.insert("r", None, rows("x"), false);
        assert!(c.is_empty());
        assert!(c.get("r", None).is_none());
    }

    #[test]
    fn frozen_entries_survive_commits_but_not_structural_changes() {
        let mut c = QueryCache::new(4);
        let past = AsOfSpec::At(Chronon::new(10));
        c.insert("r", Some(&past), rows("past"), true);
        c.insert("r", None, rows("current"), false);
        c.bump_epoch("r"); // a commit lands
        assert!(
            c.get("r", Some(&past)).is_some(),
            "fully-past coordinate survives the commit"
        );
        assert!(c.get("r", None).is_none(), "current state is stale");
        assert_eq!(c.stats().frozen_hits, 1);
        // Many commits later the frozen entry still serves.
        for _ in 0..5 {
            c.bump_epoch("r");
        }
        assert!(c.get("r", Some(&past)).is_some());
        assert_eq!(c.stats().frozen_hits, 2);
        // Destroy + recreate must drop it: same name, new history.
        c.bump_generation("r");
        assert!(c.get("r", Some(&past)).is_none(), "generation bump stales");
        assert_eq!(c.stats().invalidations, 2);
    }
}
