//! The catalog: durable relation definitions.
//!
//! The catalog maps relation names to `(rel_id, schema, class,
//! signature)`.  For durable databases it is persisted to a `catalog`
//! file in the database directory — a checksummed binary image rewritten
//! on every DDL statement — while committed data lives in the shared
//! write-ahead log, keyed by `rel_id`.

use std::collections::BTreeMap;
use std::path::Path;

use chronos_core::schema::{Attribute, RelationClass, Schema, TemporalSignature};
use chronos_core::value::AttrType;
use chronos_storage::codec::{crc32, put_bytes, put_uvarint, Reader};
use chronos_storage::{StorageError, StorageResult};

/// One catalog entry.
#[derive(Clone, Debug, PartialEq)]
pub struct CatalogEntry {
    /// Stable id used in the write-ahead log.
    pub rel_id: u32,
    /// Explicit attributes.
    pub schema: Schema,
    /// The relation's class.
    pub class: RelationClass,
    /// Interval or event valid time.
    pub signature: TemporalSignature,
}

/// The set of relation definitions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Catalog {
    entries: BTreeMap<String, CatalogEntry>,
    next_rel_id: u32,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &CatalogEntry)> {
        self.entries.iter()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no relations are defined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Defines a relation, allocating a fresh `rel_id`.
    pub fn define(
        &mut self,
        name: &str,
        schema: Schema,
        class: RelationClass,
        signature: TemporalSignature,
    ) -> Result<u32, String> {
        if self.entries.contains_key(name) {
            return Err(format!("relation {name:?} already exists"));
        }
        let rel_id = self.next_rel_id;
        self.next_rel_id += 1;
        self.entries.insert(
            name.to_string(),
            CatalogEntry {
                rel_id,
                schema,
                class,
                signature,
            },
        );
        Ok(rel_id)
    }

    /// Removes a relation definition.  `rel_id`s are never reused, so
    /// log records of dropped relations stay unambiguous.
    pub fn remove(&mut self, name: &str) -> Option<CatalogEntry> {
        self.entries.remove(name)
    }

    // ----------------------------------------------------------------
    // Persistence
    // ----------------------------------------------------------------

    const MAGIC: &'static [u8; 8] = b"CHRONCAT";

    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_uvarint(&mut body, u64::from(self.next_rel_id));
        put_uvarint(&mut body, self.entries.len() as u64);
        for (name, e) in &self.entries {
            put_bytes(&mut body, name.as_bytes());
            put_uvarint(&mut body, u64::from(e.rel_id));
            body.push(match e.class {
                RelationClass::Static => 0,
                RelationClass::StaticRollback => 1,
                RelationClass::Historical => 2,
                RelationClass::Temporal => 3,
            });
            body.push(match e.signature {
                TemporalSignature::Interval => 0,
                TemporalSignature::Event => 1,
            });
            put_uvarint(&mut body, e.schema.arity() as u64);
            for a in e.schema.attributes() {
                put_bytes(&mut body, a.name().as_bytes());
                body.push(match a.attr_type() {
                    AttrType::Str => 0,
                    AttrType::Int => 1,
                    AttrType::Float => 2,
                    AttrType::Bool => 3,
                    AttrType::Date => 4,
                });
            }
        }
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(Self::MAGIC);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode(bytes: &[u8]) -> StorageResult<Catalog> {
        if bytes.len() < 12 || &bytes[..8] != Self::MAGIC {
            return Err(StorageError::Corrupt("bad catalog magic".into()));
        }
        let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let body = &bytes[12..];
        let computed = crc32(body);
        if stored != computed {
            return Err(StorageError::ChecksumMismatch {
                expected: stored,
                computed,
            });
        }
        let mut r = Reader::new(body);
        let next_rel_id = r.get_uvarint()? as u32;
        let n = r.get_uvarint()? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let name = r.get_str()?.to_string();
            let rel_id = r.get_uvarint()? as u32;
            let class = match r.get_u8()? {
                0 => RelationClass::Static,
                1 => RelationClass::StaticRollback,
                2 => RelationClass::Historical,
                3 => RelationClass::Temporal,
                t => return Err(StorageError::Corrupt(format!("bad class tag {t}"))),
            };
            let signature = match r.get_u8()? {
                0 => TemporalSignature::Interval,
                1 => TemporalSignature::Event,
                t => return Err(StorageError::Corrupt(format!("bad signature tag {t}"))),
            };
            let arity = r.get_uvarint()? as usize;
            let mut attrs = Vec::with_capacity(arity);
            for _ in 0..arity {
                let aname = r.get_str()?.to_string();
                let ty = match r.get_u8()? {
                    0 => AttrType::Str,
                    1 => AttrType::Int,
                    2 => AttrType::Float,
                    3 => AttrType::Bool,
                    4 => AttrType::Date,
                    t => return Err(StorageError::Corrupt(format!("bad type tag {t}"))),
                };
                attrs.push(Attribute::new(aname, ty));
            }
            let schema = Schema::new(attrs)
                .map_err(|e| StorageError::Corrupt(format!("bad schema: {e}")))?;
            entries.insert(
                name,
                CatalogEntry {
                    rel_id,
                    schema,
                    class,
                    signature,
                },
            );
        }
        Ok(Catalog {
            entries,
            next_rel_id,
        })
    }

    /// Writes the catalog image to `path` (atomically via a temp file).
    pub fn save(&self, path: &Path) -> StorageResult<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a catalog image, or an empty catalog if the file is absent.
    pub fn load(path: &Path) -> StorageResult<Catalog> {
        match std::fs::read(path) {
            Ok(bytes) => Self::decode(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Catalog::new()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_core::schema::faculty_schema;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.define(
            "faculty",
            faculty_schema(),
            RelationClass::Temporal,
            TemporalSignature::Interval,
        )
        .unwrap();
        c.define(
            "promotion",
            Schema::new(vec![
                Attribute::new("name", AttrType::Str),
                Attribute::new("effective", AttrType::Date),
            ])
            .unwrap(),
            RelationClass::Temporal,
            TemporalSignature::Event,
        )
        .unwrap();
        c
    }

    #[test]
    fn define_and_lookup() {
        let c = sample();
        assert_eq!(c.len(), 2);
        let f = c.get("faculty").unwrap();
        assert_eq!(f.rel_id, 0);
        assert_eq!(f.class, RelationClass::Temporal);
        assert!(c.get("absent").is_none());
    }

    #[test]
    fn duplicate_names_rejected_and_ids_never_reused() {
        let mut c = sample();
        assert!(c
            .define(
                "faculty",
                faculty_schema(),
                RelationClass::Static,
                TemporalSignature::Interval
            )
            .is_err());
        c.remove("faculty").unwrap();
        let id = c
            .define(
                "faculty",
                faculty_schema(),
                RelationClass::Static,
                TemporalSignature::Interval,
            )
            .unwrap();
        assert_eq!(id, 2, "rel ids are never reused");
    }

    #[test]
    fn round_trips_through_disk() {
        let c = sample();
        let mut path = std::env::temp_dir();
        path.push(format!("chronos-catalog-{}", std::process::id()));
        c.save(&path).unwrap();
        let loaded = Catalog::load(&path).unwrap();
        assert_eq!(loaded, c);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty_catalog() {
        let mut path = std::env::temp_dir();
        path.push("chronos-catalog-definitely-missing");
        assert!(Catalog::load(&path).unwrap().is_empty());
    }

    #[test]
    fn corruption_detected() {
        let c = sample();
        let mut bytes = c.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(Catalog::decode(&bytes).is_err());
        assert!(Catalog::decode(b"NOTMAGIC0000").is_err());
    }
}
