//! `chronos` — an interactive TQuel shell over ChronosDB.
//!
//! ```text
//! cargo run -p chronos-db --bin chronos [-- [flags] <database-dir>]
//! ```
//!
//! With a directory argument the database is durable (catalog + WAL +
//! checkpoints + `events.jsonl` journal); without one it is in-memory.
//! Statements may span lines and are executed when a blank line (or end
//! of input) is reached, so the paper's multi-line queries paste
//! directly.
//!
//! Flags:
//!
//! ```text
//! --batch                  no prompt (for piped scripts); any statement
//!                          error makes the process exit non-zero
//! --serve ADDR             also serve TQuel over TCP on ADDR (e.g.
//!                          127.0.0.1:7878): concurrent clients each get
//!                          a snapshot-pinned session; writes go through
//!                          the group-commit queue.  The shell stays
//!                          usable; the service stops when it exits.
//! --connect ADDR           be a client of a running `--serve` instance
//!                          instead of opening a database: statements
//!                          are shipped to the server, results printed
//! --trace-id ID            (with --connect) stamp every shipped batch
//!                          with this trace id instead of letting the
//!                          server mint one — the id the server echoes
//!                          back is printed to stderr, and the same id
//!                          appears in the server's slow-query log,
//!                          `sys$sessions`, and events journal
//! --obs-addr ADDR          serve /metrics /stats /slow /wal /storage
//!                          /healthz /readyz on ADDR (e.g.
//!                          127.0.0.1:0); the bound
//!                          address is printed to stderr.  For durable
//!                          databases the exporter starts *before*
//!                          recovery, so /healthz reports 503 until the
//!                          WAL is replayed.
//! --slow-threshold-ns N    capture statements slower than N ns in the
//!                          slow-query log (0 captures everything)
//! --sample-interval-ms N   start the background stats sampler: every
//!                          N ms a snapshot of the engine counters is
//!                          appended to the `sys$stats` system relation
//!                          (queryable in TQuel, served at /history)
//! --stats-json             one-shot mode: open the database (replaying
//!                          its WAL if durable), print one engine-stats
//!                          snapshot as JSON to stdout, exit — the same
//!                          document /stats serves, without a server
//! --get ADDR PATH          one-shot mode: HTTP GET PATH from a running
//!                          exporter at ADDR, print status + body, exit
//! --check-jsonl FILE       one-shot mode: validate FILE as JSONL
//!                          (e.g. a database's events.jsonl), exit
//! --inspect DIR            one-shot doctor mode: walk a database
//!                          directory read-only — WITHOUT running
//!                          recovery — validating the WAL frame by
//!                          frame, the checkpoint, the catalog, and the
//!                          events journal; print a report and exit 0
//!                          (clean), 2 (torn/corrupt, offsets named),
//!                          or 1 (directory unreadable)
//! --inspect-json DIR       the same walk, but dump one JSON object
//!                          per WAL frame (plus a tail verdict) as
//!                          JSONL on stdout
//! ```
//!
//! Shell commands start with `\`:
//!
//! ```text
//! \d                 list relations and their classes
//! \checkpoint        checkpoint a durable database
//! \now               show the database clock
//! \advance mm/dd/yy  move the clock forward (great for replaying the paper)
//! \stats             engine counters (Prometheus text exposition)
//! \sessions          live sessions and connections (who is pinned where)
//! \slow              the slow-query log (captured profiles)
//! \sample            take one telemetry sample now (into sys$stats)
//! \top               top operators by time over the recent span ring
//! \obs PATH          GET PATH from this process's own exporter
//! \q                 quit
//! ```
//!
//! Any statement may be prefixed with `explain` (span tree, access
//! paths, row counts) or `profile` (the same plus wall times).

use std::io::{BufRead, Write};
use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::clock::{Clock, ManualClock, SystemClock};
use chronos_db::{Database, Engine, ExecOutcome, ObsBootstrap, QueryClient, QueryServer};
use chronos_obs::export::ObsServer;
use chronos_tquel::printer::render;

/// Parsed command line; `None` from [`Args::parse`] means a one-shot
/// mode already ran (or usage was printed) and the process should exit.
struct Args {
    dir: Option<std::path::PathBuf>,
    batch: bool,
    serve_addr: Option<String>,
    connect_addr: Option<String>,
    trace_id: Option<String>,
    obs_addr: Option<String>,
    slow_threshold_ns: Option<u64>,
    sample_interval_ms: Option<u64>,
    stats_json: bool,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Option<Args>, String> {
        let mut args = Args {
            dir: None,
            batch: false,
            serve_addr: None,
            connect_addr: None,
            trace_id: None,
            obs_addr: None,
            slow_threshold_ns: None,
            sample_interval_ms: None,
            stats_json: false,
        };
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--batch" => args.batch = true,
                "--serve" => {
                    let addr = it.next().ok_or("--serve takes an address")?;
                    args.serve_addr = Some(addr.clone());
                }
                "--connect" => {
                    let addr = it.next().ok_or("--connect takes an address")?;
                    args.connect_addr = Some(addr.clone());
                }
                "--trace-id" => {
                    let id = it.next().ok_or("--trace-id takes an id")?;
                    if id.is_empty() || id.len() > 255 {
                        return Err("--trace-id must be 1..=255 bytes".into());
                    }
                    args.trace_id = Some(id.clone());
                }
                "--obs-addr" => {
                    let addr = it.next().ok_or("--obs-addr takes an address")?;
                    args.obs_addr = Some(addr.clone());
                }
                "--slow-threshold-ns" => {
                    let n = it.next().ok_or("--slow-threshold-ns takes a number")?;
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("bad --slow-threshold-ns value {n:?}"))?;
                    args.slow_threshold_ns = Some(n);
                }
                "--sample-interval-ms" => {
                    let n = it.next().ok_or("--sample-interval-ms takes a number")?;
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("bad --sample-interval-ms value {n:?}"))?;
                    if n == 0 {
                        return Err("--sample-interval-ms must be positive".into());
                    }
                    args.sample_interval_ms = Some(n);
                }
                "--stats-json" => args.stats_json = true,
                "--get" => {
                    let addr = it.next().ok_or("--get takes ADDR PATH")?;
                    let path = it.next().ok_or("--get takes ADDR PATH")?;
                    match chronos_obs::http_get(addr, path) {
                        Ok((status, body)) => {
                            println!("{status}");
                            print!("{body}");
                            std::process::exit(if status == 200 { 0 } else { 2 });
                        }
                        Err(e) => {
                            eprintln!("GET {addr}{path} failed: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                "--check-jsonl" => {
                    let file = it.next().ok_or("--check-jsonl takes a file")?;
                    let text = std::fs::read_to_string(file)
                        .map_err(|e| format!("cannot read {file}: {e}"))?;
                    match chronos_obs::validate_jsonl(&text) {
                        Ok(n) => {
                            println!("{file}: {n} well-formed JSON line(s)");
                            std::process::exit(0);
                        }
                        Err(e) => {
                            eprintln!("{file}: {e}");
                            std::process::exit(2);
                        }
                    }
                }
                "--inspect" | "--inspect-json" => {
                    let json = arg == "--inspect-json";
                    let dir = it.next().ok_or(format!("{arg} takes a database dir"))?;
                    let dir = std::path::Path::new(dir);
                    match chronos_db::doctor::inspect(dir) {
                        Ok(report) => {
                            if json {
                                print!("{}", report.frames_jsonl());
                            } else {
                                print!("{}", report.human_report());
                            }
                            std::process::exit(report.exit_code());
                        }
                        Err(e) => {
                            eprintln!("cannot inspect {}: {e}", dir.display());
                            std::process::exit(1);
                        }
                    }
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag {other}"));
                }
                dir => {
                    if args.dir.is_some() {
                        return Err(format!("more than one database dir ({dir:?})"));
                    }
                    args.dir = Some(std::path::PathBuf::from(dir));
                }
            }
        }
        if args.connect_addr.is_some() && (args.serve_addr.is_some() || args.dir.is_some()) {
            return Err("--connect opens no database (drop --serve / the dir argument)".into());
        }
        if args.trace_id.is_some() && args.connect_addr.is_none() {
            return Err("--trace-id only applies to --connect mode".into());
        }
        if args.stats_json && args.connect_addr.is_some() {
            return Err(
                "--stats-json opens a database; use --get ADDR /stats against a server".into(),
            );
        }
        Ok(Some(args))
    }
}

fn main() {
    // Deterministic fault injection (CHRONOS_FAULT_SITE/HIT/MODE/KEEP):
    // lets scripts crash-test the CLI's own open/commit/checkpoint paths.
    chronos_obs::fault::arm_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => return,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: chronos [--batch] [--serve ADDR] [--obs-addr ADDR] [--slow-threshold-ns N] [--sample-interval-ms N] [--stats-json] [dir]"
            );
            eprintln!("       chronos [--batch] --connect ADDR [--trace-id ID]");
            eprintln!("       chronos --get ADDR PATH");
            eprintln!("       chronos --check-jsonl FILE");
            eprintln!("       chronos --inspect DIR | --inspect-json DIR");
            std::process::exit(1);
        }
    };

    if let Some(addr) = &args.connect_addr {
        let client = match QueryClient::connect(addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("connected to chronos service at {addr}");
        let had_error = repl(
            Shell::Connect {
                client,
                trace_id: args.trace_id.clone(),
            },
            None,
            &None,
            !args.batch,
        );
        if args.batch && had_error {
            std::process::exit(1);
        }
        return;
    }

    // The clock starts at the epoch and only moves forward (transaction
    // time is append-only): `\advance` to any date — e.g. the paper's
    // 08/25/77 — before your first commit, or to today with
    // `\advance <today>`.
    let manual = Arc::new(ManualClock::new(chronos_core::chronon::Chronon::ZERO));
    let clock: Arc<dyn Clock> = manual.clone();
    let _today = SystemClock::default().now(); // printed in the banner below
    let mut obs_server: Option<ObsServer> = None;
    let mut db = match &args.dir {
        Some(dir) => {
            // The exporter comes up before recovery so /healthz honestly
            // reports 503 while the WAL replays.
            let obs = ObsBootstrap::new();
            if let Some(addr) = &args.obs_addr {
                match obs.serve(addr) {
                    Ok(server) => {
                        eprintln!("observability at http://{}/", server.addr());
                        obs_server = Some(server);
                    }
                    Err(e) => {
                        eprintln!("cannot serve observability on {addr}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            match Database::open_with_obs(dir, clock, &obs) {
                Ok(db) => {
                    eprintln!("opened durable database at {}", dir.display());
                    db
                }
                Err(e) => {
                    eprintln!("cannot open {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("in-memory database (pass a directory for durability)");
            let db = Database::in_memory(clock);
            if let Some(addr) = &args.obs_addr {
                match db.serve_observability(addr) {
                    Ok(server) => {
                        eprintln!("observability at http://{}/", server.addr());
                        obs_server = Some(server);
                    }
                    Err(e) => {
                        eprintln!("cannot serve observability on {addr}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            db
        }
    };
    if args.stats_json {
        // One-shot: the engine-stats snapshot (the /stats document) on
        // stdout, then exit — scriptable without binding an exporter.
        println!("{}", db.engine_stats().to_json());
        return;
    }
    if let Some(ns) = args.slow_threshold_ns {
        db.set_slow_query_threshold_ns(ns);
    }
    if let Some(ms) = args.sample_interval_ms {
        match db.start_stats_sampler(std::time::Duration::from_millis(ms)) {
            Ok(()) => eprintln!("stats sampler running every {ms}ms (retrieve from sys$stats)"),
            Err(e) => {
                eprintln!("cannot start stats sampler: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "clock at {} — use \\advance mm/dd/yy to move it (today is {})",
        chronos_core::calendar::Date::from_chronon(db.now()),
        chronos_core::calendar::Date::from_chronon(_today)
    );

    let had_error = match &args.serve_addr {
        Some(addr) => {
            // Concurrent mode: the database moves into the shared
            // engine; the local shell becomes one more session beside
            // the network clients.
            let engine = Engine::start(db);
            let server = match QueryServer::serve(Arc::clone(&engine), addr) {
                Ok(server) => {
                    eprintln!("TQuel service at {} (chronos --connect)", server.addr());
                    server
                }
                Err(e) => {
                    eprintln!("cannot serve TQuel on {addr}: {e}");
                    std::process::exit(1);
                }
            };
            let had_error = repl(
                Shell::Serve {
                    session: engine.session(),
                    engine: Arc::clone(&engine),
                },
                Some(&manual),
                &obs_server,
                !args.batch,
            );
            server.shutdown();
            engine.shutdown();
            had_error
        }
        None => repl(
            Shell::Local(db.session()),
            Some(&manual),
            &obs_server,
            !args.batch,
        ),
    };
    drop(obs_server); // joins the accept thread
    if args.batch && had_error {
        std::process::exit(1);
    }
}

/// The three faces of the shell: a session over an exclusively-owned
/// database, a session beside a running TQuel service, or a network
/// client of one.
enum Shell<'a> {
    Local(chronos_db::Session<&'a mut Database>),
    Serve {
        session: chronos_db::EngineSession,
        engine: Arc<Engine>,
    },
    Connect {
        client: QueryClient,
        trace_id: Option<String>,
    },
}

impl Shell<'_> {
    /// Runs one statement batch; returns `false` if it errored.
    fn execute(&mut self, src: &str) -> bool {
        match self {
            Shell::Local(session) => match session.run(src) {
                Ok(outcomes) => {
                    print_outcomes(outcomes);
                    true
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    false
                }
            },
            Shell::Serve { session, .. } => {
                // Mirror the service: each batch begins a fresh read
                // snapshot, then holds it for the whole program.
                session.refresh();
                match session.run(src) {
                    Ok(outcomes) => {
                        print_outcomes(outcomes);
                        true
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        false
                    }
                }
            }
            Shell::Connect { client, trace_id } => {
                let result = match trace_id {
                    Some(id) => client.execute_traced(src, id),
                    None => client.execute(src),
                };
                match result {
                    Ok(response) => {
                        if trace_id.is_some() {
                            eprintln!("  [trace {}]", response.trace_id);
                        }
                        print!("{}", response.body);
                        if !response.ok {
                            eprintln!("error: {}", response.body.trim_end());
                        }
                        response.ok
                    }
                    Err(e) => {
                        eprintln!("error: connection failed: {e}");
                        false
                    }
                }
            }
        }
    }

    /// Runs `f` with read access to the engine state, if this shell
    /// has any (a `--connect` client does not).
    fn with_db<R>(&mut self, f: impl FnOnce(&Database) -> R) -> Option<R> {
        match self {
            Shell::Local(session) => Some(f(session.database())),
            Shell::Serve { engine, .. } => Some(engine.with_db(f)),
            Shell::Connect { .. } => None,
        }
    }

    fn checkpoint(&mut self) -> Option<Result<(), chronos_db::DbError>> {
        match self {
            Shell::Local(session) => Some(session.database().checkpoint()),
            Shell::Serve { engine, .. } => Some(engine.checkpoint()),
            Shell::Connect { .. } => None,
        }
    }
}

/// The line loop shared by all three shell modes.  Returns true if any
/// statement errored.
fn repl(
    mut shell: Shell<'_>,
    manual: Option<&Arc<ManualClock>>,
    obs_server: &Option<ObsServer>,
    interactive: bool,
) -> bool {
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    // Batch scripts (heredocs in CI) must fail loudly: any statement
    // error makes the whole run exit non-zero.
    let mut had_error = false;
    if interactive {
        print!("chronos> ");
        let _ = std::io::stdout().flush();
    }
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.starts_with('\\') {
            if !buffer.trim().is_empty() {
                had_error |= !shell.execute(&buffer);
                buffer.clear();
            }
            let mut parts = trimmed.split_whitespace();
            match parts.next() {
                Some("\\q") | Some("\\quit") => break,
                Some("\\d") => match shell.with_db(|db| {
                    let mut out = String::new();
                    for name in db.relation_names() {
                        let class = db.classify(&name).expect("cataloged");
                        let stored = db.relation(&name).expect("cataloged").stored_tuples();
                        out.push_str(&format!("  {name}  [{class}]  {stored} stored tuples\n"));
                    }
                    for name in chronos_db::system_relation_names() {
                        out.push_str(&format!("  {name}  [system, read-only]\n"));
                    }
                    out
                }) {
                    Some(listing) => print!("{listing}"),
                    None => eprintln!("  \\d is not available over --connect"),
                },
                Some("\\now") => match shell.with_db(|db| db.now()) {
                    Some(now) => {
                        println!("  {}", chronos_core::calendar::Date::from_chronon(now))
                    }
                    None => eprintln!("  \\now is not available over --connect"),
                },
                Some("\\advance") => match (manual, parts.next().map(date)) {
                    (Some(manual), Some(Ok(t))) => {
                        manual.advance_to(t);
                        println!("  clock at {}", chronos_core::calendar::Date::from_chronon(t));
                    }
                    (None, _) => eprintln!("  \\advance is not available over --connect"),
                    _ => eprintln!("usage: \\advance mm/dd/yy"),
                },
                Some("\\checkpoint") => match shell.checkpoint() {
                    Some(Ok(())) => println!("  checkpointed"),
                    Some(Err(e)) => {
                        eprintln!("  {e}");
                        had_error = true;
                    }
                    None => eprintln!("  \\checkpoint is not available over --connect"),
                },
                Some("\\stats") => match shell.with_db(|db| db.engine_stats().to_prometheus()) {
                    Some(stats) => print!("{stats}"),
                    None => eprintln!("  \\stats is not available over --connect"),
                },
                Some("\\sessions") => match shell.with_db(|db| {
                    render_sessions(
                        db.session_registry().sessions(),
                        db.session_registry().connections(),
                    )
                }) {
                    Some(listing) => print!("{listing}"),
                    None => eprintln!("  \\sessions is not available over --connect"),
                },
                Some("\\slow") => match shell.with_db(|db| db.recorder().slowlog().render()) {
                    Some(slow) => print!("{slow}"),
                    None => eprintln!("  \\slow is not available over --connect"),
                },
                Some("\\sample") => match shell.with_db(|db| db.sample_now()) {
                    Some(at) => println!(
                        "  sampled at {} (retrieve from sys$stats)",
                        chronos_core::calendar::Date::from_chronon(at)
                    ),
                    None => eprintln!("  \\sample is not available over --connect"),
                },
                Some("\\top") => {
                    match shell.with_db(|db| {
                        // Operators by time (the span ring), then the
                        // workload's query fingerprints by call count.
                        let mut top = render_top(db.recorder().recent_events());
                        top.push_str(&db.recorder().fingerprints().render());
                        top
                    }) {
                        Some(top) => print!("{top}"),
                        None => eprintln!("  \\top is not available over --connect"),
                    }
                }
                Some("\\obs") => match (obs_server, parts.next()) {
                    (Some(server), Some(path)) => {
                        match chronos_obs::http_get(&server.addr().to_string(), path) {
                            Ok((status, body)) => {
                                println!("{status} {path}");
                                print!("{body}");
                            }
                            Err(e) => eprintln!("  GET {path} failed: {e}"),
                        }
                    }
                    (None, _) => eprintln!("  no exporter (start with --obs-addr ADDR)"),
                    (_, None) => eprintln!("usage: \\obs /healthz"),
                },
                Some(other) => eprintln!("unknown command {other} (try \\d, \\now, \\advance, \\checkpoint, \\stats, \\sessions, \\slow, \\sample, \\top, \\obs, \\q)"),
                None => {}
            }
        } else if trimmed.is_empty() {
            if !buffer.trim().is_empty() {
                had_error |= !shell.execute(&buffer);
                buffer.clear();
            }
        } else {
            buffer.push_str(&line);
            buffer.push('\n');
        }
        if interactive && buffer.trim().is_empty() {
            print!("chronos> ");
            let _ = std::io::stdout().flush();
        }
    }
    if !buffer.trim().is_empty() {
        had_error |= !shell.execute(&buffer);
    }
    had_error
}

/// Renders the live session/connection registry (the `\sessions` twin
/// of the exporter's `/sessions` endpoint and the `sys$sessions` /
/// `sys$connections` system relations).
fn render_sessions(
    sessions: Vec<chronos_db::SessionRow>,
    connections: Vec<chronos_db::ConnRow>,
) -> String {
    let mut out = String::new();
    if sessions.is_empty() {
        out.push_str("  (no live sessions)\n");
    } else {
        out.push_str("  session      pin  statements      idle  trace\n");
        for s in &sessions {
            out.push_str(&format!(
                "  {:>7}  {:>7}  {:>10}  {:>6}ms  {}\n",
                s.session_id,
                s.pin_ticks,
                s.statements,
                s.idle_ns / 1_000_000,
                if s.trace_id.is_empty() {
                    "-"
                } else {
                    &s.trace_id
                },
            ));
        }
    }
    if connections.is_empty() {
        out.push_str("  (no network connections)\n");
    } else {
        out.push_str("  conn  session  requests    bytes in   bytes out  peer\n");
        for c in &connections {
            out.push_str(&format!(
                "  {:>4}  {:>7}  {:>8}  {:>10}  {:>10}  {}\n",
                c.conn_id, c.session_id, c.requests, c.bytes_in, c.bytes_out, c.peer
            ));
        }
    }
    out
}

/// Aggregates the recorder's span ring into a "top operators" table:
/// one row per span name with call count and accumulated wall time,
/// hottest first.
fn render_top(events: Vec<chronos_obs::RingEvent>) -> String {
    if events.is_empty() {
        return "  (no spans recorded yet — run some statements)\n".to_string();
    }
    let mut by_name: Vec<(&'static str, u64, u64)> = Vec::new();
    for ev in &events {
        match by_name.iter_mut().find(|(name, ..)| *name == ev.name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += ev.duration_ns;
            }
            None => by_name.push((ev.name, 1, ev.duration_ns)),
        }
    }
    by_name.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    let mut out = format!("  top operators over the last {} span(s):\n", events.len());
    for (name, count, total_ns) in by_name {
        out.push_str(&format!(
            "  {total_ns:>12} ns  {count:>6} call(s)  {name}\n"
        ));
    }
    out
}

/// Prints a statement batch's outcomes (the local-session twin of the
/// service's `render_outcomes`).
fn print_outcomes(outcomes: Vec<ExecOutcome>) {
    for outcome in outcomes {
        match outcome {
            ExecOutcome::Retrieved(rel) => {
                print!("{}", render(&rel));
                println!(
                    "({} row{})",
                    rel.len(),
                    if rel.len() == 1 { "" } else { "s" }
                );
            }
            ExecOutcome::Appended(t) => {
                println!(
                    "appended (transaction time {})",
                    chronos_core::calendar::Date::from_chronon(t)
                );
            }
            ExecOutcome::Materialized { relation, rows } => {
                println!("materialized {rows} row(s) into {relation}");
            }
            ExecOutcome::Deleted(n) => println!("deleted {n} row(s)"),
            ExecOutcome::Replaced(n) => println!("replaced {n} row(s)"),
            ExecOutcome::Created => println!("created"),
            ExecOutcome::Destroyed => println!("destroyed"),
            ExecOutcome::Explained { profile, report } => {
                println!("{} plan:", if profile { "profile" } else { "explain" });
                for line in report.lines() {
                    println!("  {line}");
                }
            }
            ExecOutcome::Analyzed { relation, stats } => {
                println!("analyzed {relation} ({stats} statistic(s) into sys$tablestats)");
            }
            ExecOutcome::Frozen {
                relation,
                versions,
                chains,
                file_bytes,
            } => {
                if versions == 0 {
                    println!("froze {relation}: nothing freezable");
                } else {
                    println!(
                        "froze {relation}: {versions} version(s) in {chains} chain(s), \
                         {file_bytes} bytes"
                    );
                }
            }
            ExecOutcome::Declared => {}
        }
    }
}
