//! `chronos` — an interactive TQuel shell over ChronosDB.
//!
//! ```text
//! cargo run -p chronos-db --bin chronos [-- <database-dir>]
//! ```
//!
//! With a directory argument the database is durable (catalog + WAL +
//! checkpoints); without one it is in-memory.  Statements may span
//! lines and are executed when a blank line (or end of input) is
//! reached, so the paper's multi-line queries paste directly.  Shell
//! commands start with `\`:
//!
//! ```text
//! \d                 list relations and their classes
//! \checkpoint        checkpoint a durable database
//! \now               show the database clock
//! \advance mm/dd/yy  move the clock forward (great for replaying the paper)
//! \stats             engine counters (Prometheus text exposition)
//! \q                 quit
//! ```
//!
//! Any statement may be prefixed with `explain` (span tree, access
//! paths, row counts) or `profile` (the same plus wall times).

use std::io::{BufRead, Write};
use std::sync::Arc;

use chronos_core::calendar::date;
use chronos_core::clock::{Clock, ManualClock, SystemClock};
use chronos_db::{Database, ExecOutcome};
use chronos_tquel::printer::render;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The clock starts at the epoch and only moves forward (transaction
    // time is append-only): `\advance` to any date — e.g. the paper's
    // 08/25/77 — before your first commit, or to today with
    // `\advance <today>`.
    let manual = Arc::new(ManualClock::new(chronos_core::chronon::Chronon::ZERO));
    let clock: Arc<dyn Clock> = manual.clone();
    let _today = SystemClock::default().now(); // printed in the banner below
    let mut db = match args.iter().find(|a| !a.starts_with("--")) {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            match Database::open(&dir, clock) {
                Ok(db) => {
                    eprintln!("opened durable database at {}", dir.display());
                    db
                }
                Err(e) => {
                    eprintln!("cannot open {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("in-memory database (pass a directory for durability)");
            Database::in_memory(clock)
        }
    };
    eprintln!(
        "clock at {} — use \\advance mm/dd/yy to move it (today is {})",
        chronos_core::calendar::Date::from_chronon(db.now()),
        chronos_core::calendar::Date::from_chronon(_today)
    );

    let stdin = std::io::stdin();
    let interactive = args.iter().all(|a| a != "--batch");
    let mut session = db.session();
    let mut buffer = String::new();
    if interactive {
        print!("chronos> ");
        let _ = std::io::stdout().flush();
    }
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.starts_with('\\') {
            if !buffer.trim().is_empty() {
                execute(&mut session, &buffer);
                buffer.clear();
            }
            let mut parts = trimmed.split_whitespace();
            match parts.next() {
                Some("\\q") | Some("\\quit") => break,
                Some("\\d") => {
                    let db = session.database();
                    for name in db.relation_names() {
                        let class = db.classify(&name).expect("cataloged");
                        let stored = db.relation(&name).expect("cataloged").stored_tuples();
                        println!("  {name}  [{class}]  {stored} stored tuples");
                    }
                }
                Some("\\now") => {
                    println!("  {}", chronos_core::calendar::Date::from_chronon(
                        session.database().now()
                    ));
                }
                Some("\\advance") => match parts.next().map(date) {
                    Some(Ok(t)) => {
                        manual.advance_to(t);
                        println!("  clock at {}", chronos_core::calendar::Date::from_chronon(t));
                    }
                    _ => eprintln!("usage: \\advance mm/dd/yy"),
                },
                Some("\\checkpoint") => match session.database().checkpoint() {
                    Ok(()) => println!("  checkpointed"),
                    Err(e) => eprintln!("  {e}"),
                },
                Some("\\stats") => {
                    print!("{}", session.database().engine_stats().to_prometheus());
                }
                Some(other) => eprintln!("unknown command {other} (try \\d, \\now, \\advance, \\checkpoint, \\stats, \\q)"),
                None => {}
            }
        } else if trimmed.is_empty() {
            if !buffer.trim().is_empty() {
                execute(&mut session, &buffer);
                buffer.clear();
            }
        } else {
            buffer.push_str(&line);
            buffer.push('\n');
        }
        if interactive && buffer.trim().is_empty() {
            print!("chronos> ");
            let _ = std::io::stdout().flush();
        }
    }
    if !buffer.trim().is_empty() {
        execute(&mut session, &buffer);
    }
}

fn execute(session: &mut chronos_db::Session<'_>, src: &str) {
    match session.run(src) {
        Ok(outcomes) => {
            for outcome in outcomes {
                match outcome {
                    ExecOutcome::Retrieved(rel) => {
                        print!("{}", render(&rel));
                        println!("({} row{})", rel.len(), if rel.len() == 1 { "" } else { "s" });
                    }
                    ExecOutcome::Appended(t) => {
                        println!("appended (transaction time {})",
                            chronos_core::calendar::Date::from_chronon(t));
                    }
                    ExecOutcome::Materialized { relation, rows } => {
                        println!("materialized {rows} row(s) into {relation}");
                    }
                    ExecOutcome::Deleted(n) => println!("deleted {n} row(s)"),
                    ExecOutcome::Replaced(n) => println!("replaced {n} row(s)"),
                    ExecOutcome::Created => println!("created"),
                    ExecOutcome::Destroyed => println!("destroyed"),
                    ExecOutcome::Explained { profile, report } => {
                        println!("{} plan:", if profile { "profile" } else { "explain" });
                        for line in report.lines() {
                            println!("  {line}");
                        }
                    }
                    ExecOutcome::Declared => {}
                }
            }
        }
        Err(e) => eprintln!("error: {e}"),
    }
}
