//! Offline storage forensics: `chronos --inspect DIR`.
//!
//! The doctor walks a durable database directory **without running
//! recovery** and without opening any file for writing: every artefact
//! — catalog, checkpoint, WAL, events journal — is parsed read-only and
//! judged on its own.  Where [`Database::open`](crate::Database::open)
//! would silently truncate a torn WAL tail and replay, the doctor
//! *reports* the tear (with its byte offset) and leaves the file
//! untouched, so a corrupted database can be diagnosed before deciding
//! whether to recover, restore a backup, or dig further.
//!
//! The WAL section is produced by [`chronos_storage::inspect`] — the
//! same walker behind the live `sys$wal` relation and the exporter's
//! `/wal` document — so offline and live reports agree on a quiesced
//! database by construction.
//!
//! Exit-code contract (used by `--inspect` and the CI smoke):
//!
//! * `0` — every artefact parsed clean,
//! * `2` — the directory was readable but something is torn or corrupt
//!   (the report names each problem and its offset),
//! * `1` — the directory itself could not be read at all.

use std::path::{Path, PathBuf};

use chronos_storage::inspect::{scan_wal, TailState, WalScan};

use crate::catalog::Catalog;
use crate::checkpoint::{self, RelationImage};

/// What the doctor found out about the catalog file.
pub enum CatalogReport {
    /// No `catalog` file — a database that never created a relation.
    Absent,
    /// Parsed clean: `(name, class, signature, rel_id)` per relation.
    Ok(Vec<(String, String, String, u32)>),
    /// Present but unparseable.
    Broken(String),
}

/// What the doctor found out about the checkpoint file.
pub enum CheckpointReport {
    /// No `checkpoint` file — recovery would replay the whole WAL.
    Absent,
    /// Parsed clean (magic, CRC, framing all good).
    Ok {
        /// Last commit time the images absorbed, in ticks.
        wal_floor: Option<i64>,
        /// `(rel_id, class, rows)` per relation image.
        images: Vec<(u32, &'static str, u64)>,
    },
    /// Present but bad magic, bad CRC, or undecodable body.
    Broken(String),
}

/// What the doctor found out about the events journal.
pub enum JournalReport {
    /// No `events.jsonl` (journalling is optional).
    Absent,
    /// Every line is well-formed JSON.
    Ok(usize),
    /// A line failed to parse.
    Broken(String),
}

/// One regular file in the directory: `(name, bytes)`.
pub type FileEntry = (String, u64);

/// Validation outcome for one file under `segments/`.
pub enum SegmentStatus {
    /// Magic, CRC, and full structural walk all good.
    Ok {
        /// Relation id stamped in the header.
        rel_id: u32,
        /// Version count the body decodes to.
        versions: u64,
        /// Distinct version chains.
        chains: u64,
    },
    /// A `.tmp` sibling from an interrupted freeze — harmless (the
    /// heap stayed authoritative; the next freeze overwrites it).
    Leftover,
    /// Bad magic, CRC mismatch, or an undecodable structure.
    Broken {
        /// Byte offset of the first bad byte.
        offset: u64,
        /// What failed there.
        reason: String,
    },
}

/// One frozen-segment file: name (relative to `segments/`), size, and
/// validation outcome.
pub struct SegmentFileReport {
    /// File name inside `segments/`.
    pub name: String,
    /// File size in bytes.
    pub bytes: u64,
    /// What checksum validation found.
    pub status: SegmentStatus,
}

/// The complete read-only findings for one database directory.
pub struct Inspection {
    /// The inspected directory.
    pub dir: PathBuf,
    /// Every regular file present, with sizes, sorted by name.
    pub files: Vec<FileEntry>,
    /// Catalog findings.
    pub catalog: CatalogReport,
    /// Checkpoint findings.
    pub checkpoint: CheckpointReport,
    /// WAL findings (`None` only if the file existed but could not be
    /// read at all).
    pub wal: Option<WalScan>,
    /// Events-journal findings.
    pub journal: JournalReport,
    /// Frozen-segment findings, one per file under `segments/`,
    /// sorted by name.  Empty when the directory is absent.
    pub segments: Vec<SegmentFileReport>,
    /// Every diagnosis, offset included where one exists.  Empty means
    /// the database is clean.
    pub problems: Vec<String>,
}

impl Inspection {
    /// True when every artefact parsed clean.
    pub fn healthy(&self) -> bool {
        self.problems.is_empty()
    }

    /// The process exit code for `--inspect`: 0 clean, 2 diagnosed.
    pub fn exit_code(&self) -> i32 {
        if self.healthy() {
            0
        } else {
            2
        }
    }

    /// The human report printed by `--inspect`.
    pub fn human_report(&self) -> String {
        let mut out = format!("inspecting {} (read-only)\n\nfiles:\n", self.dir.display());
        if self.files.is_empty() {
            out.push_str("  (none)\n");
        }
        for (name, bytes) in &self.files {
            out.push_str(&format!("  {name:<24} {bytes:>10} bytes\n"));
        }
        match &self.catalog {
            CatalogReport::Absent => out.push_str("\ncatalog: absent (empty database)\n"),
            CatalogReport::Ok(entries) => {
                out.push_str(&format!("\ncatalog: {} relation(s)\n", entries.len()));
                for (name, class, signature, rel_id) in entries {
                    out.push_str(&format!(
                        "  {name}  [{class}, {signature}]  rel_id {rel_id}\n"
                    ));
                }
            }
            CatalogReport::Broken(e) => out.push_str(&format!("\ncatalog: BROKEN — {e}\n")),
        }
        match &self.checkpoint {
            CheckpointReport::Absent => {
                out.push_str("checkpoint: absent (recovery replays the full WAL)\n")
            }
            CheckpointReport::Ok { wal_floor, images } => {
                let floor = match wal_floor {
                    Some(t) => format!("wal floor at tick {t}"),
                    None => "no wal floor".to_string(),
                };
                out.push_str(&format!("checkpoint: {} image(s), {floor}\n", images.len()));
                for (rel_id, class, rows) in images {
                    out.push_str(&format!("  rel_id {rel_id}  {class}  {rows} row(s)\n"));
                }
            }
            CheckpointReport::Broken(e) => out.push_str(&format!("checkpoint: BROKEN — {e}\n")),
        }
        match &self.wal {
            None => out.push_str("wal: unreadable\n"),
            Some(scan) => {
                out.push_str(&format!(
                    "wal: {} frame(s), {} bytes ({} valid), tail {}\n",
                    scan.frames.len(),
                    scan.total_len,
                    scan.valid_len,
                    scan.tail.label(),
                ));
                if let Some((first, last)) = scan.lsn_range() {
                    out.push_str(&format!("  commit ticks {first}..={last}\n"));
                }
                let (ins, rem, setv) = scan.op_totals();
                if ins + rem + setv > 0 {
                    out.push_str(&format!(
                        "  ops: {ins} insert, {rem} remove, {setv} set_validity\n"
                    ));
                }
                for (class, frames, bytes) in scan.classes() {
                    out.push_str(&format!(
                        "  class {class}: {frames} frame(s), {bytes} bytes\n"
                    ));
                }
            }
        }
        match &self.journal {
            JournalReport::Absent => out.push_str("journal: absent\n"),
            JournalReport::Ok(n) => {
                out.push_str(&format!("journal: {n} well-formed JSON line(s)\n"))
            }
            JournalReport::Broken(e) => out.push_str(&format!("journal: BROKEN — {e}\n")),
        }
        if !self.segments.is_empty() {
            out.push_str(&format!("segments: {} file(s)\n", self.segments.len()));
            for seg in &self.segments {
                match &seg.status {
                    SegmentStatus::Ok {
                        rel_id,
                        versions,
                        chains,
                    } => out.push_str(&format!(
                        "  {}  {} bytes  rel_id {rel_id}  {versions} version(s) in \
                         {chains} chain(s)  crc ok\n",
                        seg.name, seg.bytes
                    )),
                    SegmentStatus::Leftover => out.push_str(&format!(
                        "  {}  {} bytes  leftover from an interrupted freeze (harmless)\n",
                        seg.name, seg.bytes
                    )),
                    SegmentStatus::Broken { offset, reason } => out.push_str(&format!(
                        "  {}  {} bytes  BROKEN at byte offset {offset} — {reason}\n",
                        seg.name, seg.bytes
                    )),
                }
            }
        }
        if self.problems.is_empty() {
            out.push_str("\nverdict: clean\n");
        } else {
            out.push_str(&format!("\nverdict: {} problem(s)\n", self.problems.len()));
            for p in &self.problems {
                out.push_str(&format!("  - {p}\n"));
            }
        }
        out
    }

    /// The `--inspect-json` dump: one JSON object per WAL frame, then
    /// one `{"tail": ...}` object describing how the log ends.
    pub fn frames_jsonl(&self) -> String {
        let mut out = String::new();
        let Some(scan) = &self.wal else {
            return "{\"tail\": \"unreadable\"}\n".to_string();
        };
        for f in &scan.frames {
            out.push_str(&format!(
                "{{\"offset\": {}, \"len\": {}, \"rel_id\": {}, \"tx_ticks\": {}, \
                 \"class\": \"{}\", \"insert\": {}, \"remove\": {}, \"set_validity\": {}}}\n",
                f.offset,
                f.frame_len,
                f.rel_id,
                f.tx_ticks,
                f.class(),
                f.insert_ops,
                f.remove_ops,
                f.set_validity_ops,
            ));
        }
        match &scan.tail {
            TailState::Clean => out.push_str("{\"tail\": \"clean\"}\n"),
            TailState::Torn { offset, bytes } => out.push_str(&format!(
                "{{\"tail\": \"torn\", \"offset\": {offset}, \"bytes\": {bytes}}}\n"
            )),
            TailState::Corrupt {
                offset,
                bytes,
                reason,
            } => out.push_str(&format!(
                "{{\"tail\": \"corrupt\", \"offset\": {offset}, \"bytes\": {bytes}, \
                 \"reason\": \"{}\"}}\n",
                chronos_obs::events::escape_json(reason),
            )),
        }
        out
    }
}

/// Inspects a database directory read-only.  `Err` means the directory
/// itself could not be listed (exit code 1 territory); every per-file
/// finding — including corruption — lands in the returned report.
pub fn inspect(dir: &Path) -> std::io::Result<Inspection> {
    let mut files: Vec<FileEntry> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            files.push((
                entry.file_name().to_string_lossy().into_owned(),
                entry.metadata()?.len(),
            ));
        }
    }
    files.sort();
    let mut problems = Vec::new();

    let catalog_path = dir.join("catalog");
    let catalog = if catalog_path.exists() {
        match Catalog::load(&catalog_path) {
            Ok(cat) => CatalogReport::Ok(
                cat.iter()
                    .map(|(name, e)| {
                        (
                            name.clone(),
                            e.class.to_string(),
                            e.signature.to_string(),
                            e.rel_id,
                        )
                    })
                    .collect(),
            ),
            Err(e) => {
                problems.push(format!("catalog does not parse: {e}"));
                CatalogReport::Broken(e.to_string())
            }
        }
    } else {
        CatalogReport::Absent
    };

    let checkpoint = match checkpoint::load(&dir.join("checkpoint")) {
        Ok(None) => CheckpointReport::Absent,
        Ok(Some(ckp)) => CheckpointReport::Ok {
            wal_floor: ckp.wal_floor.map(|c| c.ticks()),
            images: ckp
                .images
                .iter()
                .map(|(rel_id, image)| {
                    let (class, rows) = match image {
                        RelationImage::Static(t) => ("static", t.len() as u64),
                        RelationImage::Rollback { rows, .. } => ("rollback", rows.len() as u64),
                        RelationImage::Historical(r) => ("historical", r.len() as u64),
                        RelationImage::Temporal { rows, .. } => ("temporal", rows.len() as u64),
                    };
                    (*rel_id, class, rows)
                })
                .collect(),
        },
        Err(e) => {
            problems.push(format!("checkpoint does not parse: {e}"));
            CheckpointReport::Broken(e.to_string())
        }
    };

    let wal = match scan_wal(&dir.join("wal")) {
        Ok(scan) => {
            match &scan.tail {
                TailState::Clean => {}
                TailState::Torn { offset, bytes } => problems.push(format!(
                    "wal has a torn tail: {bytes} incomplete byte(s) at offset {offset} \
                     (an interrupted append; recovery would truncate here)"
                )),
                TailState::Corrupt { reason, .. } => problems.push(format!("wal {reason}")),
            }
            Some(scan)
        }
        Err(e) => {
            problems.push(format!("wal unreadable: {e}"));
            None
        }
    };

    let journal_path = dir.join("events.jsonl");
    let journal = if journal_path.exists() {
        match std::fs::read_to_string(&journal_path) {
            Ok(text) => match chronos_obs::validate_jsonl(&text) {
                Ok(n) => JournalReport::Ok(n),
                Err(e) => {
                    problems.push(format!("events.jsonl is malformed: {e}"));
                    JournalReport::Broken(e.to_string())
                }
            },
            Err(e) => {
                problems.push(format!("events.jsonl unreadable: {e}"));
                JournalReport::Broken(e.to_string())
            }
        }
    } else {
        JournalReport::Absent
    };

    let mut segments: Vec<SegmentFileReport> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir.join("segments")) {
        for entry in entries.flatten() {
            if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            let status = if name.ends_with(".tmp") {
                // An interrupted freeze: the rename never happened, so
                // the heap still holds every version.  Not a problem.
                SegmentStatus::Leftover
            } else {
                match std::fs::read(entry.path()) {
                    Ok(data) => match chronos_storage::segment::check_bytes(&data) {
                        Ok(check) => SegmentStatus::Ok {
                            rel_id: check.rel_id,
                            versions: check.versions,
                            chains: check.chains,
                        },
                        Err((offset, reason)) => {
                            problems.push(format!(
                                "segment segments/{name} is corrupt at byte offset \
                                 {offset}: {reason}"
                            ));
                            SegmentStatus::Broken { offset, reason }
                        }
                    },
                    Err(e) => {
                        problems.push(format!("segment segments/{name} unreadable: {e}"));
                        SegmentStatus::Broken {
                            offset: 0,
                            reason: e.to_string(),
                        }
                    }
                }
            };
            segments.push(SegmentFileReport {
                name,
                bytes,
                status,
            });
        }
        segments.sort_by(|a, b| a.name.cmp(&b.name));
    }

    Ok(Inspection {
        dir: dir.to_path_buf(),
        files,
        catalog,
        checkpoint,
        wal,
        journal,
        segments,
        problems,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use chronos_core::calendar::date;
    use chronos_core::clock::ManualClock;

    use crate::Database;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chronos-doctor-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seeded_db(tag: &str) -> PathBuf {
        let dir = temp_dir(tag);
        let clock = Arc::new(ManualClock::new(date("08/25/77").unwrap()));
        let mut db = Database::open(&dir, clock).unwrap();
        let mut session = db.session();
        session
            .run(r#"
                create faculty (name = str, rank = str) as temporal
                append to faculty (name = "Merrie", rank = "assistant") valid from "09/01/77" to forever
                append to faculty (name = "Tom", rank = "full") valid from "09/01/77" to forever
            "#)
            .unwrap();
        drop(db);
        dir
    }

    /// Every on-disk byte before == after: the doctor never mutates.
    fn fingerprint(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    #[test]
    fn clean_database_inspects_clean_without_mutation() {
        let dir = seeded_db("clean");
        let before = fingerprint(&dir);
        let report = inspect(&dir).unwrap();
        assert!(report.healthy(), "problems: {:?}", report.problems);
        assert_eq!(report.exit_code(), 0);
        let scan = report.wal.as_ref().unwrap();
        assert!(!scan.frames.is_empty());
        let text = report.human_report();
        assert!(text.contains("verdict: clean"));
        assert!(text.contains("faculty"));
        assert!(text.contains("tail clean"));
        let jsonl = report.frames_jsonl();
        assert!(jsonl.ends_with("{\"tail\": \"clean\"}\n"));
        assert_eq!(jsonl.lines().count(), scan.frames.len() + 1);
        assert_eq!(fingerprint(&dir), before, "doctor mutated the database");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_is_diagnosed_with_its_offset() {
        let dir = seeded_db("torn");
        let wal_path = dir.join("wal");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let torn_at = {
            // Recompute the last clean frame boundary so the test knows
            // the offset the doctor must name.
            let scan = chronos_storage::inspect::scan_wal_bytes(&bytes);
            assert!(scan.is_clean());
            scan.frames.last().unwrap().offset
        };
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&wal_path, &bytes).unwrap();
        let before = fingerprint(&dir);
        let report = inspect(&dir).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.exit_code(), 2);
        let text = report.human_report();
        assert!(
            text.contains("torn tail") && text.contains(&format!("offset {torn_at}")),
            "report must name the torn offset {torn_at}: {text}"
        );
        assert!(report.frames_jsonl().contains("\"tail\": \"torn\""));
        assert_eq!(fingerprint(&dir), before, "doctor mutated the database");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_wal_byte_is_diagnosed_as_corrupt() {
        let dir = seeded_db("flip");
        let wal_path = dir.join("wal");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let (victim_offset, payload_at) = {
            let scan = chronos_storage::inspect::scan_wal_bytes(&bytes);
            let first = &scan.frames[0];
            (first.offset, first.offset as usize + 8)
        };
        bytes[payload_at] ^= 0xFF;
        std::fs::write(&wal_path, &bytes).unwrap();
        let report = inspect(&dir).unwrap();
        assert_eq!(report.exit_code(), 2);
        let text = report.human_report();
        assert!(
            text.contains("checksum mismatch") && text.contains(&format!("offset {victim_offset}")),
            "report must name the corrupt frame offset {victim_offset}: {text}"
        );
        assert!(report.frames_jsonl().contains("\"tail\": \"corrupt\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_diagnosed() {
        let dir = seeded_db("ckp");
        {
            let clock = Arc::new(ManualClock::new(date("08/25/77").unwrap()));
            let mut db = Database::open(&dir, clock).unwrap();
            db.checkpoint().unwrap();
        }
        let ckp_path = dir.join("checkpoint");
        let mut bytes = std::fs::read(&ckp_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&ckp_path, &bytes).unwrap();
        let report = inspect(&dir).unwrap();
        assert_eq!(report.exit_code(), 2);
        assert!(report
            .problems
            .iter()
            .any(|p| p.contains("checkpoint does not parse")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A database with a frozen segment, clock left usable.
    fn frozen_db(tag: &str) -> PathBuf {
        let dir = seeded_db(tag);
        let clock = Arc::new(ManualClock::new(date("01/01/85").unwrap()));
        let mut db = Database::open(&dir, clock).unwrap();
        // Close a version so something is freezable, then freeze.
        db.session()
            .run(r#"range of f is faculty delete f where f.name = "Tom""#)
            .unwrap();
        db.freeze_relation("faculty").unwrap();
        assert!(dir.join("segments/faculty-0.seg").is_file());
        drop(db);
        // Reopen would purge the cache; inspect the directory as the
        // crash left it instead.
        dir
    }

    #[test]
    fn valid_segment_inspects_clean_with_its_shape() {
        let dir = frozen_db("segok");
        let report = inspect(&dir).unwrap();
        assert!(report.healthy(), "problems: {:?}", report.problems);
        assert_eq!(report.segments.len(), 1);
        let seg = &report.segments[0];
        assert_eq!(seg.name, "faculty-0.seg");
        // The delete superseded Tom's one row: a single closed version.
        assert!(matches!(
            seg.status,
            SegmentStatus::Ok {
                versions: 1,
                chains: 1,
                ..
            }
        ));
        let text = report.human_report();
        assert!(text.contains("faculty-0.seg") && text.contains("crc ok"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_is_diagnosed_with_its_offset_and_exit_2() {
        let dir = frozen_db("segbad");
        let seg_path = dir.join("segments/faculty-0.seg");
        let mut bytes = std::fs::read(&seg_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg_path, &bytes).unwrap();
        let report = inspect(&dir).unwrap();
        assert_eq!(report.exit_code(), 2);
        assert!(
            report
                .problems
                .iter()
                .any(|p| p.contains("segments/faculty-0.seg") && p.contains("byte offset")),
            "problems must name the segment and an offset: {:?}",
            report.problems
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_segment_is_noted_but_not_a_problem() {
        let dir = frozen_db("segtmp");
        std::fs::write(dir.join("segments/faculty-1.seg.tmp"), b"partial").unwrap();
        let report = inspect(&dir).unwrap();
        assert!(report.healthy(), "problems: {:?}", report.problems);
        assert_eq!(report.segments.len(), 2);
        assert!(report
            .segments
            .iter()
            .any(|s| matches!(s.status, SegmentStatus::Leftover)));
        assert!(report.human_report().contains("interrupted freeze"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let dir = std::env::temp_dir().join("chronos-doctor-definitely-absent");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(inspect(&dir).is_err());
    }
}
