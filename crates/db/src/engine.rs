//! The concurrent query engine: shared MVCC core + group-commit writer.
//!
//! [`Database`] is single-threaded by construction (`&mut self` on
//! every mutation).  [`Engine`] wraps one database behind an
//! `Arc`-shared core so many sessions run in parallel:
//!
//! * **Readers** take the engine's `RwLock` in read mode and scan
//!   through the existing as-of machinery.  Each [`EngineSession`]
//!   pins a *snapshot* — the durable commit watermark at `begin` —
//!   and every scan of a transaction-time relation is clamped to that
//!   pin, so a session sees one consistent transaction-time state no
//!   matter how many commits land underneath it (see
//!   [`PinnedProvider`]).
//!
//! * **Writers** never touch the database directly.  All mutation is
//!   funneled through a bounded submission queue drained by a single
//!   writer thread, which applies each commit serially (preserving
//!   the WAL's replay order) but *stages* the WAL frames and covers a
//!   whole batch with **one** fsync — group commit.  Submitters block
//!   until the covering fsync completes, so an acknowledged commit is
//!   durable; under concurrency the natural batch size approaches the
//!   number of in-flight writers and the fsync-per-commit cost drops
//!   toward `1/batch`.
//!
//! * **Exclusive operations** (DDL, `retrieve into`, checkpoints) run
//!   alone on the writer thread between batches, with the write lock
//!   held and the previous batch's fsync already on disk — this
//!   serializes WAL resets against group syncs by construction.
//!
//! ## Visibility and the durable watermark
//!
//! The writer applies a commit to the in-memory state *before* its
//! covering fsync.  Snapshot pins are taken from the **durable**
//! watermark (the last fsync-covered commit), so a pinned session can
//! never observe a commit that a crash could still revoke.  Relations
//! without transaction time (static, historical) cannot be clamped
//! and read at read-committed isolation; the same holds for the
//! latest-state scans that lower `delete`/`replace` statements.
//!
//! If the covering fsync *fails*, the staged frames have been rolled
//! back but the in-memory state already applied them: the engine
//! poisons itself — every later submission is refused with the
//! original error and the process must reopen the database, which
//! replays exactly the durable prefix.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{mpsc, Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Instant;

use chronos_core::chronon::Chronon;
use chronos_core::relation::HistoricalOp;
use chronos_obs::trace::Recorder;
use parking_lot::{Mutex, RwLock};

use crate::database::{Database, EngineStats};
use crate::error::{DbError, DbResult};
use crate::introspect::SessionRegistry;
use crate::session::{Session, SessionBackend};
use chronos_tquel::ast::Retrieve;
use chronos_tquel::exec::{execute_retrieve_traced, ResultRelation};
use chronos_tquel::provider::{AsOfSpec, RelationInfo, RelationProvider, SourceRow};
use chronos_tquel::TquelResult;

/// Submissions the writer thread accepts before producers block.
/// Bounds memory under a submission storm; large enough that closed-
/// loop writers never stall on it.
const SUBMISSION_QUEUE_CAP: usize = 256;

/// The snapshot pin used when the database has no durable commit yet:
/// far enough in the past that every transaction-time relation reads
/// as empty, yet far from `i64::MIN` so period arithmetic cannot wrap.
fn empty_pin() -> Chronon {
    Chronon::new(i64::MIN / 4)
}

enum WriterReq {
    /// One session's statement: ops against a single relation,
    /// acknowledged (with the allocated transaction time) only after
    /// the covering group fsync.
    Commit {
        relation: String,
        ops: Vec<HistoricalOp>,
        reply: SyncSender<DbResult<Chronon>>,
        /// When the submitter enqueued the request; the writer records
        /// the dequeue delta into the `commit_queue_wait` histogram.
        enqueued: Instant,
    },
    /// An operation that must run alone (DDL, materialize,
    /// checkpoint); the closure owns its own reply channel.
    Exclusive {
        f: Box<dyn FnOnce(&mut Database) + Send + 'static>,
    },
}

struct WriterState {
    queue: VecDeque<WriterReq>,
    /// Set by the first fsync failure: the in-memory state holds
    /// commits the log does not, so the engine refuses further work.
    poisoned: Option<String>,
    stopping: bool,
}

/// A shared, concurrently-usable database engine.
///
/// Create one with [`Engine::start`]; open sessions with
/// [`Engine::session`]; shut down with [`Engine::shutdown`] (or let
/// `Drop` do it).
pub struct Engine {
    db: RwLock<Database>,
    state: StdMutex<WriterState>,
    cond: Condvar,
    /// Last fsync-covered commit time — what new sessions pin.
    durable: Mutex<Option<Chronon>>,
    recorder: Arc<Recorder>,
    /// Live session/connection introspection, shared with the wrapped
    /// database (`sys$sessions`) and the TQuel service.
    registry: Arc<SessionRegistry>,
    writer: StdMutex<Option<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl Engine {
    /// Wraps `db` and starts the group-commit writer thread.
    pub fn start(db: Database) -> Arc<Engine> {
        let recorder = Arc::clone(db.recorder());
        let registry = Arc::clone(db.session_registry());
        let durable = db.last_commit_time();
        let engine = Arc::new(Engine {
            db: RwLock::new(db),
            state: StdMutex::new(WriterState {
                queue: VecDeque::new(),
                poisoned: None,
                stopping: false,
            }),
            cond: Condvar::new(),
            durable: Mutex::new(durable),
            recorder,
            registry,
            writer: StdMutex::new(None),
            stopped: AtomicBool::new(false),
        });
        let loop_engine = Arc::clone(&engine);
        let handle = std::thread::Builder::new()
            .name("chronos-writer".into())
            .spawn(move || loop_engine.writer_loop())
            .expect("spawn group-commit writer");
        *engine.writer.lock().unwrap() = Some(handle);
        engine
    }

    /// Opens a snapshot-pinned session.  The pin is the durable
    /// watermark right now; [`EngineSession::refresh`] advances it.
    pub fn session(self: &Arc<Engine>) -> EngineSession {
        self.recorder.count(|m| &m.sessions_opened);
        let pin = self.durable.lock().unwrap_or_else(empty_pin);
        let session_id = self.registry.register_session(pin.ticks());
        Session::with_backend(EngineBackend {
            engine: Arc::clone(self),
            pin,
            session_id,
        })
    }

    /// The live session/connection registry (`sys$sessions`,
    /// `/sessions`, and the TQuel service's connection accounting).
    pub fn session_registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// The last commit covered by an fsync (what a new session pins).
    pub fn durable_watermark(&self) -> Option<Chronon> {
        *self.durable.lock()
    }

    /// Runs `f` with shared read access to the core — the engine-side
    /// counterpart of [`Database`]'s introspection surface (stats,
    /// recorder, telemetry, `now`).
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.db.read())
    }

    /// Snapshot of every engine instrument (see
    /// [`Database::engine_stats`]).
    pub fn stats(&self) -> EngineStats {
        self.db.read().engine_stats()
    }

    /// The observability recorder shared with the wrapped database.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Submits one commit to the writer and blocks until it is
    /// durable (or failed).  The returned chronon is the allocated
    /// transaction time.
    pub fn commit(&self, relation: &str, ops: &[HistoricalOp]) -> DbResult<Chronon> {
        let (reply, rx) = mpsc::sync_channel(1);
        self.submit(WriterReq::Commit {
            relation: relation.to_string(),
            ops: ops.to_vec(),
            reply,
            enqueued: Instant::now(),
        })?;
        rx.recv()
            .map_err(|_| DbError::Service("write service stopped before acknowledging".into()))?
    }

    /// Runs `f` alone on the writer thread with exclusive access —
    /// after the previous batch's fsync, before the next batch.  DDL,
    /// `retrieve into`, and checkpoints go through here.
    pub fn exclusive<R, F>(&self, f: F) -> DbResult<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut Database) -> R + Send + 'static,
    {
        let (reply, rx) = mpsc::sync_channel(1);
        self.submit(WriterReq::Exclusive {
            f: Box::new(move |db| {
                let _ = reply.send(f(db));
            }),
        })?;
        rx.recv()
            .map_err(|_| DbError::Service("write service stopped before acknowledging".into()))
    }

    /// Checkpoints the wrapped database (exclusive; see
    /// [`Database::checkpoint`]).
    pub fn checkpoint(&self) -> DbResult<()> {
        self.exclusive(|db| db.checkpoint())?
    }

    fn submit(&self, req: WriterReq) -> DbResult<()> {
        let mut st = self
            .state
            .lock()
            .expect("writer state poisoned (writer thread panicked)");
        let mut stalled = false;
        loop {
            if let Some(msg) = &st.poisoned {
                return Err(DbError::Service(format!(
                    "engine poisoned by a durability failure ({msg}); reopen required"
                )));
            }
            if st.stopping {
                return Err(DbError::Service("write service is shut down".into()));
            }
            if st.queue.len() < SUBMISSION_QUEUE_CAP {
                break;
            }
            // Backpressure: counted once per blocked submission, not
            // once per condvar wakeup.
            if !stalled {
                stalled = true;
                self.recorder.count(|m| &m.submit_stalls);
            }
            st = self
                .cond
                .wait(st)
                .expect("writer state poisoned (writer thread panicked)");
        }
        st.queue.push_back(req);
        self.recorder
            .set_gauge(|m| &m.commit_queue_depth, st.queue.len() as u64);
        drop(st);
        self.cond.notify_all();
        Ok(())
    }

    /// Stops the writer thread after draining every queued request.
    /// Idempotent; also run by `Drop`.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = self.state.lock().expect("writer state poisoned");
            st.stopping = true;
        }
        self.cond.notify_all();
        let handle = self.writer.lock().unwrap().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    // ------------------------------------------------------------
    // the writer thread
    // ------------------------------------------------------------

    fn writer_loop(&self) {
        loop {
            // Wait for work; drain the longest prefix of same-kind
            // requests (a run of commits forms one group; an
            // exclusive runs alone).
            let batch: Vec<WriterReq> = {
                let mut st = self.state.lock().expect("writer state poisoned");
                loop {
                    if !st.queue.is_empty() {
                        break;
                    }
                    if st.stopping {
                        return;
                    }
                    st = self.cond.wait(st).expect("writer state poisoned");
                }
                let mut batch = Vec::new();
                while let Some(front) = st.queue.front() {
                    let commit = matches!(front, WriterReq::Commit { .. });
                    if batch.is_empty() {
                        let req = st.queue.pop_front().expect("checked front");
                        let solo = !commit;
                        batch.push(req);
                        if solo {
                            break;
                        }
                    } else if commit {
                        batch.push(st.queue.pop_front().expect("checked front"));
                    } else {
                        break;
                    }
                }
                self.recorder
                    .set_gauge(|m| &m.commit_queue_depth, st.queue.len() as u64);
                batch
            };
            // Producers blocked on a full queue can move again.
            self.cond.notify_all();
            // Queue-wait decomposition: submit → drain, per request.
            let drained_at = Instant::now();
            for req in &batch {
                if let WriterReq::Commit { enqueued, .. } = req {
                    self.recorder.record_latency(
                        |m| &m.commit_queue_wait,
                        drained_at.duration_since(*enqueued).as_nanos() as u64,
                    );
                }
            }
            match batch.first() {
                Some(WriterReq::Exclusive { .. }) => {
                    for req in batch {
                        if let WriterReq::Exclusive { f } = req {
                            let mut db = self.db.write();
                            f(&mut db);
                            // DDL may have committed (materialize
                            // checkpoints; creates persist the
                            // catalog): those paths fsync on their
                            // own, so the watermark follows.
                            let t = db.last_commit_time();
                            drop(db);
                            *self.durable.lock() = t;
                        }
                    }
                }
                Some(WriterReq::Commit { .. }) => self.run_commit_group(batch),
                None => {}
            }
        }
    }

    /// Applies a run of commits serially, covers the whole batch with
    /// one fsync, and acknowledges each submitter.
    fn run_commit_group(&self, batch: Vec<WriterReq>) {
        let mut acks: Vec<(SyncSender<DbResult<Chronon>>, DbResult<Chronon>)> =
            Vec::with_capacity(batch.len());
        let mut applied = 0u64;
        let mut max_tx: Option<Chronon> = None;
        let wal = {
            let lock_started = Instant::now();
            let mut db = self.db.write();
            self.recorder.record_latency(
                |m| &m.commit_lock_wait,
                lock_started.elapsed().as_nanos() as u64,
            );
            let apply_started = Instant::now();
            let wal = db.wal_handle();
            for req in batch {
                let WriterReq::Commit {
                    relation,
                    ops,
                    reply,
                    ..
                } = req
                else {
                    unreachable!("commit group contains only commits");
                };
                // A failed statement (validation, unknown relation)
                // rolls back its own staged frame inside the
                // database; the rest of the batch is unaffected.
                let result = db.commit_unsynced(&relation, &ops);
                if let Ok(t) = &result {
                    applied += 1;
                    max_tx = Some(max_tx.map_or(*t, |m: Chronon| m.max(*t)));
                }
                acks.push((reply, result));
            }
            self.recorder.record_latency(
                |m| &m.commit_apply,
                apply_started.elapsed().as_nanos() as u64,
            );
            wal
            // Write lock drops here: readers resume while we fsync.
        };
        let fsync_started = Instant::now();
        let sync_result = match (&wal, applied) {
            (Some(wal), n) if n > 0 => {
                let r = wal.lock().group_sync().map_err(DbError::Storage);
                self.recorder.record_latency(
                    |m| &m.commit_fsync,
                    fsync_started.elapsed().as_nanos() as u64,
                );
                r
            }
            _ => Ok(()),
        };
        match sync_result {
            Ok(()) => {
                if applied > 0 {
                    if let Some(t) = max_tx {
                        let mut durable = self.durable.lock();
                        *durable = Some(durable.map_or(t, |d| d.max(t)));
                    }
                    self.recorder.count(|m| &m.group_commit_batches);
                    // The histogram generically records "ns"; here the
                    // recorded value is a batch size (a count).
                    self.recorder
                        .record_latency(|m| &m.group_batch_size, applied);
                    if wal.is_some() && applied > 1 {
                        self.recorder
                            .count_n(|m| &m.group_fsyncs_saved, applied - 1);
                    }
                    self.recorder.emit_event(
                        "group_commit",
                        &[
                            ("batch", applied.into()),
                            ("fsyncs_saved", applied.saturating_sub(1).into()),
                        ],
                    );
                }
                let ack_started = Instant::now();
                for (reply, result) in acks {
                    let _ = reply.send(result);
                }
                self.recorder
                    .record_latency(|m| &m.commit_ack, ack_started.elapsed().as_nanos() as u64);
            }
            Err(e) => {
                // The staged frames are gone from the log but applied
                // in memory: refuse all further work.
                let msg = e.to_string();
                {
                    let mut st = self.state.lock().expect("writer state poisoned");
                    st.poisoned = Some(msg.clone());
                }
                self.cond.notify_all();
                for (reply, result) in acks {
                    let _ = reply.send(match result {
                        Ok(_) => Err(DbError::Service(format!(
                            "commit lost: group fsync failed ({msg}); reopen required"
                        ))),
                        err => err,
                    });
                }
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ----------------------------------------------------------------
// snapshot-pinned sessions
// ----------------------------------------------------------------

/// A TQuel session over a shared [`Engine`] (see
/// [`Engine::session`]): [`Session`] generic over the engine backend.
pub type EngineSession = Session<EngineBackend>;

/// [`SessionBackend`] that routes reads through a snapshot pin and
/// writes through the group-commit queue.
pub struct EngineBackend {
    engine: Arc<Engine>,
    /// The session's transaction-time snapshot: scans of relations
    /// with transaction time are clamped to `<= pin`.
    pin: Chronon,
    /// Registry id (`sys$sessions` row key).
    session_id: u64,
}

impl EngineBackend {
    fn pinned<'a>(&self, db: &'a Database) -> PinnedProvider<'a> {
        PinnedProvider { db, pin: self.pin }
    }

    /// Takes the core's read lock, recording the acquisition wait into
    /// the `read_lock_wait` histogram (read-side contention with the
    /// group-commit writer).
    fn read_db(&self) -> parking_lot::RwLockReadGuard<'_, Database> {
        let started = Instant::now();
        let db = self.engine.db.read();
        self.engine
            .recorder
            .record_latency(|m| &m.read_lock_wait, started.elapsed().as_nanos() as u64);
        db
    }
}

impl SessionBackend for EngineBackend {
    fn info(&self, relation: &str) -> Option<RelationInfo> {
        self.engine.db.read().info(relation)
    }

    fn now(&self) -> Chronon {
        self.engine.db.read().now()
    }

    fn recorder(&self) -> Arc<Recorder> {
        Arc::clone(&self.engine.recorder)
    }

    fn commit(&mut self, relation: &str, ops: &[HistoricalOp]) -> DbResult<Chronon> {
        let t = self.engine.commit(relation, ops)?;
        // Read-your-writes: the session's snapshot advances to cover
        // its own (now durable) commit.
        self.pin = self.pin.max(t);
        self.engine
            .registry
            .session_refreshed(self.session_id, self.pin.ticks());
        Ok(t)
    }

    fn session_id(&self) -> u64 {
        self.session_id
    }

    fn note_statement(&self, trace_id: &str) {
        self.engine
            .registry
            .note_statement(self.session_id, trace_id);
    }

    fn scan_latest(&self, relation: &str) -> DbResult<Vec<SourceRow>> {
        // Modification lowering reads the *latest* state (read
        // committed): a delete must close the facts that exist now,
        // not the ones the snapshot remembers.
        let db = self.read_db();
        let rel = db
            .relation(relation)
            .ok_or_else(|| DbError::Catalog(format!("unknown relation {relation:?}")))?;
        rel.scan(None)
    }

    fn retrieve(
        &mut self,
        stmt: &Retrieve,
        ranges: &std::collections::HashMap<String, String>,
        recorder: Option<&Recorder>,
    ) -> TquelResult<ResultRelation> {
        let db = self.read_db();
        let provider = self.pinned(&db);
        match recorder {
            Some(r) => execute_retrieve_traced(stmt, ranges, &provider, r),
            None => execute_retrieve_traced(
                stmt,
                ranges,
                &provider,
                chronos_obs::trace::noop_recorder(),
            ),
        }
    }

    fn materialize(&mut self, name: &str, result: &ResultRelation) -> DbResult<()> {
        let name = name.to_string();
        let result = result.clone();
        self.engine
            .exclusive(move |db| db.materialize(&name, &result))?
    }

    fn create_relation(
        &mut self,
        name: &str,
        schema: chronos_core::schema::Schema,
        class: chronos_core::schema::RelationClass,
        signature: chronos_core::schema::TemporalSignature,
    ) -> DbResult<()> {
        let name = name.to_string();
        self.engine
            .exclusive(move |db| db.create_relation(&name, schema, class, signature))?
    }

    fn destroy_relation(&mut self, name: &str) -> DbResult<()> {
        let name = name.to_string();
        self.engine
            .exclusive(move |db| db.destroy_relation(&name))?
    }

    fn analyze(&mut self, relation: &str) -> DbResult<usize> {
        // A read-lock suffices: statistics collection only scans
        // storage and records into the (interior-mutable) telemetry
        // rings — no catalog mutation.
        self.read_db().analyze_relation(relation)
    }

    fn freeze(&mut self, relation: &str) -> DbResult<crate::database::FreezeOutcome> {
        // Structural migration of the relation's physical store:
        // needs the writer lock, like create/destroy.
        let relation = relation.to_string();
        self.engine
            .exclusive(move |db| db.freeze_relation(&relation))?
    }
}

impl Drop for EngineBackend {
    fn drop(&mut self) {
        self.engine.registry.deregister_session(self.session_id);
        self.engine.recorder.count(|m| &m.sessions_closed);
    }
}

impl Session<EngineBackend> {
    /// The session's current snapshot pin.
    pub fn pin(&self) -> Chronon {
        self.backend().pin
    }

    /// Advances the snapshot to the current durable watermark —
    /// "begin a new read transaction".  Pins never move backwards.
    pub fn refresh(&mut self) {
        let durable = self
            .backend()
            .engine
            .durable_watermark()
            .unwrap_or_else(empty_pin);
        let backend = self.backend_mut();
        backend.pin = backend.pin.max(durable);
        backend
            .engine
            .registry
            .session_refreshed(backend.session_id, backend.pin.ticks());
    }

    /// The session's registry id (the `sys$sessions` row key).
    pub fn session_id(&self) -> u64 {
        self.backend().session_id
    }

    /// The engine this session talks to.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.backend().engine)
    }
}

/// A [`RelationProvider`] view of the core clamped to a snapshot pin.
///
/// Relations with transaction time (rollback, temporal) are read `as
/// of min(requested, pin)` — a query can look further back than its
/// snapshot but never past it.  Classes without transaction time and
/// the `sys$` projections pass through unclamped (read committed).
struct PinnedProvider<'a> {
    db: &'a Database,
    pin: Chronon,
}

impl PinnedProvider<'_> {
    fn clamps(&self, relation: &str) -> bool {
        use chronos_core::schema::RelationClass;
        !crate::introspect::is_system(relation)
            && matches!(
                self.db.info(relation).map(|i| i.class),
                Some(RelationClass::StaticRollback | RelationClass::Temporal)
            )
    }
}

impl RelationProvider for PinnedProvider<'_> {
    fn info(&self, relation: &str) -> Option<RelationInfo> {
        self.db.info(relation)
    }

    fn scan(&self, relation: &str, as_of: Option<&AsOfSpec>) -> TquelResult<Arc<Vec<SourceRow>>> {
        if !self.clamps(relation) {
            return self.db.scan(relation, as_of);
        }
        let clamped = match as_of {
            None => AsOfSpec::At(self.pin),
            Some(AsOfSpec::At(t)) => AsOfSpec::At((*t).min(self.pin)),
            Some(AsOfSpec::Through(t1, t2)) => {
                AsOfSpec::Through((*t1).min(self.pin), (*t2).min(self.pin))
            }
        };
        self.db.scan(relation, Some(&clamped))
    }

    fn estimated_rows(&self, relation: &str) -> Option<u64> {
        // Statistics are telemetry, not versioned state — the latest
        // analyze sample answers regardless of the snapshot pin.
        RelationProvider::estimated_rows(self.db, relation)
    }
}
