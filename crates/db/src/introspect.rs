//! Temporal introspection: the engine's telemetry as system relations.
//!
//! The paper's taxonomy says transaction time "models the
//! representation" — and nothing is more purely representational than
//! the engine's own counters.  This module dogfoods the taxonomy by
//! recording engine history *as* relations in the reserved `sys$`
//! namespace, so operators ask "what was the cache hit rate as of
//! yesterday" in TQuel itself:
//!
//! | relation          | class            | contents                           |
//! |-------------------|------------------|------------------------------------|
//! | `sys$stats`       | temporal (event) | sampled `engine_stats()` counters  |
//! | `sys$relations`   | static rollback  | catalog history (name/class/sizes) |
//! | `sys$slow`        | historical (event)| slow-query admissions             |
//! | `sys$events`      | static           | tail of the JSONL event journal    |
//! | `sys$sessions`    | static rollback  | live + sampled session state       |
//! | `sys$connections` | static           | live network connections           |
//! | `sys$queries`     | static           | per-fingerprint workload aggregates|
//! | `sys$tablestats`  | temporal (event) | `analyze` storage statistics       |
//! | `sys$wal`         | static           | physical WAL frame/watermark stats |
//! | `sys$pages`       | static           | per-relation heap/page statistics  |
//!
//! `sys$stats` rows carry both timestamps: validity is the sampling
//! event, and the transaction period of sample *i* is
//! `[at_i, at_{i+1})` (the last sample extends to `forever`), so an
//! `as of t` rollback query answers with the counter values that were
//! current at `t`.  `sys$relations` is sampled synchronously at every
//! catalog-visible mutation (commits, DDL), which makes its rollback
//! view exact without any background mirror.
//!
//! The [`TelemetryStore`] holds both sample rings, bounded in memory
//! with optional JSONL spill beside the WAL; the [`StatsSampler`] is
//! the background thread that feeds it on a configurable interval.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use chronos_core::chronon::Chronon;
use chronos_core::clock::Clock;
use chronos_core::period::Period;
use chronos_core::relation::Validity;
use chronos_core::schema::{Attribute, RelationClass, Schema, TemporalSignature};
use chronos_core::tuple::Tuple;
use chronos_core::value::{AttrType, Value};
use chronos_obs::export::Health;
use chronos_obs::Recorder;
use chronos_tquel::provider::{AsOfSpec, RelationInfo, SourceRow};

use crate::cache::QueryCache;
use crate::database::EngineStats;

/// The reserved system-relation namespace.
pub const SYS_PREFIX: &str = "sys$";

/// True iff `name` lives in the reserved `sys$` namespace.
pub fn is_system(name: &str) -> bool {
    name.starts_with(SYS_PREFIX)
}

/// Samples each ring retains in memory before spilling/dropping.
pub const DEFAULT_TELEMETRY_CAPACITY: usize = 256;

/// One sampled `engine_stats()` snapshot, flattened to `(metric, value)`
/// pairs (the tall/narrow shape lets TQuel select and aggregate single
/// metrics with ordinary `where` clauses).
#[derive(Debug, Clone)]
pub struct StatSample {
    /// Transaction-clock reading when the sample was taken.
    pub at: Chronon,
    /// Flattened metric values, in exposition order.
    pub metrics: Vec<(&'static str, i64)>,
}

/// One catalog entry as seen at a sampling point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogRow {
    pub name: String,
    pub class: String,
    pub tuples: i64,
    pub bytes: i64,
    pub checkpoint_k: i64,
}

/// The catalog as a whole at one sampling point.
#[derive(Debug, Clone)]
struct CatalogSample {
    at: Chronon,
    rows: Vec<CatalogRow>,
}

/// One per-relation statistic as collected by `analyze`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStatRow {
    /// The analyzed relation.
    pub relation: String,
    /// Statistic name (`rows`, `versions`, `chain_len_le_4`, …).
    pub stat: String,
    /// Statistic value.
    pub value: i64,
    /// Transaction-clock reading of the `analyze` that produced this
    /// row — its valid-time event (carried forward unchanged when later
    /// analyzes of *other* relations produce new samples).
    pub analyzed_at: Chronon,
}

/// All relations' statistics as known after one `analyze`.
#[derive(Debug, Clone)]
struct TableStatsSample {
    at: Chronon,
    rows: Vec<TableStatRow>,
}

/// Counters describing the telemetry subsystem itself, surfaced through
/// `engine_stats()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryStats {
    /// Stat samples ever recorded (including replaced/spilled ones).
    pub samples_taken: u64,
    /// Stat samples spilled to the JSONL file beside the WAL.
    pub samples_spilled: u64,
    /// Stat samples currently retained in memory.
    pub stats_retained: usize,
    /// Catalog samples currently retained in memory.
    pub catalog_retained: usize,
    /// Ring capacity.
    pub capacity: usize,
    /// Whether the background sampler thread is running.
    pub sampler_running: bool,
}

impl TelemetryStats {
    /// Hand-rolled JSON object (the workspace has no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"samples_taken\": {}, \"samples_spilled\": {}, \"stats_retained\": {}, \
             \"catalog_retained\": {}, \"capacity\": {}, \"sampler_running\": {}}}",
            self.samples_taken,
            self.samples_spilled,
            self.stats_retained,
            self.catalog_retained,
            self.capacity,
            self.sampler_running
        )
    }
}

/// Bounded rings of engine-history samples backing the `sys$stats` and
/// `sys$relations` system relations.  `Arc`-shared between the
/// `Database`, the background sampler, and the HTTP exporter.
pub struct TelemetryStore {
    capacity: usize,
    stats: Mutex<VecDeque<StatSample>>,
    catalog: Mutex<VecDeque<CatalogSample>>,
    tablestats: Mutex<VecDeque<TableStatsSample>>,
    spill_path: Mutex<Option<PathBuf>>,
    samples_taken: AtomicU64,
    samples_spilled: AtomicU64,
    sampler_running: AtomicBool,
}

impl Default for TelemetryStore {
    fn default() -> Self {
        TelemetryStore::new(DEFAULT_TELEMETRY_CAPACITY)
    }
}

impl TelemetryStore {
    /// A store retaining up to `capacity` samples per ring.
    pub fn new(capacity: usize) -> TelemetryStore {
        TelemetryStore {
            capacity: capacity.max(1),
            stats: Mutex::new(VecDeque::new()),
            catalog: Mutex::new(VecDeque::new()),
            tablestats: Mutex::new(VecDeque::new()),
            spill_path: Mutex::new(None),
            samples_taken: AtomicU64::new(0),
            samples_spilled: AtomicU64::new(0),
            sampler_running: AtomicBool::new(false),
        }
    }

    /// Enables JSONL spill: stat samples evicted from the ring are
    /// appended to `path` (kept beside the WAL on durable databases)
    /// instead of vanishing.
    pub fn set_spill_path(&self, path: PathBuf) {
        *self.spill_path.lock() = Some(path);
    }

    /// Marks the background sampler as running/stopped.
    pub(crate) fn set_sampler_running(&self, running: bool) {
        self.sampler_running.store(running, Ordering::Release);
    }

    /// Whether the background sampler thread is currently running.
    pub fn sampler_running(&self) -> bool {
        self.sampler_running.load(Ordering::Acquire)
    }

    /// Subsystem counters for `engine_stats()`.
    pub fn stats(&self) -> TelemetryStats {
        TelemetryStats {
            samples_taken: self.samples_taken.load(Ordering::Relaxed),
            samples_spilled: self.samples_spilled.load(Ordering::Relaxed),
            stats_retained: self.stats.lock().len(),
            catalog_retained: self.catalog.lock().len(),
            capacity: self.capacity,
            sampler_running: self.sampler_running(),
        }
    }

    /// Records one flattened `engine_stats()` snapshot at transaction
    /// time `at`.  Samples at (or behind) the newest recorded chronon
    /// replace it — "newest wins" keeps the ring strictly increasing in
    /// `at`, which is what gives `as of` queries a well-defined answer.
    pub fn record_stats(&self, at: Chronon, stats: &EngineStats) {
        let metrics = flatten_stats(stats);
        self.samples_taken.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.stats.lock();
        if let Some(last) = ring.back_mut() {
            if at <= last.at {
                let at = last.at;
                *last = StatSample { at, metrics };
                return;
            }
        }
        ring.push_back(StatSample { at, metrics });
        if ring.len() > self.capacity {
            if let Some(evicted) = ring.pop_front() {
                drop(ring);
                self.spill(&evicted);
            }
        }
    }

    /// Records the catalog's state at transaction time `at` (same
    /// newest-wins clamping as [`record_stats`](Self::record_stats)).
    pub fn record_catalog(&self, at: Chronon, rows: Vec<CatalogRow>) {
        let mut ring = self.catalog.lock();
        if let Some(last) = ring.back_mut() {
            if at <= last.at {
                let at = last.at;
                *last = CatalogSample { at, rows };
                return;
            }
        }
        ring.push_back(CatalogSample { at, rows });
        if ring.len() > self.capacity {
            ring.pop_front();
        }
    }

    /// Records the statistics `analyze <relation>` collected at
    /// transaction time `at`.  The new sample carries forward the
    /// previous sample's rows for every *other* relation (with their
    /// original `analyzed_at`) and replaces the analyzed relation's —
    /// so the newest sample always holds the complete statistics state,
    /// and `as of` shows how a relation's shape evolved across
    /// successive analyzes.  Same newest-wins clamping as
    /// [`record_stats`](Self::record_stats).
    pub fn record_tablestats(&self, at: Chronon, relation: &str, stats: Vec<(String, i64)>) {
        let mut ring = self.tablestats.lock();
        let mut rows: Vec<TableStatRow> = ring
            .back()
            .map(|s| {
                s.rows
                    .iter()
                    .filter(|r| r.relation != relation)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        rows.extend(stats.into_iter().map(|(stat, value)| TableStatRow {
            relation: relation.to_string(),
            stat,
            value,
            analyzed_at: at,
        }));
        rows.sort_by(|a, b| a.relation.cmp(&b.relation).then(a.stat.cmp(&b.stat)));
        if let Some(last) = ring.back_mut() {
            if at <= last.at {
                let at = last.at;
                *last = TableStatsSample { at, rows };
                return;
            }
        }
        ring.push_back(TableStatsSample { at, rows });
        if ring.len() > self.capacity {
            ring.pop_front();
        }
    }

    /// Drops every statistic recorded for `relation` (called on
    /// `destroy`, so a recreated relation starts unanalyzed).
    pub fn forget_tablestats(&self, relation: &str) {
        let mut ring = self.tablestats.lock();
        for s in ring.iter_mut() {
            s.rows.retain(|r| r.relation != relation);
        }
    }

    /// The latest recorded value of one statistic for `relation`
    /// (`None` until the relation is analyzed) — the planner-facing
    /// lookup behind `RelationProvider::estimated_rows`.
    pub fn latest_tablestat(&self, relation: &str, stat: &str) -> Option<i64> {
        let ring = self.tablestats.lock();
        ring.back().and_then(|s| {
            s.rows
                .iter()
                .find(|r| r.relation == relation && r.stat == stat)
                .map(|r| r.value)
        })
    }

    /// The `sys$tablestats` scan: tall `(relation, stat, value)` rows.
    /// Validity is the `analyze` collection event; the transaction
    /// period of sample *i* is `[at_i, at_{i+1})`, the newest extending
    /// to `forever` — the same currency semantics as `sys$stats`.
    pub fn tablestats_scan(&self, as_of: Option<&AsOfSpec>) -> Vec<SourceRow> {
        let ring = self.tablestats.lock();
        let periods = periods_of(ring.iter().map(|s| s.at));
        let selected: Vec<usize> = match as_of {
            None => (!ring.is_empty())
                .then(|| ring.len() - 1)
                .into_iter()
                .collect(),
            Some(AsOfSpec::At(t)) => ring
                .iter()
                .enumerate()
                .rev()
                .find(|(_, s)| s.at <= *t)
                .map(|(i, _)| i)
                .into_iter()
                .collect(),
            Some(AsOfSpec::Through(t1, t2)) => {
                let window = Period::clamped(*t1, t2.succ());
                periods
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.overlaps(window))
                    .map(|(i, _)| i)
                    .collect()
            }
        };
        let mut rows = Vec::new();
        for i in selected {
            let s = &ring[i];
            for r in &s.rows {
                rows.push(SourceRow {
                    tuple: Tuple::new(vec![
                        Value::str(&r.relation),
                        Value::str(&r.stat),
                        Value::Int(r.value),
                    ]),
                    validity: Some(Validity::Event(r.analyzed_at)),
                    tx: Some(periods[i]),
                });
            }
        }
        rows
    }

    /// Appends an evicted sample to the spill file (best effort — the
    /// telemetry plane never fails an engine operation).
    fn spill(&self, sample: &StatSample) {
        let Some(path) = self.spill_path.lock().clone() else {
            return;
        };
        let mut line = format!("{{\"at\": {}", sample.at.ticks());
        for (name, value) in &sample.metrics {
            line.push_str(&format!(", \"{name}\": {value}"));
        }
        line.push_str("}\n");
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
        {
            if f.write_all(line.as_bytes()).is_ok() {
                self.samples_spilled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The `sys$stats` scan: tall `(metric, value)` rows.  Validity is
    /// the sampling event; the transaction period of sample *i* is
    /// `[at_i, at_{i+1})`, the newest extending to `forever`.
    pub fn stats_scan(&self, as_of: Option<&AsOfSpec>) -> Vec<SourceRow> {
        let ring = self.stats.lock();
        let samples: Vec<&StatSample> = match as_of {
            // Current state: the newest sample only.
            None => ring.back().into_iter().collect(),
            // State as of t: the newest sample taken at or before t.
            Some(AsOfSpec::At(t)) => ring.iter().rev().find(|s| s.at <= *t).into_iter().collect(),
            // Every sample whose currency period overlaps [t1, t2].
            Some(AsOfSpec::Through(t1, t2)) => {
                let window = Period::clamped(*t1, t2.succ());
                let periods = sample_periods(&ring);
                ring.iter()
                    .zip(periods)
                    .filter(|(_, p)| p.overlaps(window))
                    .map(|(s, _)| s)
                    .collect()
            }
        };
        let periods = sample_periods(&ring);
        let mut rows = Vec::new();
        for s in samples {
            let idx = ring
                .iter()
                .position(|r| r.at == s.at)
                .expect("sample in ring");
            let tx = periods[idx];
            for (metric, value) in &s.metrics {
                rows.push(SourceRow {
                    tuple: Tuple::new(vec![Value::str(metric), Value::Int(*value)]),
                    validity: Some(Validity::Event(s.at)),
                    tx: Some(tx),
                });
            }
        }
        rows
    }

    /// The last `n` sampled values of `metric`, oldest first (the
    /// `/history` endpoint body).
    pub fn history(&self, metric: &str, n: usize) -> Vec<(Chronon, i64)> {
        let ring = self.stats.lock();
        let mut out: Vec<(Chronon, i64)> = ring
            .iter()
            .rev()
            .filter_map(|s| {
                s.metrics
                    .iter()
                    .find(|(name, _)| *name == metric)
                    .map(|(_, v)| (s.at, *v))
            })
            .take(n)
            .collect();
        out.reverse();
        out
    }

    /// The `sys$relations` scan.  Rollback semantics: every result is a
    /// pure static relation (no timestamps on the rows).
    pub fn catalog_scan(&self, as_of: Option<&AsOfSpec>) -> Vec<SourceRow> {
        let ring = self.catalog.lock();
        let mut rows: Vec<&CatalogRow> = Vec::new();
        match as_of {
            None => {
                if let Some(s) = ring.back() {
                    rows.extend(s.rows.iter());
                }
            }
            Some(AsOfSpec::At(t)) => {
                if let Some(s) = ring.iter().rev().find(|s| s.at <= *t) {
                    rows.extend(s.rows.iter());
                }
            }
            Some(AsOfSpec::Through(t1, t2)) => {
                let window = Period::clamped(*t1, t2.succ());
                let periods = catalog_periods(&ring);
                for (s, p) in ring.iter().zip(periods) {
                    if p.overlaps(window) {
                        for row in &s.rows {
                            if !rows.contains(&row) {
                                rows.push(row);
                            }
                        }
                    }
                }
            }
        }
        rows.into_iter()
            .map(|r| SourceRow {
                tuple: Tuple::new(vec![
                    Value::str(&r.name),
                    Value::str(&r.class),
                    Value::Int(r.tuples),
                    Value::Int(r.bytes),
                    Value::Int(r.checkpoint_k),
                ]),
                validity: None,
                tx: None,
            })
            .collect()
    }
}

/// One registered session's state, as reported by `sys$sessions`,
/// `/sessions`, and the CLI's `\sessions`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRow {
    /// Engine-unique session id (1-based; 0 means "unregistered").
    pub session_id: u64,
    /// The snapshot pin watermark, in chronon ticks.
    pub pin_ticks: i64,
    /// Statements executed by this session so far.
    pub statements: u64,
    /// Nanoseconds since the session last executed a statement (or was
    /// opened).  Frozen at sampling time in sampled rows.
    pub idle_ns: u64,
    /// Trace id of the session's most recent statement (empty before
    /// the first one).
    pub trace_id: String,
}

/// One live network connection, as reported by `sys$connections`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnRow {
    /// Server-unique connection id (1-based).
    pub conn_id: u64,
    /// Peer address as reported by the listener.
    pub peer: String,
    /// The engine session serving this connection.
    pub session_id: u64,
    /// Frames handled on this connection (executes + pings + errors).
    pub requests: u64,
    /// Payload bytes received on this connection.
    pub bytes_in: u64,
    /// Payload bytes sent on this connection.
    pub bytes_out: u64,
}

struct LiveSession {
    pin_ticks: i64,
    statements: u64,
    last_active: std::time::Instant,
    trace_id: String,
}

/// The session samples ring entry: every registered session's state at
/// one transaction-time coordinate.
struct SessionSample {
    at: Chronon,
    rows: Vec<SessionRow>,
}

/// Live registry of engine sessions and network connections, with a
/// bounded sample ring giving `sys$sessions` a rollback (`as of`) view.
///
/// `Arc`-shared between the `Database` (scans, sampling), the `Engine`
/// (session registration), the TQuel service (connection registration),
/// and the HTTP exporter (`/sessions`).  Everything here is
/// diagnostic: the registry never fails an engine operation.
pub struct SessionRegistry {
    next_session: AtomicU64,
    next_conn: AtomicU64,
    sessions: Mutex<BTreeMap<u64, LiveSession>>,
    connections: Mutex<BTreeMap<u64, ConnRow>>,
    samples: Mutex<VecDeque<SessionSample>>,
    capacity: usize,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new(DEFAULT_TELEMETRY_CAPACITY)
    }
}

impl SessionRegistry {
    /// A registry retaining up to `capacity` session samples.
    pub fn new(capacity: usize) -> SessionRegistry {
        SessionRegistry {
            next_session: AtomicU64::new(1),
            next_conn: AtomicU64::new(1),
            sessions: Mutex::new(BTreeMap::new()),
            connections: Mutex::new(BTreeMap::new()),
            samples: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Registers a new session pinned at `pin_ticks`; returns its id.
    pub fn register_session(&self, pin_ticks: i64) -> u64 {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().insert(
            id,
            LiveSession {
                pin_ticks,
                statements: 0,
                last_active: std::time::Instant::now(),
                trace_id: String::new(),
            },
        );
        id
    }

    /// Updates a session's pin watermark (snapshot refresh).
    pub fn session_refreshed(&self, id: u64, pin_ticks: i64) {
        if let Some(s) = self.sessions.lock().get_mut(&id) {
            s.pin_ticks = pin_ticks;
        }
    }

    /// Records one executed statement under `trace_id`.
    pub fn note_statement(&self, id: u64, trace_id: &str) {
        if let Some(s) = self.sessions.lock().get_mut(&id) {
            s.statements += 1;
            s.last_active = std::time::Instant::now();
            s.trace_id = trace_id.to_string();
        }
    }

    /// Removes a closed session from the live table (samples keep it).
    pub fn deregister_session(&self, id: u64) {
        self.sessions.lock().remove(&id);
    }

    /// Registers a network connection serving `session_id`; returns its
    /// connection id.
    pub fn register_connection(&self, peer: String, session_id: u64) -> u64 {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.connections.lock().insert(
            id,
            ConnRow {
                conn_id: id,
                peer,
                session_id,
                requests: 0,
                bytes_in: 0,
                bytes_out: 0,
            },
        );
        id
    }

    /// Adds one handled frame's traffic to a connection's totals.
    pub fn record_conn_io(&self, id: u64, bytes_in: u64, bytes_out: u64) {
        if let Some(c) = self.connections.lock().get_mut(&id) {
            c.requests += 1;
            c.bytes_in += bytes_in;
            c.bytes_out += bytes_out;
        }
    }

    /// Removes a closed connection from the live table.
    pub fn deregister_connection(&self, id: u64) {
        self.connections.lock().remove(&id);
    }

    /// Live session rows, id order.
    pub fn sessions(&self) -> Vec<SessionRow> {
        self.sessions
            .lock()
            .iter()
            .map(|(&id, s)| SessionRow {
                session_id: id,
                pin_ticks: s.pin_ticks,
                statements: s.statements,
                idle_ns: s.last_active.elapsed().as_nanos() as u64,
                trace_id: s.trace_id.clone(),
            })
            .collect()
    }

    /// Live connection rows, id order.
    pub fn connections(&self) -> Vec<ConnRow> {
        self.connections.lock().values().cloned().collect()
    }

    /// Records every live session's state at transaction time `at`
    /// (same newest-wins clamping as the telemetry rings), giving the
    /// `as of` view its coordinates.
    pub fn record_sample(&self, at: Chronon) {
        let rows = self.sessions();
        let mut ring = self.samples.lock();
        if let Some(last) = ring.back_mut() {
            if at <= last.at {
                let at = last.at;
                *last = SessionSample { at, rows };
                return;
            }
        }
        ring.push_back(SessionSample { at, rows });
        if ring.len() > self.capacity {
            ring.pop_front();
        }
    }

    /// The `sys$sessions` scan.  Current state reads the live table;
    /// `as of` reads the sample ring with the same currency-period
    /// semantics as `sys$stats` (`[at_i, at_{i+1})`, newest to
    /// forever).  Rollback semantics: rows come back pure static.
    pub fn sessions_scan(&self, as_of: Option<&AsOfSpec>) -> Vec<SourceRow> {
        let rows: Vec<SessionRow> = match as_of {
            None => self.sessions(),
            Some(AsOfSpec::At(t)) => {
                let ring = self.samples.lock();
                ring.iter()
                    .rev()
                    .find(|s| s.at <= *t)
                    .map(|s| s.rows.clone())
                    .unwrap_or_default()
            }
            Some(AsOfSpec::Through(t1, t2)) => {
                let window = Period::clamped(*t1, t2.succ());
                let ring = self.samples.lock();
                let periods = periods_of(ring.iter().map(|s| s.at));
                let mut out: Vec<SessionRow> = Vec::new();
                for (s, p) in ring.iter().zip(periods) {
                    if p.overlaps(window) {
                        for row in &s.rows {
                            if !out.contains(row) {
                                out.push(row.clone());
                            }
                        }
                    }
                }
                out
            }
        };
        rows.iter()
            .map(|r| SourceRow {
                tuple: Tuple::new(vec![
                    Value::Int(r.session_id.min(i64::MAX as u64) as i64),
                    Value::Int(r.pin_ticks),
                    Value::Int(r.statements.min(i64::MAX as u64) as i64),
                    Value::Int(r.idle_ns.min(i64::MAX as u64) as i64),
                    Value::str(&r.trace_id),
                ]),
                validity: None,
                tx: None,
            })
            .collect()
    }

    /// The `sys$connections` scan (live only; connections have no
    /// sampled history).
    pub fn connections_scan(&self) -> Vec<SourceRow> {
        self.connections()
            .iter()
            .map(|c| SourceRow {
                tuple: Tuple::new(vec![
                    Value::Int(c.conn_id.min(i64::MAX as u64) as i64),
                    Value::str(&c.peer),
                    Value::Int(c.session_id.min(i64::MAX as u64) as i64),
                    Value::Int(c.requests.min(i64::MAX as u64) as i64),
                    Value::Int(c.bytes_in.min(i64::MAX as u64) as i64),
                    Value::Int(c.bytes_out.min(i64::MAX as u64) as i64),
                ]),
                validity: None,
                tx: None,
            })
            .collect()
    }

    /// Hand-rolled JSON body for the `/sessions` HTTP endpoint.
    pub fn to_json(&self) -> String {
        use chronos_obs::events::escape_json;
        let mut out = String::from("{\"sessions\": [");
        for (i, s) in self.sessions().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"session\": {}, \"pin\": {}, \"statements\": {}, \
                 \"idle_ns\": {}, \"trace_id\": \"{}\"}}",
                s.session_id,
                s.pin_ticks,
                s.statements,
                s.idle_ns,
                escape_json(&s.trace_id)
            ));
        }
        out.push_str("], \"connections\": [");
        for (i, c) in self.connections().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"conn\": {}, \"peer\": \"{}\", \"session\": {}, \
                 \"requests\": {}, \"bytes_in\": {}, \"bytes_out\": {}}}",
                c.conn_id,
                escape_json(&c.peer),
                c.session_id,
                c.requests,
                c.bytes_in,
                c.bytes_out
            ));
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Debug for SessionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRegistry")
            .field("sessions", &self.sessions.lock().len())
            .field("connections", &self.connections.lock().len())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for TelemetryStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryStore")
            .field("capacity", &self.capacity)
            .field("samples_taken", &self.samples_taken.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Currency period of each sample: `[at_i, at_{i+1})`, the newest
/// extending to `forever`.
fn sample_periods(ring: &VecDeque<StatSample>) -> Vec<Period> {
    periods_of(ring.iter().map(|s| s.at))
}

fn catalog_periods(ring: &VecDeque<CatalogSample>) -> Vec<Period> {
    periods_of(ring.iter().map(|s| s.at))
}

fn periods_of(ats: impl Iterator<Item = Chronon>) -> Vec<Period> {
    let ats: Vec<Chronon> = ats.collect();
    ats.iter()
        .enumerate()
        .map(|(i, &at)| match ats.get(i + 1) {
            Some(&next) => Period::clamped(at, next),
            None => Period::from_start(at),
        })
        .collect()
}

/// Flattens an [`EngineStats`] into the `sys$stats` metric set: every
/// registry counter, the query-cache section, the derived session
/// gauge, and the histograms' p50/p99.  Values saturate into `i64`
/// (the engine will not live long enough to overflow them honestly).
pub fn flatten_stats(stats: &EngineStats) -> Vec<(&'static str, i64)> {
    fn clamp(v: u64) -> i64 {
        v.min(i64::MAX as u64) as i64
    }
    let mut out: Vec<(&'static str, i64)> = stats
        .metrics
        .counters()
        .iter()
        .map(|(name, v)| (*name, clamp(*v)))
        .collect();
    out.push(("query_cache_hits", clamp(stats.cache.hits)));
    out.push(("query_cache_misses", clamp(stats.cache.misses)));
    out.push((
        "query_cache_invalidations",
        clamp(stats.cache.invalidations),
    ));
    out.push(("query_cache_evictions", clamp(stats.cache.evictions)));
    out.push(("query_cache_epoch_bumps", clamp(stats.cache.epoch_bumps)));
    out.push(("query_cache_frozen_hits", clamp(stats.cache.frozen_hits)));
    out.push(("query_cache_entries", clamp(stats.cache_entries as u64)));
    out.push((
        "active_sessions",
        clamp(
            stats
                .metrics
                .sessions_opened
                .saturating_sub(stats.metrics.sessions_closed),
        ),
    ));
    for (name, v) in stats.metrics.gauges() {
        out.push((name, clamp(v)));
    }
    for (name_p50, name_p99, h) in [
        (
            "commit_latency_p50_ns",
            "commit_latency_p99_ns",
            &stats.metrics.commit_latency,
        ),
        (
            "query_latency_p50_ns",
            "query_latency_p99_ns",
            &stats.metrics.query_latency,
        ),
        (
            "group_batch_size_p50",
            "group_batch_size_p99",
            &stats.metrics.group_batch_size,
        ),
        (
            "commit_queue_wait_p50_ns",
            "commit_queue_wait_p99_ns",
            &stats.metrics.commit_queue_wait,
        ),
        (
            "commit_lock_wait_p50_ns",
            "commit_lock_wait_p99_ns",
            &stats.metrics.commit_lock_wait,
        ),
        (
            "commit_apply_p50_ns",
            "commit_apply_p99_ns",
            &stats.metrics.commit_apply,
        ),
        (
            "commit_fsync_p50_ns",
            "commit_fsync_p99_ns",
            &stats.metrics.commit_fsync,
        ),
        (
            "commit_ack_p50_ns",
            "commit_ack_p99_ns",
            &stats.metrics.commit_ack,
        ),
        (
            "read_lock_wait_p50_ns",
            "read_lock_wait_p99_ns",
            &stats.metrics.read_lock_wait,
        ),
    ] {
        out.push((name_p50, clamp(h.percentile(50.0).unwrap_or(0))));
        out.push((name_p99, clamp(h.percentile(99.0).unwrap_or(0))));
    }
    out
}

/// Shared snapshot of the physical-storage observability documents the
/// exporter serves on `/wal` and `/storage`.  The database refreshes
/// both strings at every telemetry sample and checkpoint; the exporter
/// thread only ever reads, so the endpoints stay cheap and never borrow
/// the engine ("as of last sample" semantics, like `/stats`).
#[derive(Debug)]
pub struct PhysicalStore {
    wal_json: Mutex<String>,
    storage_json: Mutex<String>,
}

impl Default for PhysicalStore {
    fn default() -> PhysicalStore {
        PhysicalStore {
            wal_json: Mutex::new("{\"wal\": []}".to_string()),
            storage_json: Mutex::new("{\"storage\": []}".to_string()),
        }
    }
}

impl PhysicalStore {
    /// Replaces the `/wal` document.
    pub fn set_wal_json(&self, doc: String) {
        *self.wal_json.lock() = doc;
    }

    /// The current `/wal` document.
    pub fn wal_json(&self) -> String {
        self.wal_json.lock().clone()
    }

    /// Replaces the `/storage` document.
    pub fn set_storage_json(&self, doc: String) {
        *self.storage_json.lock() = doc;
    }

    /// The current `/storage` document.
    pub fn storage_json(&self) -> String {
        self.storage_json.lock().clone()
    }
}

/// Catalog/provider metadata for the system relations; `None` for
/// unknown `sys$` names (they surface as ordinary unknown relations).
pub fn system_info(name: &str) -> Option<RelationInfo> {
    let (schema, class, signature) = match name {
        "sys$stats" => (
            Schema::new(vec![
                Attribute::new("metric", AttrType::Str),
                Attribute::new("value", AttrType::Int),
            ]),
            RelationClass::Temporal,
            TemporalSignature::Event,
        ),
        "sys$relations" => (
            Schema::new(vec![
                Attribute::new("name", AttrType::Str),
                Attribute::new("class", AttrType::Str),
                Attribute::new("tuples", AttrType::Int),
                Attribute::new("bytes", AttrType::Int),
                Attribute::new("checkpoint_k", AttrType::Int),
            ]),
            RelationClass::StaticRollback,
            TemporalSignature::Interval,
        ),
        "sys$slow" => (
            Schema::new(vec![
                Attribute::new("seq", AttrType::Int),
                Attribute::new("duration_ns", AttrType::Int),
                Attribute::new("statement", AttrType::Str),
            ]),
            RelationClass::Historical,
            TemporalSignature::Event,
        ),
        // "kind" not "event": `event` is a TQuel keyword (`as event`),
        // so it cannot name an attribute.
        "sys$events" => (
            Schema::new(vec![
                Attribute::new("seq", AttrType::Int),
                Attribute::new("ts_ns", AttrType::Int),
                Attribute::new("kind", AttrType::Str),
            ]),
            RelationClass::Static,
            TemporalSignature::Interval,
        ),
        "sys$sessions" => (
            Schema::new(vec![
                Attribute::new("session", AttrType::Int),
                Attribute::new("pin", AttrType::Int),
                Attribute::new("statements", AttrType::Int),
                Attribute::new("idle_ns", AttrType::Int),
                Attribute::new("trace_id", AttrType::Str),
            ]),
            RelationClass::StaticRollback,
            TemporalSignature::Interval,
        ),
        "sys$connections" => (
            Schema::new(vec![
                Attribute::new("conn", AttrType::Int),
                Attribute::new("peer", AttrType::Str),
                Attribute::new("session", AttrType::Int),
                Attribute::new("requests", AttrType::Int),
                Attribute::new("bytes_in", AttrType::Int),
                Attribute::new("bytes_out", AttrType::Int),
            ]),
            RelationClass::Static,
            TemporalSignature::Interval,
        ),
        // "kind" for the same reason as sys$events: `event` is reserved.
        "sys$queries" => (
            Schema::new(vec![
                Attribute::new("fingerprint", AttrType::Str),
                Attribute::new("statement", AttrType::Str),
                Attribute::new("kind", AttrType::Str),
                Attribute::new("calls", AttrType::Int),
                Attribute::new("p50_ns", AttrType::Int),
                Attribute::new("p99_ns", AttrType::Int),
                Attribute::new("rows_out", AttrType::Int),
                Attribute::new("cache_hits", AttrType::Int),
                Attribute::new("cache_misses", AttrType::Int),
            ]),
            RelationClass::Static,
            TemporalSignature::Interval,
        ),
        "sys$tablestats" => (
            Schema::new(vec![
                Attribute::new("relation", AttrType::Str),
                Attribute::new("stat", AttrType::Str),
                Attribute::new("value", AttrType::Int),
            ]),
            RelationClass::Temporal,
            TemporalSignature::Event,
        ),
        // Physical WAL introspection: one row per stat, with a free-form
        // detail column (tail state, truncation info).
        "sys$wal" => (
            Schema::new(vec![
                Attribute::new("stat", AttrType::Str),
                Attribute::new("value", AttrType::Int),
                Attribute::new("detail", AttrType::Str),
            ]),
            RelationClass::Static,
            TemporalSignature::Interval,
        ),
        // Physical heap/page stats: one row per relation (plus rows for
        // the on-disk files: checkpoint, catalog, wal, journal).
        "sys$pages" => (
            Schema::new(vec![
                Attribute::new("relation", AttrType::Str),
                Attribute::new("class", AttrType::Str),
                Attribute::new("pages", AttrType::Int),
                Attribute::new("bytes_disk", AttrType::Int),
                Attribute::new("records", AttrType::Int),
                Attribute::new("occupancy_x1000", AttrType::Int),
                Attribute::new("versions", AttrType::Int),
                Attribute::new("bytes_per_version", AttrType::Int),
                Attribute::new("dup_factor_x1000", AttrType::Int),
            ]),
            RelationClass::Static,
            TemporalSignature::Interval,
        ),
        _ => return None,
    };
    Some(RelationInfo {
        schema: schema.expect("system schemas are well-formed"),
        class,
        signature,
    })
}

/// Names of the system relations, in name order (the CLI's `\d` lists
/// them after user relations).
pub fn system_relation_names() -> [&'static str; 10] {
    [
        "sys$connections",
        "sys$events",
        "sys$pages",
        "sys$queries",
        "sys$relations",
        "sys$sessions",
        "sys$slow",
        "sys$stats",
        "sys$tablestats",
        "sys$wal",
    ]
}

/// The background stats sampler: a thread that snapshots
/// `engine_stats()` into the [`TelemetryStore`] on a fixed interval.
/// Stopping (or dropping) joins the thread; the lifecycle is journaled
/// (`sampler_start` / `sampler_stop`) and mirrored into
/// [`Health::mark_sampler`] so `/readyz` shows it.
pub(crate) struct StatsSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatsSampler {
    /// Spawns the sampler thread.  `clock` supplies the transaction-time
    /// coordinate of each sample.
    pub(crate) fn start(
        interval: Duration,
        recorder: Arc<Recorder>,
        health: Arc<Health>,
        cache: Arc<Mutex<QueryCache>>,
        telemetry: Arc<TelemetryStore>,
        registry: Arc<SessionRegistry>,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<StatsSampler> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        recorder.emit_event(
            "sampler_start",
            &[("interval_ms", (interval.as_millis() as u64).into())],
        );
        health.mark_sampler(true);
        telemetry.set_sampler_running(true);
        let handle = std::thread::Builder::new()
            .name("chronos-sampler".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    let stats = crate::observe::engine_stats_from(&recorder, &cache, &telemetry);
                    let at = clock.now();
                    telemetry.record_stats(at, &stats);
                    registry.record_sample(at);
                    // Sleep in short slices so stop() stays responsive
                    // even with multi-second intervals.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !stop_flag.load(Ordering::Acquire) {
                        let slice = remaining.min(Duration::from_millis(25));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
                telemetry.set_sampler_running(false);
                health.mark_sampler(false);
                recorder.emit_event("sampler_stop", &[]);
            })?;
        Ok(StatsSampler {
            stop,
            handle: Some(handle),
        })
    }

    /// Signals the thread and joins it.
    pub(crate) fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatsSampler {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

impl std::fmt::Debug for StatsSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsSampler").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at: i64, commits: i64) -> EngineStats {
        let mut stats = EngineStats {
            metrics: Default::default(),
            cache: Default::default(),
            cache_entries: 0,
            journal: None,
            telemetry: TelemetryStore::new(4).stats(),
        };
        stats.metrics.commits = commits as u64;
        let _ = at;
        stats
    }

    #[test]
    fn stats_scan_answers_as_of_with_the_then_current_sample() {
        let store = TelemetryStore::new(8);
        store.record_stats(Chronon::new(10), &sample(10, 1));
        store.record_stats(Chronon::new(20), &sample(20, 5));
        store.record_stats(Chronon::new(30), &sample(30, 9));

        let commits_at = |as_of: Option<&AsOfSpec>| -> Vec<i64> {
            store
                .stats_scan(as_of)
                .iter()
                .filter(|r| r.tuple.get(0).as_str() == Some("commits"))
                .map(|r| r.tuple.get(1).as_int().unwrap())
                .collect()
        };
        // Current: newest sample only.
        assert_eq!(commits_at(None), vec![9]);
        // As of t: the sample current at t.
        assert_eq!(commits_at(Some(&AsOfSpec::At(Chronon::new(10)))), vec![1]);
        assert_eq!(commits_at(Some(&AsOfSpec::At(Chronon::new(25)))), vec![5]);
        assert_eq!(commits_at(Some(&AsOfSpec::At(Chronon::new(99)))), vec![9]);
        // Before the first sample: nothing was current.
        assert_eq!(
            commits_at(Some(&AsOfSpec::At(Chronon::new(5)))),
            Vec::<i64>::new()
        );
        // Through a window: every sample whose currency overlaps it.
        assert_eq!(
            commits_at(Some(&AsOfSpec::Through(Chronon::new(15), Chronon::new(25)))),
            vec![1, 5]
        );
    }

    #[test]
    fn newest_wins_at_equal_chronons_and_capacity_bounds_the_ring() {
        let store = TelemetryStore::new(3);
        for i in 0..10 {
            store.record_stats(Chronon::new(i), &sample(i, i));
        }
        let st = store.stats();
        assert_eq!(st.stats_retained, 3);
        assert_eq!(st.samples_taken, 10);
        // Same chronon: the later sample replaces the earlier.
        store.record_stats(Chronon::new(9), &sample(9, 42));
        let rows = store.stats_scan(Some(&AsOfSpec::At(Chronon::new(9))));
        let commits: Vec<i64> = rows
            .iter()
            .filter(|r| r.tuple.get(0).as_str() == Some("commits"))
            .map(|r| r.tuple.get(1).as_int().unwrap())
            .collect();
        assert_eq!(commits, vec![42]);
    }

    #[test]
    fn spill_writes_evicted_samples_as_jsonl() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "chronos-telemetry-spill-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let store = TelemetryStore::new(2);
        store.set_spill_path(path.clone());
        for i in 0..5 {
            store.record_stats(Chronon::new(i), &sample(i, i));
        }
        assert_eq!(store.stats().samples_spilled, 3);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(chronos_obs::validate_jsonl(&text).unwrap(), 3);
        assert!(text.contains("\"at\": 0"));
        assert!(text.contains("\"commits\": 2"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn catalog_scan_is_a_rollback_view() {
        let store = TelemetryStore::new(8);
        let row = |n: &str, tuples: i64| CatalogRow {
            name: n.to_string(),
            class: "temporal".to_string(),
            tuples,
            bytes: tuples * 64,
            checkpoint_k: 8,
        };
        store.record_catalog(Chronon::new(10), vec![row("faculty", 1)]);
        store.record_catalog(Chronon::new(20), vec![row("faculty", 2), row("dept", 1)]);
        // Rollback rows are pure static: no timestamps.
        let current = store.catalog_scan(None);
        assert_eq!(current.len(), 2);
        assert!(current
            .iter()
            .all(|r| r.validity.is_none() && r.tx.is_none()));
        let then = store.catalog_scan(Some(&AsOfSpec::At(Chronon::new(15))));
        assert_eq!(then.len(), 1);
        assert_eq!(then[0].tuple.get(0).as_str(), Some("faculty"));
        assert_eq!(then[0].tuple.get(2).as_int(), Some(1));
        // A window spanning both samples unions (and dedups) the rows.
        let window =
            store.catalog_scan(Some(&AsOfSpec::Through(Chronon::new(10), Chronon::new(25))));
        assert_eq!(window.len(), 3);
    }

    #[test]
    fn history_tails_one_metric_oldest_first() {
        let store = TelemetryStore::new(8);
        for i in 1..=5 {
            store.record_stats(Chronon::new(i), &sample(i, i * 10));
        }
        let h = store.history("commits", 3);
        assert_eq!(
            h,
            vec![
                (Chronon::new(3), 30),
                (Chronon::new(4), 40),
                (Chronon::new(5), 50)
            ]
        );
        assert!(store.history("no_such_metric", 3).is_empty());
    }

    #[test]
    fn session_registry_tracks_live_state_and_answers_as_of() {
        let reg = SessionRegistry::new(8);
        let a = reg.register_session(5);
        let b = reg.register_session(5);
        assert_ne!(a, b);
        reg.note_statement(a, "t-cli");
        reg.note_statement(a, "t-cli2");
        reg.session_refreshed(b, 9);
        reg.record_sample(Chronon::new(10));
        reg.deregister_session(b);
        reg.record_sample(Chronon::new(20));

        // Live scan: only session `a` remains, with its latest trace.
        let live = reg.sessions_scan(None);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].tuple.get(0).as_int(), Some(a as i64));
        assert_eq!(live[0].tuple.get(2).as_int(), Some(2));
        assert_eq!(live[0].tuple.get(4).as_str(), Some("t-cli2"));
        // As of the first sample: both sessions, b refreshed to pin 9.
        let then = reg.sessions_scan(Some(&AsOfSpec::At(Chronon::new(15))));
        assert_eq!(then.len(), 2);
        assert!(then.iter().any(
            |r| r.tuple.get(0).as_int() == Some(b as i64) && r.tuple.get(1).as_int() == Some(9)
        ));
        // Before any sample was taken: nothing was current.
        assert!(reg
            .sessions_scan(Some(&AsOfSpec::At(Chronon::new(1))))
            .is_empty());
        // Rollback rows are pure static.
        assert!(then.iter().all(|r| r.validity.is_none() && r.tx.is_none()));
    }

    #[test]
    fn session_registry_connections_and_json() {
        let reg = SessionRegistry::default();
        let s = reg.register_session(0);
        let c = reg.register_connection("127.0.0.1:9999".to_string(), s);
        reg.record_conn_io(c, 64, 128);
        reg.record_conn_io(c, 10, 20);
        let conns = reg.connections_scan();
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].tuple.get(3).as_int(), Some(2));
        assert_eq!(conns[0].tuple.get(4).as_int(), Some(74));
        assert_eq!(conns[0].tuple.get(5).as_int(), Some(148));
        chronos_obs::validate_json(&reg.to_json()).unwrap();
        reg.deregister_connection(c);
        assert!(reg.connections_scan().is_empty());
    }

    #[test]
    fn tablestats_carry_forward_and_answer_as_of() {
        let store = TelemetryStore::new(8);
        let stats = |v: i64| vec![("rows".to_string(), v), ("versions".to_string(), v * 2)];
        store.record_tablestats(Chronon::new(10), "faculty", stats(5));
        store.record_tablestats(Chronon::new(20), "dept", stats(3));
        store.record_tablestats(Chronon::new(30), "faculty", stats(9));

        let value_of = |as_of: Option<&AsOfSpec>, rel: &str, stat: &str| -> Option<i64> {
            store
                .tablestats_scan(as_of)
                .iter()
                .find(|r| {
                    r.tuple.get(0).as_str() == Some(rel) && r.tuple.get(1).as_str() == Some(stat)
                })
                .map(|r| r.tuple.get(2).as_int().unwrap())
        };
        // Current: the newest sample holds both relations (carry-forward).
        assert_eq!(value_of(None, "faculty", "rows"), Some(9));
        assert_eq!(value_of(None, "dept", "rows"), Some(3));
        // As of t: the relation's shape at that time.
        assert_eq!(
            value_of(Some(&AsOfSpec::At(Chronon::new(25))), "faculty", "rows"),
            Some(5)
        );
        assert_eq!(
            value_of(Some(&AsOfSpec::At(Chronon::new(15))), "dept", "rows"),
            None
        );
        // Valid time is the collection event, carried forward unchanged.
        let current = store.tablestats_scan(None);
        let dept = current
            .iter()
            .find(|r| r.tuple.get(0).as_str() == Some("dept"))
            .unwrap();
        assert_eq!(dept.validity, Some(Validity::Event(Chronon::new(20))));
        // Planner lookup sees the newest value; destroy forgets.
        assert_eq!(store.latest_tablestat("faculty", "versions"), Some(18));
        assert_eq!(store.latest_tablestat("faculty", "nope"), None);
        store.forget_tablestats("faculty");
        assert_eq!(store.latest_tablestat("faculty", "rows"), None);
        assert_eq!(store.latest_tablestat("dept", "rows"), Some(3));
    }

    #[test]
    fn system_info_covers_the_namespace() {
        assert!(is_system("sys$stats"));
        assert!(!is_system("stats"));
        for name in system_relation_names() {
            let info = system_info(name).unwrap();
            assert!(!info.schema.attributes().is_empty());
        }
        assert!(system_info("sys$nope").is_none());
        let stats = system_info("sys$stats").unwrap();
        assert_eq!(stats.class, RelationClass::Temporal);
        assert_eq!(stats.signature, TemporalSignature::Event);
        assert_eq!(
            system_info("sys$relations").unwrap().class,
            RelationClass::StaticRollback
        );
    }
}
