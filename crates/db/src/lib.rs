//! # chronos-db
//!
//! The ChronosDB facade: a catalog of named relations spanning all four
//! of the paper's database classes, TQuel execution (queries *and*
//! modifications), transaction-time allocation, and durability via a
//! shared write-ahead log.
//!
//! ```
//! use chronos_db::Database;
//! use chronos_core::clock::ManualClock;
//! use chronos_core::calendar::date;
//! use std::sync::Arc;
//!
//! let clock = Arc::new(ManualClock::new(date("08/25/77").unwrap()));
//! let mut db = Database::in_memory(clock.clone());
//! let mut session = db.session();
//! session.run(r#"
//!     create faculty (name = str, rank = str) as temporal
//!     append to faculty (name = "Merrie", rank = "associate")
//!         valid from "09/01/77" to forever
//!     range of f is faculty
//!     retrieve (f.rank) where f.name = "Merrie"
//! "#).unwrap();
//! ```

pub mod cache;
pub mod catalog;
pub mod checkpoint;
pub mod database;
pub mod doctor;
pub mod engine;
pub mod error;
pub mod introspect;
pub mod net;
pub mod observe;
pub mod relation;
pub mod session;

pub use database::{Database, EngineStats};
pub use doctor::{inspect, Inspection};
pub use engine::{Engine, EngineBackend, EngineSession};
pub use error::{DbError, DbResult};
pub use introspect::{
    is_system, system_relation_names, ConnRow, SessionRegistry, SessionRow, TelemetryStats,
    TelemetryStore, SYS_PREFIX,
};
pub use net::{QueryClient, QueryServer, Response};
pub use observe::ObsBootstrap;
pub use session::{ExecOutcome, Session, SessionBackend};
