//! The database: catalog + relations + transaction clock + durability.
//!
//! A [`Database`] owns the catalog and one store per defined relation.
//! All mutation funnels through [`Database::commit`], which allocates a
//! strictly monotonic transaction time from the
//! [`TxnManager`], validates the operations, writes them ahead to the
//! shared log (durable databases), then applies them.  Reopening a
//! durable database loads the catalog image and replays the log — the
//! log *is* the temporal database, which is precisely the paper's
//! append-only transaction-time semantics.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use chronos_core::chronon::Chronon;
use chronos_core::clock::Clock;
use chronos_core::relation::HistoricalOp;
use chronos_core::schema::{RelationClass, Schema, TemporalSignature};
use chronos_core::taxonomy::DatabaseClass;
use chronos_obs::export::{Health, ObsServer};
use chronos_obs::{EventJournal, JournalStats, MetricsSnapshot, Recorder};
use chronos_storage::txn::TxnManager;
use chronos_storage::wal::{Wal, WalRecord};
use chronos_tquel::provider::{AsOfSpec, RelationInfo, RelationProvider, SourceRow};
use chronos_tquel::TquelError;

use crate::cache::{CacheStats, QueryCache, DEFAULT_CACHE_CAPACITY};
use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::introspect::{
    is_system, system_info, CatalogRow, PhysicalStore, SessionRegistry, StatsSampler,
    TelemetryStats, TelemetryStore,
};
use crate::observe::{DbObsSource, ObsBootstrap};
use crate::relation::Relation;
use crate::session::Session;

/// Closed versions a temporal relation accumulates before a checkpoint
/// freezes them into an immutable segment.
pub const DEFAULT_FREEZE_THRESHOLD: usize = 128;

/// Deletes stale segment files (best effort: segments are a cache).
fn purge_segments(seg_dir: &Path) {
    let Ok(entries) = std::fs::read_dir(seg_dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// A ChronosDB database instance.
pub struct Database {
    catalog: Catalog,
    relations: HashMap<String, Relation>,
    txn: TxnManager,
    dir: Option<PathBuf>,
    /// The write-ahead log, shared behind a mutex so the group-commit
    /// writer can fsync a batch *after* releasing the database's write
    /// lock (readers proceed during the fsync; see `crate::engine`).
    wal: Option<Arc<Mutex<Wal>>>,
    /// Memoized relation scans ([`RelationProvider::scan`] takes
    /// `&self`, hence the mutex).  `Arc`-shared so the HTTP exporter
    /// can read cache stats without borrowing the database.
    cache: Arc<Mutex<QueryCache>>,
    /// Engine instruments and trace spans, shared with every relation
    /// store, the shared WAL, and the TQuel executor.
    recorder: Arc<Recorder>,
    /// Readiness flags served by `/healthz` + `/readyz`.
    health: Arc<Health>,
    /// The clock behind the transaction manager, kept for the sampler
    /// (the manager owns its own handle privately).
    clock: Arc<dyn Clock>,
    /// Sample rings backing the `sys$stats` / `sys$relations` system
    /// relations; `Arc`-shared with the sampler and the HTTP exporter.
    telemetry: Arc<TelemetryStore>,
    /// Live session/connection registry backing `sys$sessions` and
    /// `sys$connections`; `Arc`-shared with the engine, the TQuel
    /// service, and the HTTP exporter (`/sessions`).
    registry: Arc<SessionRegistry>,
    /// Physical-storage snapshot documents served on `/wal` and
    /// `/storage`; `Arc`-shared with the HTTP exporter and refreshed by
    /// [`Database::refresh_physical_snapshots`].
    physical: Arc<PhysicalStore>,
    /// The background stats sampler, when started.
    sampler: Option<StatsSampler>,
    /// Closed-version count at which a checkpoint freezes a temporal
    /// relation's history into an immutable segment.
    freeze_threshold: usize,
}

/// What [`Database::freeze_relation`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreezeOutcome {
    /// Relation the freeze targeted.
    pub relation: String,
    /// Closed versions moved off the heap (0 ⇒ nothing was freezable).
    pub versions: u64,
    /// Distinct version chains (first-attribute keys) in the segment.
    pub chains: u64,
    /// On-disk size of the segment file written, bytes.
    pub file_bytes: u64,
    /// Path of the segment, relative to the database directory.
    pub path: Option<String>,
}

impl Database {
    /// Creates a volatile in-memory database.
    pub fn in_memory(clock: Arc<dyn Clock>) -> Database {
        let db = Database {
            catalog: Catalog::new(),
            relations: HashMap::new(),
            txn: TxnManager::new(Arc::clone(&clock)),
            dir: None,
            wal: None,
            cache: Arc::new(Mutex::new(QueryCache::new(DEFAULT_CACHE_CAPACITY))),
            recorder: Arc::new(Recorder::new()),
            // Nothing to recover: ready from the first instant.
            health: Arc::new(Health::ready_now()),
            clock,
            telemetry: Arc::new(TelemetryStore::default()),
            registry: Arc::new(SessionRegistry::default()),
            physical: Arc::new(PhysicalStore::default()),
            sampler: None,
            freeze_threshold: DEFAULT_FREEZE_THRESHOLD,
        };
        db.record_catalog_sample(db.txn.peek_now());
        db.refresh_physical_snapshots();
        db
    }

    /// Opens (creating if needed) a durable database in `dir`: loads the
    /// catalog image, replays the write-ahead log (truncating a torn
    /// tail), and resumes the transaction clock after the last replayed
    /// commit.
    pub fn open(dir: &Path, clock: Arc<dyn Clock>) -> DbResult<Database> {
        Self::open_with_obs(dir, clock, &ObsBootstrap::new())
    }

    /// [`open`](Self::open) against pre-created observability handles,
    /// so an exporter started from the same [`ObsBootstrap`] observes
    /// recovery as it happens: `/healthz` answers 503 until the
    /// catalog, checkpoint image, and WAL replay have all completed.
    pub fn open_with_obs(
        dir: &Path,
        clock: Arc<dyn Clock>,
        obs: &ObsBootstrap,
    ) -> DbResult<Database> {
        std::fs::create_dir_all(dir).map_err(chronos_storage::StorageError::from)?;
        // Frozen segments are a rebuildable physical cache: every row
        // they hold is also in the checkpoint image (capture merges
        // segments back in) or replayable from the log.  Recovery
        // therefore rebuilds the full heap and discards stale segment
        // files wholesale; a later checkpoint re-freezes.
        purge_segments(&dir.join("segments"));
        let recorder = Arc::clone(&obs.recorder);
        // The lifecycle journal lives beside the WAL.  Journaling is
        // diagnostic: a journal that cannot be opened is skipped, never
        // a reason to refuse recovery.
        if let Ok(journal) = EventJournal::open(&dir.join("events.jsonl")) {
            recorder.set_journal(Arc::new(journal));
        }
        let catalog = Catalog::load(&dir.join("catalog"))?;
        obs.health.mark_catalog_loaded();
        recorder.emit_event(
            "recovery_start",
            &[("relations", catalog.iter().count().into())],
        );
        // Start from the checkpoint image when one exists, otherwise
        // from empty stores; either way the log suffix replays on top.
        let checkpoint = crate::checkpoint::load(&dir.join("checkpoint"))?;
        // A crash between checkpoint rename and WAL reset leaves the
        // full log beside a checkpoint that already contains its
        // effects; the floor tells replay which records to skip.
        let wal_floor = checkpoint.as_ref().and_then(|c| c.wal_floor);
        let mut images = checkpoint.map(|c| c.images).unwrap_or_default();
        obs.health.mark_checkpoint_loaded();
        let mut relations = HashMap::new();
        let mut by_id: HashMap<u32, String> = HashMap::new();
        let mut last_commit: Option<chronos_core::chronon::Chronon> = None;
        let mut observe = |t: Option<chronos_core::chronon::Chronon>| {
            if let Some(t) = t {
                last_commit = Some(match last_commit {
                    Some(prev) => prev.max_of(t),
                    None => t,
                });
            }
        };
        for (name, entry) in catalog.iter() {
            let rel = match images.remove(&entry.rel_id) {
                Some(image) => {
                    if let crate::checkpoint::RelationImage::Rollback { last_commit, .. }
                    | crate::checkpoint::RelationImage::Temporal { last_commit, .. } = &image
                    {
                        observe(*last_commit);
                    }
                    crate::checkpoint::restore(entry, image)?
                }
                None => Relation::new(entry.schema.clone(), entry.class, entry.signature),
            };
            relations.insert(name.clone(), rel);
            by_id.insert(entry.rel_id, name.clone());
        }
        let wal_path = dir.join("wal");
        let recovered = Wal::truncate_torn_tail(&wal_path)?;
        if recovered.torn_bytes > 0 {
            // Graceful degradation, journaled: the torn tail (a crash
            // mid-append) was cut at the last valid record.
            recorder.emit_event(
                "wal_truncated",
                &[
                    ("truncated_at", recovered.valid_len.into()),
                    ("torn_bytes", recovered.torn_bytes.into()),
                ],
            );
        }
        observe(wal_floor);
        let mut frames_replayed = 0usize;
        let mut frames_skipped = 0usize;
        for rec in &recovered.records {
            if wal_floor.is_some_and(|floor| rec.tx_time <= floor) {
                // Already absorbed by the checkpoint image (crash
                // between checkpoint rename and WAL reset).
                frames_skipped += 1;
                continue;
            }
            let Some(name) = by_id.get(&rec.rel_id) else {
                continue; // relation since destroyed
            };
            let rel = relations.get_mut(name).expect("catalog and stores in sync");
            rel.apply(rec.tx_time, &rec.ops).map_err(|e| {
                DbError::Storage(chronos_storage::StorageError::Corrupt(format!(
                    "log replay failed for {name:?} at {}: {e}",
                    rec.tx_time
                )))
            })?;
            frames_replayed += 1;
            observe(Some(rec.tx_time));
        }
        obs.health.mark_wal_recovered();
        recorder.emit_event(
            "recovery",
            &[
                ("frames_replayed", frames_replayed.into()),
                ("frames_skipped", frames_skipped.into()),
                ("truncated_at", recovered.valid_len.into()),
                ("torn_bytes", recovered.torn_bytes.into()),
            ],
        );
        for rel in relations.values_mut() {
            rel.set_recorder(Arc::clone(&recorder));
        }
        let mut wal = Wal::open(&wal_path)?;
        wal.set_recorder(Arc::clone(&recorder));
        let telemetry = Arc::clone(&obs.telemetry);
        // Evicted telemetry samples spill beside the WAL.
        telemetry.set_spill_path(dir.join("telemetry.spill.jsonl"));
        let db = Database {
            catalog,
            relations,
            txn: TxnManager::resuming_after(Arc::clone(&clock), last_commit),
            dir: Some(dir.to_path_buf()),
            wal: Some(Arc::new(Mutex::new(wal))),
            cache: Arc::clone(&obs.cache),
            recorder,
            health: Arc::clone(&obs.health),
            clock,
            telemetry,
            registry: Arc::clone(&obs.registry),
            physical: Arc::clone(&obs.physical),
            sampler: None,
            freeze_threshold: DEFAULT_FREEZE_THRESHOLD,
        };
        db.record_catalog_sample(db.txn.peek_now());
        db.refresh_physical_snapshots();
        Ok(db)
    }

    /// Checkpoints the database: writes the complete physical state of
    /// every relation (all versions included — a temporal database
    /// forgets nothing) to the `checkpoint` file and truncates the
    /// write-ahead log, bounding future recovery time.  Only meaningful
    /// on durable databases.
    pub fn checkpoint(&mut self) -> DbResult<()> {
        let Some(dir) = self.dir.clone() else {
            return Err(DbError::Catalog(
                "checkpoint requires a durable database".into(),
            ));
        };
        self.recorder.emit_event(
            "db_checkpoint_start",
            &[("relations", self.relations.len().into())],
        );
        let mut images = std::collections::BTreeMap::new();
        for (name, entry) in self.catalog.iter() {
            let rel = self
                .relations
                .get(name)
                .expect("catalog and stores in sync");
            images.insert(entry.rel_id, crate::checkpoint::capture(rel)?);
        }
        // Every WAL record's commit time is ≤ the manager's last commit
        // time, and every future commit gets a strictly greater one —
        // so this floor cleanly splits "absorbed by the images" from
        // "must replay" if a crash strands the full log next to the
        // new checkpoint.
        crate::checkpoint::save(
            &dir.join("checkpoint"),
            self.txn.last_commit_time(),
            &images,
        )?;
        let wal_bytes_truncated = match &self.wal {
            Some(wal) => {
                let mut wal = wal.lock();
                let len = wal.len().unwrap_or(0);
                wal.reset()?;
                len
            }
            None => 0,
        };
        self.recorder.emit_event(
            "db_checkpoint_finish",
            &[
                ("relations", self.relations.len().into()),
                ("wal_bytes_truncated", wal_bytes_truncated.into()),
            ],
        );
        // Heap rows whose transaction period closed are immutable
        // forever; once enough pile up, freeze them into mmap-backed
        // segments.  Doing it *after* the checkpoint image is durable
        // keeps the heap authoritative: a crash anywhere in the freeze
        // loses only a rebuildable cache.
        let to_freeze: Vec<String> = self
            .relations
            .iter()
            .filter(|(_, rel)| match rel {
                Relation::Temporal(t) => t.frozen_version_count() >= self.freeze_threshold,
                _ => false,
            })
            .map(|(name, _)| name.clone())
            .collect();
        for name in to_freeze {
            self.freeze_relation(&name)?;
        }
        // The checkpoint just rewrote the on-disk shape wholesale.
        self.refresh_physical_snapshots();
        Ok(())
    }

    /// Overrides the closed-version count at which [`checkpoint`]
    /// (Self::checkpoint) auto-freezes a relation.
    pub fn set_freeze_threshold(&mut self, versions: usize) {
        self.freeze_threshold = versions;
    }

    /// Freezes `name`'s closed versions into an immutable mmap-backed
    /// segment under `dir/segments/`, leaving the mutable tail on the
    /// pager.  Explicit counterpart of the checkpoint-time auto-freeze;
    /// durable, temporal relations only.
    pub fn freeze_relation(&mut self, name: &str) -> DbResult<FreezeOutcome> {
        Self::reject_system_write(name)?;
        let Some(dir) = self.dir.clone() else {
            return Err(DbError::Capability(
                "freeze requires a durable database (segments live on disk)".into(),
            ));
        };
        let Some(rel) = self.relations.get_mut(name) else {
            return Err(DbError::Catalog(format!("unknown relation {name:?}")));
        };
        let Relation::Temporal(table) = rel else {
            return Err(DbError::Capability(format!(
                "{name:?} is not a temporal relation: only temporal histories freeze"
            )));
        };
        let seg_dir = dir.join("segments");
        std::fs::create_dir_all(&seg_dir).map_err(chronos_storage::StorageError::from)?;
        let file = format!("{name}-{}.seg", table.segments().len());
        let report = table.freeze_into(&seg_dir.join(&file))?;
        let outcome = match report {
            Some(r) => FreezeOutcome {
                relation: name.to_string(),
                versions: r.versions,
                chains: r.chains,
                file_bytes: r.file_bytes,
                path: Some(format!("segments/{file}")),
            },
            None => FreezeOutcome {
                relation: name.to_string(),
                versions: 0,
                chains: 0,
                file_bytes: 0,
                path: None,
            },
        };
        if outcome.path.is_some() {
            // The relation's physical shape changed: stale every cached
            // scan, journal the migration, and resample the exporters.
            self.bump_epoch(name, "freeze");
            self.recorder.emit_event(
                "relation_frozen",
                &[
                    ("relation", name.into()),
                    ("versions", outcome.versions.into()),
                    ("chains", outcome.chains.into()),
                    ("file_bytes", outcome.file_bytes.into()),
                ],
            );
            self.refresh_physical_snapshots();
        }
        Ok(outcome)
    }

    /// True iff the database persists to disk.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The current reading of the database clock: the transaction time
    /// the next commit would receive.
    pub fn now(&self) -> Chronon {
        self.txn.peek_now()
    }

    /// Defines a new relation.
    pub fn create_relation(
        &mut self,
        name: &str,
        schema: Schema,
        class: RelationClass,
        signature: TemporalSignature,
    ) -> DbResult<()> {
        Self::reject_system_write(name)?;
        self.catalog
            .define(name, schema.clone(), class, signature)
            .map_err(DbError::Catalog)?;
        let mut rel = Relation::new(schema, class, signature);
        rel.set_recorder(Arc::clone(&self.recorder));
        self.relations.insert(name.to_string(), rel);
        self.bump_epoch(name, "create");
        self.persist_catalog()?;
        self.record_catalog_sample(self.txn.peek_now());
        Ok(())
    }

    /// Drops a relation and its store.
    pub fn destroy_relation(&mut self, name: &str) -> DbResult<()> {
        Self::reject_system_write(name)?;
        if self.catalog.remove(name).is_none() {
            return Err(DbError::Catalog(format!("unknown relation {name:?}")));
        }
        self.relations.remove(name);
        self.telemetry.forget_tablestats(name);
        self.bump_epoch(name, "destroy");
        self.persist_catalog()?;
        self.record_catalog_sample(self.txn.peek_now());
        Ok(())
    }

    /// The `sys$` namespace is reserved: every write path refuses it.
    fn reject_system_write(name: &str) -> DbResult<()> {
        if is_system(name) {
            return Err(DbError::Capability(format!(
                "{name:?} is in the reserved sys$ namespace: system relations are read-only"
            )));
        }
        Ok(())
    }

    /// Invalidates cached scans of `relation` and journals why.  A
    /// commit bumps only the epoch (frozen fully-past entries keep
    /// serving); structural reasons (create, destroy, materialize)
    /// bump the generation, which stales frozen entries too.
    fn bump_epoch(&self, relation: &str, reason: &str) {
        {
            let mut cache = self.cache.lock();
            if reason == "commit" {
                cache.bump_epoch(relation);
            } else {
                cache.bump_generation(relation);
            }
        }
        self.recorder.emit_event(
            "cache_epoch_bump",
            &[("relation", relation.into()), ("reason", reason.into())],
        );
    }

    fn persist_catalog(&self) -> DbResult<()> {
        if let Some(dir) = &self.dir {
            self.catalog.save(&dir.join("catalog"))?;
        }
        Ok(())
    }

    /// Names of all defined relations, in name order.
    pub fn relation_names(&self) -> Vec<String> {
        self.catalog.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Borrows a relation's store.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// The database class of a relation (Figure 10 classification).
    pub fn classify(&self, name: &str) -> Option<DatabaseClass> {
        self.catalog.get(name).map(|e| e.class.database_class())
    }

    /// Commits a transaction against one relation: allocates the
    /// transaction time, validates, logs (write-ahead, fsynced),
    /// applies.  Returns the transaction time.
    pub fn commit(&mut self, relation: &str, ops: &[HistoricalOp]) -> DbResult<Chronon> {
        self.commit_with_sync(relation, ops, true)
    }

    /// [`commit`](Self::commit) with the WAL frame *staged* instead of
    /// fsynced: the group-commit writer (`crate::engine`) calls this
    /// for each transaction in a batch, then makes the whole batch
    /// durable with one `Wal::group_sync`.  The commit must not be
    /// acknowledged until that covering fsync succeeds.
    pub(crate) fn commit_unsynced(
        &mut self,
        relation: &str,
        ops: &[HistoricalOp],
    ) -> DbResult<Chronon> {
        self.commit_with_sync(relation, ops, false)
    }

    fn commit_with_sync(
        &mut self,
        relation: &str,
        ops: &[HistoricalOp],
        sync: bool,
    ) -> DbResult<Chronon> {
        // Clone the handle so the span's borrow doesn't pin `self`.
        let recorder = Arc::clone(&self.recorder);
        let span = recorder.span("db/commit");
        span.detail(relation.to_string());
        span.rows_in(ops.len() as u64);
        let started = std::time::Instant::now();
        Self::reject_system_write(relation)?;
        if ops.is_empty() {
            return Err(DbError::Catalog("empty transaction".into()));
        }
        let entry = self
            .catalog
            .get(relation)
            .ok_or_else(|| DbError::Catalog(format!("unknown relation {relation:?}")))?;
        let rel_id = entry.rel_id;
        let rel = self
            .relations
            .get(relation)
            .expect("catalog and stores in sync");
        let tx_time = self.txn.next_commit_time();
        rel.validate(tx_time, ops)?;
        let wal_len_before = match &self.wal {
            Some(wal) => {
                let mut wal = wal.lock();
                let len = wal.len()?;
                let rec = WalRecord {
                    rel_id,
                    tx_time,
                    ops: ops.to_vec(),
                };
                if sync {
                    wal.append(&rec)?;
                } else {
                    wal.append_no_sync(&rec)?;
                }
                Some(len)
            }
            None => None,
        };
        let rel = self
            .relations
            .get_mut(relation)
            .expect("catalog and stores in sync");
        if let Err(e) = rel.apply(tx_time, ops) {
            // The transaction validated but the physical apply failed
            // (an I/O fault in the heap/pager path).  The record is
            // already in the log; roll it back so the database never
            // resurrects at reopen a commit it reported as failed.
            if let (Some(wal), Some(len)) = (&self.wal, wal_len_before) {
                let _ = wal.lock().truncate_to(len);
            }
            return Err(DbError::Storage(chronos_storage::StorageError::Corrupt(
                format!("commit apply failed after write-ahead (log rolled back): {e}"),
            )));
        }
        self.bump_epoch(relation, "commit");
        recorder.count(|m| &m.commits);
        recorder.record_latency(|m| &m.commit_latency, started.elapsed().as_nanos() as u64);
        // Commits are the only points where tuple counts change, so a
        // synchronous catalog sample at the commit time makes the
        // `sys$relations` rollback view exact.
        self.record_catalog_sample(tx_time);
        Ok(tx_time)
    }

    /// The shared WAL handle, for the group-commit writer's
    /// post-batch fsync.  `None` for in-memory databases.
    pub(crate) fn wal_handle(&self) -> Option<Arc<Mutex<Wal>>> {
        self.wal.clone()
    }

    /// The most recently allocated commit time, if any transaction has
    /// ever committed (snapshot sessions pin this at `begin`).
    pub fn last_commit_time(&self) -> Option<Chronon> {
        self.txn.last_commit_time()
    }

    /// The engine's observability handle.  Shared (behind the `Arc`)
    /// with every relation store, the WAL, and traced query execution.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Unified engine statistics: every instrument in the metrics
    /// registry plus the query-cache section.  This is the sole stats
    /// surface (the former `cache_stats` accessor is gone; read the
    /// `cache` section here instead).
    pub fn engine_stats(&self) -> EngineStats {
        crate::observe::engine_stats_from(&self.recorder, &self.cache, &self.telemetry)
    }

    /// The database's readiness flags (`/healthz` + `/readyz`).
    pub fn health(&self) -> &Arc<Health> {
        &self.health
    }

    /// Starts the embedded HTTP observability exporter on `addr`
    /// (e.g. `"127.0.0.1:9090"`, or port `:0` for an ephemeral port —
    /// read it back from [`ObsServer::addr`]).  The server owns `Arc`
    /// clones of the engine handles and keeps serving until dropped;
    /// it never borrows the database.
    pub fn serve_observability(&self, addr: &str) -> std::io::Result<ObsServer> {
        chronos_obs::export::serve(
            addr,
            Arc::new(DbObsSource {
                recorder: Arc::clone(&self.recorder),
                health: Arc::clone(&self.health),
                cache: Arc::clone(&self.cache),
                telemetry: Arc::clone(&self.telemetry),
                registry: Arc::clone(&self.registry),
                physical: Arc::clone(&self.physical),
            }),
        )
    }

    /// Sets the slow-query admission threshold: statements at least
    /// this slow are captured (with their span tree and counter
    /// deltas) into the recorder's slow log.  `0` captures everything;
    /// `u64::MAX` (the default) disables capture.
    pub fn set_slow_query_threshold_ns(&self, ns: u64) {
        self.recorder.slowlog().set_threshold_ns(ns);
    }

    /// Replaces the query cache with one holding `capacity` scans
    /// (0 disables caching).  Existing entries and counters are reset.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        *self.cache.lock() = QueryCache::new(capacity);
    }

    /// Materializes a derived relation under `name` — the executable
    /// form of the paper's closure property ("this derived relation is a
    /// temporal relation, so further temporal relations can be derived
    /// from it").  The new relation's class is the result's class; its
    /// rows keep their derived timestamps verbatim.  On a durable
    /// database a checkpoint is taken immediately, since derived
    /// timestamps cannot be replayed through the append-only log.
    pub fn materialize(
        &mut self,
        name: &str,
        result: &chronos_tquel::exec::ResultRelation,
    ) -> DbResult<()> {
        use chronos_core::relation::temporal::BitemporalRow;
        Self::reject_system_write(name)?;
        let class = match result.kind {
            DatabaseClass::Static => RelationClass::Static,
            DatabaseClass::StaticRollback => RelationClass::StaticRollback,
            DatabaseClass::Historical => RelationClass::Historical,
            DatabaseClass::Temporal => RelationClass::Temporal,
        };
        let schema = result.schema.clone();
        let mut relation = match class {
            RelationClass::Static => {
                let mut r = chronos_core::relation::static_rel::StaticRelation::new(schema.clone());
                for row in &result.rows {
                    r.insert(row.tuple.clone())?;
                }
                Relation::Static(r)
            }
            RelationClass::Historical => {
                let mut r = chronos_core::relation::historical::HistoricalRelation::new(
                    schema.clone(),
                    result.signature,
                );
                for row in &result.rows {
                    let validity = row.validity.ok_or_else(|| {
                        DbError::Capability("historical result row lacks valid time".into())
                    })?;
                    r.insert(row.tuple.clone(), validity)?;
                }
                Relation::Historical(r)
            }
            RelationClass::Temporal => {
                let mut rows = Vec::with_capacity(result.rows.len());
                let mut last_commit: Option<Chronon> = None;
                for row in &result.rows {
                    let validity = row.validity.ok_or_else(|| {
                        DbError::Capability("temporal result row lacks valid time".into())
                    })?;
                    let tx = row.tx.ok_or_else(|| {
                        DbError::Capability("temporal result row lacks transaction time".into())
                    })?;
                    if let Some(start) = tx.start().finite() {
                        last_commit = Some(match last_commit {
                            Some(prev) => prev.max_of(start),
                            None => start,
                        });
                    }
                    rows.push(BitemporalRow {
                        tuple: row.tuple.clone(),
                        validity,
                        tx,
                    });
                }
                let transactions = {
                    let mut starts: Vec<_> = rows.iter().map(|r| r.tx.start()).collect();
                    starts.sort();
                    starts.dedup();
                    starts.len()
                };
                Relation::Temporal(Box::new(chronos_storage::table::StoredBitemporalTable::<
                    chronos_storage::pager::MemPager,
                >::from_rows(
                    schema.clone(),
                    result.signature,
                    rows,
                    last_commit,
                    transactions,
                )?))
            }
            RelationClass::StaticRollback => {
                return Err(DbError::Capability(
                    "query results are never rollback relations (rollback yields static results)"
                        .into(),
                ))
            }
        };
        self.catalog
            .define(name, schema, class, result.signature)
            .map_err(DbError::Catalog)?;
        relation.set_recorder(Arc::clone(&self.recorder));
        self.relations.insert(name.to_string(), relation);
        self.bump_epoch(name, "materialize");
        self.persist_catalog()?;
        // Derived timestamps aren't reproducible from the log; capture
        // them (and everything else) in a checkpoint right away.
        if self.is_durable() {
            self.checkpoint()?;
        }
        self.record_catalog_sample(self.txn.peek_now());
        Ok(())
    }

    /// Starts a session for executing TQuel programs.
    pub fn session(&mut self) -> Session<&mut Database> {
        Session::new(self)
    }

    // -----------------------------------------------------------------
    // Temporal introspection (the `sys$` system relations)
    // -----------------------------------------------------------------

    /// The telemetry store backing `sys$stats` / `sys$relations`.
    pub fn telemetry(&self) -> &Arc<TelemetryStore> {
        &self.telemetry
    }

    /// The session/connection registry backing `sys$sessions` and
    /// `sys$connections`.
    pub fn session_registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// Takes one stats + catalog sample right now, at the transaction
    /// time the next commit would receive.  Returns that chronon.  The
    /// deterministic counterpart of the background sampler (tests and
    /// the CLI's `\sample` drive this).
    pub fn sample_now(&self) -> Chronon {
        let at = self.txn.peek_now();
        let stats = self.engine_stats();
        self.telemetry.record_stats(at, &stats);
        self.record_catalog_sample(at);
        self.registry.record_sample(at);
        self.refresh_physical_snapshots();
        at
    }

    /// Records the catalog's current shape into the telemetry store at
    /// transaction time `at`.
    fn record_catalog_sample(&self, at: Chronon) {
        let rows: Vec<CatalogRow> = self
            .catalog
            .iter()
            .map(|(name, entry)| {
                let rel = self
                    .relations
                    .get(name)
                    .expect("catalog and stores in sync");
                CatalogRow {
                    name: name.clone(),
                    class: entry.class.to_string(),
                    tuples: rel.stored_tuples() as i64,
                    bytes: relation_bytes(rel) as i64,
                    checkpoint_k: relation_checkpoint_k(rel) as i64,
                }
            })
            .collect();
        self.telemetry.record_catalog(at, rows);
    }

    /// Starts the background stats sampler on `interval`.  Restarting
    /// replaces (and joins) a previous sampler.  The lifecycle is
    /// journaled and visible in `/readyz` as `sampler_running`.
    pub fn start_stats_sampler(&mut self, interval: std::time::Duration) -> std::io::Result<()> {
        self.stop_stats_sampler();
        let sampler = StatsSampler::start(
            interval,
            Arc::clone(&self.recorder),
            Arc::clone(&self.health),
            Arc::clone(&self.cache),
            Arc::clone(&self.telemetry),
            Arc::clone(&self.registry),
            Arc::clone(&self.clock),
        )?;
        self.sampler = Some(sampler);
        Ok(())
    }

    /// Stops (and joins) the background sampler, if running.
    pub fn stop_stats_sampler(&mut self) {
        if let Some(sampler) = self.sampler.take() {
            sampler.stop();
        }
    }

    /// True while the background sampler thread is alive.
    pub fn sampler_running(&self) -> bool {
        self.telemetry.sampler_running()
    }

    /// Collects temporal storage statistics for `relation` into the
    /// `sys$tablestats` telemetry ring (the `analyze` statement):
    /// row/version counts, a version-chain-length histogram, valid- and
    /// transaction-time interval-duration histograms, a valid-time
    /// overlap-density histogram, checkpoint density, and a
    /// distinct-key estimate.  With no declared keys, version chains
    /// group by the first attribute's value — a heuristic the catalog
    /// will refine once key declarations exist.  Returns the number of
    /// statistic rows recorded.  Takes `&self`: the stores are read-only
    /// here and the telemetry ring is interior-mutable, so the engine
    /// analyzes under its read lock.
    pub fn analyze_relation(&self, relation: &str) -> DbResult<usize> {
        if is_system(relation) {
            return Err(DbError::Capability(format!(
                "cannot analyze {relation}: system relations are telemetry, not storage"
            )));
        }
        let span = self.recorder.span("db/analyze");
        span.detail(relation.to_string());
        let rel = self
            .relations
            .get(relation)
            .ok_or_else(|| DbError::Catalog(format!("unknown relation {relation:?}")))?;
        let mut stats: Vec<(String, i64)> = Vec::new();
        match rel {
            Relation::Static(r) => {
                let tuples: Vec<_> = r.iter().collect();
                push_stat(&mut stats, "rows", tuples.len() as i64);
                push_stat(&mut stats, "versions", tuples.len() as i64);
                push_key_stats(&mut stats, tuples.iter().map(|t| key_of(t)));
            }
            Relation::Rollback(r) => {
                let all = r.store().rows();
                let current = all.iter().filter(|row| row.is_current()).count();
                push_stat(&mut stats, "rows", current as i64);
                push_stat(&mut stats, "versions", all.len() as i64);
                push_key_stats(&mut stats, all.iter().map(|row| key_of(&row.tuple)));
                push_duration_histogram(&mut stats, "tx_dur", all.iter().map(|row| row.tx));
            }
            Relation::Historical(r) => {
                let all = r.rows();
                push_stat(&mut stats, "rows", all.len() as i64);
                push_stat(&mut stats, "versions", all.len() as i64);
                push_key_stats(&mut stats, all.iter().map(|row| key_of(&row.tuple)));
                let valid: Vec<_> = all.iter().map(|row| row.validity.period()).collect();
                push_duration_histogram(&mut stats, "vt_dur", valid.iter().copied());
                push_overlap_histogram(&mut stats, &valid);
            }
            Relation::Temporal(r) => {
                let all = r.scan_rows()?;
                let current = all.iter().filter(|row| row.is_current()).count();
                push_stat(&mut stats, "rows", current as i64);
                push_stat(&mut stats, "versions", all.len() as i64);
                push_key_stats(&mut stats, all.iter().map(|row| key_of(&row.tuple)));
                let valid: Vec<_> = all.iter().map(|row| row.validity.period()).collect();
                push_duration_histogram(&mut stats, "vt_dur", valid.iter().copied());
                push_duration_histogram(&mut stats, "tx_dur", all.iter().map(|row| row.tx));
                push_overlap_histogram(&mut stats, &valid);
            }
        }
        push_stat(
            &mut stats,
            "checkpoint_k",
            relation_checkpoint_k(rel) as i64,
        );
        push_stat(&mut stats, "bytes", relation_bytes(rel) as i64);
        // Physical per-version accounting: measured off the heap for
        // temporal relations, estimated (duplication-free) otherwise.
        let (bytes_per_version, dup_factor) = match rel {
            Relation::Temporal(r) => {
                let p = r.physical_stats()?;
                (p.bytes_per_version as i64, p.dup_factor_x1000 as i64)
            }
            other => {
                let versions = other.stored_tuples().max(1) as i64;
                (relation_bytes(rel) as i64 / versions, 1000)
            }
        };
        push_stat(&mut stats, "bytes_per_version", bytes_per_version);
        push_stat(&mut stats, "dup_factor_x1000", dup_factor);
        let count = stats.len();
        let at = self.txn.peek_now();
        self.telemetry.record_tablestats(at, relation, stats);
        self.recorder.emit_event(
            "analyze",
            &[("relation", relation.into()), ("stats", count.into())],
        );
        span.rows_out(count as u64);
        Ok(count)
    }

    /// Scan of one system relation.  System scans bypass the query
    /// cache: telemetry is volatile and never bumps relation epochs, so
    /// a cached entry would serve stale history.
    fn scan_system(
        &self,
        relation: &str,
        as_of: Option<&AsOfSpec>,
    ) -> Result<Arc<Vec<SourceRow>>, TquelError> {
        let span = self.recorder.span("db/scan");
        span.detail(format!("{relation} (system)"));
        let rows = match relation {
            "sys$stats" => self.telemetry.stats_scan(as_of),
            "sys$tablestats" => self.telemetry.tablestats_scan(as_of),
            "sys$relations" => self.telemetry.catalog_scan(as_of),
            "sys$sessions" => self.registry.sessions_scan(as_of),
            "sys$queries" => {
                reject_system_as_of(relation, as_of)?;
                self.recorder
                    .fingerprints()
                    .entries()
                    .iter()
                    .map(|e| SourceRow {
                        tuple: chronos_core::tuple::Tuple::new(vec![
                            chronos_core::value::Value::str(format!("{:016x}", e.hash)),
                            chronos_core::value::Value::str(&e.statement),
                            chronos_core::value::Value::str(e.kind),
                            chronos_core::value::Value::Int(e.calls.min(i64::MAX as u64) as i64),
                            chronos_core::value::Value::Int(e.p50_ns.min(i64::MAX as u64) as i64),
                            chronos_core::value::Value::Int(e.p99_ns.min(i64::MAX as u64) as i64),
                            chronos_core::value::Value::Int(e.rows_out.min(i64::MAX as u64) as i64),
                            chronos_core::value::Value::Int(
                                e.cache_hits.min(i64::MAX as u64) as i64
                            ),
                            chronos_core::value::Value::Int(
                                e.cache_misses.min(i64::MAX as u64) as i64
                            ),
                        ]),
                        validity: None,
                        tx: None,
                    })
                    .collect()
            }
            "sys$connections" => {
                reject_system_as_of(relation, as_of)?;
                self.registry.connections_scan()
            }
            "sys$slow" => {
                reject_system_as_of(relation, as_of)?;
                self.recorder
                    .slowlog()
                    .entries()
                    .iter()
                    .map(|e| SourceRow {
                        tuple: chronos_core::tuple::Tuple::new(vec![
                            chronos_core::value::Value::Int(e.seq as i64),
                            chronos_core::value::Value::Int(
                                e.duration_ns.min(i64::MAX as u64) as i64
                            ),
                            chronos_core::value::Value::str(&e.statement),
                        ]),
                        validity: Some(chronos_core::relation::Validity::Event(Chronon::new(
                            e.at_tick,
                        ))),
                        tx: None,
                    })
                    .collect()
            }
            "sys$events" => {
                reject_system_as_of(relation, as_of)?;
                match self.recorder.journal() {
                    Some(journal) => journal
                        .tail_lines(chronos_obs::export::DEFAULT_EVENTS_TAIL)
                        .iter()
                        .filter_map(|line| chronos_obs::parse_event_summary(line))
                        .map(|(seq, ts_ns, event)| SourceRow {
                            tuple: chronos_core::tuple::Tuple::new(vec![
                                chronos_core::value::Value::Int(seq.min(i64::MAX as u64) as i64),
                                chronos_core::value::Value::Int(ts_ns.min(i64::MAX as u64) as i64),
                                chronos_core::value::Value::str(&event),
                            ]),
                            validity: None,
                            tx: None,
                        })
                        .collect(),
                    None => Vec::new(),
                }
            }
            "sys$wal" => {
                reject_system_as_of(relation, as_of)?;
                self.wal_stat_rows()
                    .into_iter()
                    .map(|(stat, value, detail)| SourceRow {
                        tuple: chronos_core::tuple::Tuple::new(vec![
                            chronos_core::value::Value::str(stat),
                            chronos_core::value::Value::Int(value),
                            chronos_core::value::Value::str(detail),
                        ]),
                        validity: None,
                        tx: None,
                    })
                    .collect()
            }
            "sys$pages" => {
                reject_system_as_of(relation, as_of)?;
                self.pages_rows()
                    .iter()
                    .map(|r| SourceRow {
                        tuple: chronos_core::tuple::Tuple::new(vec![
                            chronos_core::value::Value::str(&r.relation),
                            chronos_core::value::Value::str(&r.class),
                            chronos_core::value::Value::Int(r.pages),
                            chronos_core::value::Value::Int(r.bytes_disk),
                            chronos_core::value::Value::Int(r.records),
                            chronos_core::value::Value::Int(r.occupancy_x1000),
                            chronos_core::value::Value::Int(r.versions),
                            chronos_core::value::Value::Int(r.bytes_per_version),
                            chronos_core::value::Value::Int(r.dup_factor_x1000),
                        ]),
                        validity: None,
                        tx: None,
                    })
                    .collect()
            }
            other => return Err(TquelError::Semantic(format!("unknown relation {other:?}"))),
        };
        span.rows_out(rows.len() as u64);
        Ok(Arc::new(rows))
    }

    /// The tall `(stat, value, detail)` rows behind `sys$wal`: an
    /// offline frame walk of the log file combined with the live
    /// handle's watermarks.  The walk runs under the WAL lock, so the
    /// view is quiesced against concurrent appends.
    fn wal_stat_rows(&self) -> Vec<(String, i64, String)> {
        use chronos_storage::inspect::{scan_wal, TailState};
        let mut rows: Vec<(String, i64, String)> = Vec::new();
        let mut push =
            |stat: &str, value: i64, detail: String| rows.push((stat.to_string(), value, detail));
        let Some(wal) = &self.wal else {
            push(
                "durable",
                0,
                "in-memory database: no write-ahead log".into(),
            );
            return rows;
        };
        let wal = wal.lock();
        let scan = match scan_wal(wal.path()) {
            Ok(scan) => scan,
            Err(e) => {
                push("durable", 1, format!("wal unreadable: {e}"));
                return rows;
            }
        };
        push("durable", 1, String::new());
        push("frames", scan.frames.len() as i64, String::new());
        push("bytes", clamp_i64(scan.total_len), String::new());
        push("valid_bytes", clamp_i64(scan.valid_len), String::new());
        push(
            "synced_bytes",
            clamp_i64(wal.synced_len()),
            "fsynced watermark".into(),
        );
        push(
            "pending_bytes",
            clamp_i64(wal.pending_bytes()),
            "staged, awaiting group fsync".into(),
        );
        let (lsn_first, lsn_last) = scan.lsn_range().unwrap_or((0, 0));
        push("lsn_first", lsn_first, String::new());
        push("lsn_last", lsn_last, String::new());
        let (inserts, removes, set_validities) = scan.op_totals();
        push("ops_insert", clamp_i64(inserts), String::new());
        push("ops_remove", clamp_i64(removes), String::new());
        push("ops_set_validity", clamp_i64(set_validities), String::new());
        for (class, frames, bytes) in scan.classes() {
            push(
                &format!("frames_{class}"),
                clamp_i64(frames),
                format!("{bytes} bytes"),
            );
        }
        let tail_detail = match &scan.tail {
            TailState::Clean => "clean".to_string(),
            TailState::Torn { offset, bytes } => {
                format!("torn tail: {bytes} incomplete bytes at offset {offset}")
            }
            TailState::Corrupt { reason, .. } => reason.clone(),
        };
        push(
            "tail_bad_bytes",
            clamp_i64(scan.tail.bad_bytes()),
            tail_detail,
        );
        push("truncations", clamp_i64(wal.truncations()), String::new());
        push(
            "last_truncation_bytes",
            clamp_i64(wal.last_truncation_bytes()),
            String::new(),
        );
        rows
    }

    /// The wide per-relation rows behind `sys$pages` (plus pseudo-rows,
    /// class `file`, sizing the durable directory's on-disk files).
    fn pages_rows(&self) -> Vec<PagesRow> {
        let mut rows = Vec::new();
        for (name, entry) in self.catalog.iter() {
            let rel = self
                .relations
                .get(name)
                .expect("catalog and stores in sync");
            let row = match rel {
                Relation::Temporal(r) => {
                    // One row per frozen segment: sized from the mapped
                    // file, with the segment's own duplication factor
                    // (delta-coded, so ≈1000 where the heap duplicates).
                    for seg in r.segments() {
                        let s = seg.stats();
                        rows.push(PagesRow {
                            relation: name.clone(),
                            class: "segment".to_string(),
                            pages: 0,
                            bytes_disk: clamp_i64(s.file_bytes),
                            records: clamp_i64(s.versions),
                            occupancy_x1000: clamp_i64(
                                (s.stored_bytes * 1000)
                                    .checked_div(s.file_bytes)
                                    .unwrap_or(0),
                            ),
                            versions: clamp_i64(s.versions),
                            bytes_per_version: clamp_i64(s.bytes_per_version),
                            dup_factor_x1000: clamp_i64(s.dup_factor_x1000),
                        });
                    }
                    match r.physical_stats() {
                        Ok(p) => PagesRow {
                            relation: name.clone(),
                            class: entry.class.to_string(),
                            pages: i64::from(p.pages),
                            bytes_disk: clamp_i64(p.bytes_on_disk),
                            records: clamp_i64(p.versions),
                            occupancy_x1000: clamp_i64(p.occupancy_x1000),
                            versions: clamp_i64(p.versions),
                            bytes_per_version: clamp_i64(p.bytes_per_version),
                            dup_factor_x1000: clamp_i64(p.dup_factor_x1000),
                        },
                        Err(_) => continue,
                    }
                }
                other => {
                    // No heap behind the in-memory classes: estimate
                    // from tuple counts, like `sys$relations` bytes.
                    let versions = other.stored_tuples() as i64;
                    let bytes = relation_bytes(rel) as i64;
                    PagesRow {
                        relation: name.clone(),
                        class: entry.class.to_string(),
                        pages: 0,
                        bytes_disk: bytes,
                        records: versions,
                        occupancy_x1000: 1000,
                        versions,
                        bytes_per_version: if versions == 0 { 0 } else { bytes / versions },
                        dup_factor_x1000: 1000,
                    }
                }
            };
            rows.push(row);
        }
        if let Some(dir) = &self.dir {
            for file in ["catalog", "checkpoint", "wal", "events.jsonl"] {
                let Ok(meta) = std::fs::metadata(dir.join(file)) else {
                    continue;
                };
                rows.push(PagesRow {
                    relation: format!("file:{file}"),
                    class: "file".to_string(),
                    pages: 0,
                    bytes_disk: clamp_i64(meta.len()),
                    records: 0,
                    occupancy_x1000: 0,
                    versions: 0,
                    bytes_per_version: 0,
                    dup_factor_x1000: 0,
                });
            }
            if let Ok(entries) = std::fs::read_dir(dir.join("segments")) {
                let mut seg_files: Vec<_> = entries
                    .flatten()
                    .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
                    .collect();
                seg_files.sort_by_key(|e| e.file_name());
                for entry in seg_files {
                    let Ok(meta) = entry.metadata() else { continue };
                    rows.push(PagesRow {
                        relation: format!("file:segments/{}", entry.file_name().to_string_lossy()),
                        class: "file".to_string(),
                        pages: 0,
                        bytes_disk: clamp_i64(meta.len()),
                        records: 0,
                        occupancy_x1000: 0,
                        versions: 0,
                        bytes_per_version: 0,
                        dup_factor_x1000: 0,
                    });
                }
            }
        }
        rows
    }

    /// Recomputes the `/wal` and `/storage` exporter documents from the
    /// current physical state.  Runs at open, at every explicit or
    /// checkpoint-driven sample — the endpoints are "as of last
    /// sample", like `/stats`.
    pub fn refresh_physical_snapshots(&self) {
        self.physical
            .set_wal_json(wal_json_doc(&self.wal_stat_rows()));
        self.physical
            .set_storage_json(storage_json_doc(&self.pages_rows()));
    }

    /// The physical-snapshot store serving `/wal` + `/storage`.
    pub fn physical_store(&self) -> &Arc<PhysicalStore> {
        &self.physical
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        self.stop_stats_sampler();
    }
}

/// One `sys$pages` row; also one object of the `/storage` document.
#[derive(Debug, Clone)]
struct PagesRow {
    relation: String,
    class: String,
    pages: i64,
    bytes_disk: i64,
    records: i64,
    occupancy_x1000: i64,
    versions: i64,
    bytes_per_version: i64,
    dup_factor_x1000: i64,
}

fn clamp_i64(v: u64) -> i64 {
    v.min(i64::MAX as u64) as i64
}

/// Renders the `sys$wal` rows as the `/wal` JSON document, so the
/// endpoint and the system relation agree field for field.
fn wal_json_doc(rows: &[(String, i64, String)]) -> String {
    let mut out = String::from("{\"wal\": [");
    for (i, (stat, value, detail)) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"stat\": \"{}\", \"value\": {value}, \"detail\": \"{}\"}}",
            chronos_obs::events::escape_json(stat),
            chronos_obs::events::escape_json(detail)
        ));
    }
    out.push_str("]}");
    out
}

/// Renders the `sys$pages` rows as the `/storage` JSON document.
fn storage_json_doc(rows: &[PagesRow]) -> String {
    let mut out = String::from("{\"storage\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"relation\": \"{}\", \"class\": \"{}\", \"pages\": {}, \
             \"bytes_disk\": {}, \"records\": {}, \"occupancy_x1000\": {}, \
             \"versions\": {}, \"bytes_per_version\": {}, \"dup_factor_x1000\": {}}}",
            chronos_obs::events::escape_json(&r.relation),
            chronos_obs::events::escape_json(&r.class),
            r.pages,
            r.bytes_disk,
            r.records,
            r.occupancy_x1000,
            r.versions,
            r.bytes_per_version,
            r.dup_factor_x1000
        ));
    }
    out.push_str("]}");
    out
}

/// Rough resident size of a relation's store in bytes: exact heap pages
/// for temporal relations, a tuple-count estimate otherwise.
fn relation_bytes(rel: &Relation) -> u64 {
    match rel {
        Relation::Temporal(r) => r.heap_pages() as u64 * chronos_storage::page::PAGE_SIZE as u64,
        other => other.stored_tuples() as u64 * 64,
    }
}

/// Checkpoint interval K of a relation's accelerator, 0 when it has
/// none.
fn relation_checkpoint_k(rel: &Relation) -> usize {
    match rel {
        Relation::Temporal(r) => r.checkpoint_interval(),
        Relation::Rollback(r) if r.is_accelerated() => {
            crate::relation::ROLLBACK_CHECKPOINT_INTERVAL
        }
        _ => 0,
    }
}

fn push_stat(stats: &mut Vec<(String, i64)>, name: &str, value: i64) {
    stats.push((name.to_string(), value));
}

/// Version-chain grouping key: the first attribute's rendered value
/// (the relation model declares no keys yet, so this is the documented
/// heuristic behind `distinct_keys` and the chain-length histogram).
fn key_of(tuple: &chronos_core::tuple::Tuple) -> String {
    tuple
        .try_get(0)
        .map(|v| format!("{v:?}"))
        .unwrap_or_default()
}

/// `distinct_keys` plus the version-chain-length histogram
/// (`chain_len_le_{1,2,4,8,16}` / `chain_len_gt_16`): how many versions
/// each key has accumulated.
fn push_key_stats(stats: &mut Vec<(String, i64)>, keys: impl Iterator<Item = String>) {
    let mut chains: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
    for key in keys {
        *chains.entry(key).or_insert(0) += 1;
    }
    push_stat(stats, "distinct_keys", chains.len() as i64);
    let mut buckets = [0i64; 6];
    for &len in chains.values() {
        let idx = match len {
            ..=1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            _ => 5,
        };
        buckets[idx] += 1;
    }
    for (name, count) in [
        "chain_len_le_1",
        "chain_len_le_2",
        "chain_len_le_4",
        "chain_len_le_8",
        "chain_len_le_16",
        "chain_len_gt_16",
    ]
    .iter()
    .zip(buckets)
    {
        push_stat(stats, name, count);
    }
}

/// Interval-duration histogram over `periods`, in chronon ticks:
/// `<prefix>_le_{1,4,16,64,256}`, `<prefix>_gt_256`, and
/// `<prefix>_open` for periods reaching `forever` (still-current
/// transaction periods, open valid intervals).
fn push_duration_histogram(
    stats: &mut Vec<(String, i64)>,
    prefix: &str,
    periods: impl Iterator<Item = chronos_core::period::Period>,
) {
    let mut buckets = [0i64; 6];
    let mut open = 0i64;
    for p in periods {
        match p.duration() {
            None => open += 1,
            Some(d) => {
                let idx = match d {
                    ..=1 => 0,
                    2..=4 => 1,
                    5..=16 => 2,
                    17..=64 => 3,
                    65..=256 => 4,
                    _ => 5,
                };
                buckets[idx] += 1;
            }
        }
    }
    for (suffix, count) in ["le_1", "le_4", "le_16", "le_64", "le_256", "gt_256"]
        .iter()
        .zip(buckets)
    {
        push_stat(stats, &format!("{prefix}_{suffix}"), count);
    }
    push_stat(stats, &format!("{prefix}_open"), open);
}

/// Valid-time overlap-density histogram: a sweep line over the interval
/// endpoints records, at each interval start, how many intervals are
/// concurrently valid (`overlap_le_{1,2,4,8}` / `overlap_gt_8`).  This
/// is the distribution property Mkaouar & Bouaziz identify as the
/// dominant temporal-join cost driver.
fn push_overlap_histogram(
    stats: &mut Vec<(String, i64)>,
    periods: &[chronos_core::period::Period],
) {
    use chronos_core::timepoint::TimePoint;
    let mut events: Vec<(TimePoint, i32)> = Vec::with_capacity(periods.len() * 2);
    for p in periods {
        if p.is_empty() {
            continue;
        }
        events.push((p.start(), 1));
        events.push((p.end(), -1));
    }
    // Ends sort before starts at equal points: `[a, b)` and `[b, c)` do
    // not overlap.
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut live = 0i64;
    let mut buckets = [0i64; 5];
    for (_, delta) in events {
        live += delta as i64;
        if delta > 0 {
            let idx = match live {
                ..=1 => 0,
                2 => 1,
                3..=4 => 2,
                5..=8 => 3,
                _ => 4,
            };
            buckets[idx] += 1;
        }
    }
    for (name, count) in [
        "overlap_le_1",
        "overlap_le_2",
        "overlap_le_4",
        "overlap_le_8",
        "overlap_gt_8",
    ]
    .iter()
    .zip(buckets)
    {
        push_stat(stats, name, count);
    }
}

/// The analyzer already rejects `as of` over relations without
/// transaction time; this backstop keeps direct provider calls honest.
fn reject_system_as_of(relation: &str, as_of: Option<&AsOfSpec>) -> Result<(), TquelError> {
    if as_of.is_some() {
        return Err(TquelError::Semantic(format!(
            "{relation} has no transaction time: rollback (as of) does not apply"
        )));
    }
    Ok(())
}

impl RelationProvider for Database {
    fn info(&self, relation: &str) -> Option<RelationInfo> {
        if is_system(relation) {
            return system_info(relation);
        }
        self.catalog.get(relation).map(|e| RelationInfo {
            schema: e.schema.clone(),
            class: e.class,
            signature: e.signature,
        })
    }

    fn scan(
        &self,
        relation: &str,
        as_of: Option<&AsOfSpec>,
    ) -> Result<Arc<Vec<SourceRow>>, TquelError> {
        if is_system(relation) {
            return self.scan_system(relation, as_of);
        }
        let span = self.recorder.span("db/scan");
        let cached = {
            let mut cache = self.cache.lock();
            let before = cache.stats();
            let got = cache.get(relation, as_of);
            // Mirror the cache's own accounting (a stale entry dropped
            // on lookup counts as an invalidation; a frozen entry
            // served across an epoch bump counts as a frozen hit) into
            // the registry.
            let after = cache.stats();
            if after.invalidations > before.invalidations {
                self.recorder.count(|m| &m.cache_invalidations);
            }
            if after.frozen_hits > before.frozen_hits {
                self.recorder.count(|m| &m.cache_frozen_hits);
            }
            got
        };
        if let Some(rows) = cached {
            self.recorder.count(|m| &m.cache_hits);
            span.detail(format!("{relation} (cache hit)"));
            span.rows_out(rows.len() as u64);
            return Ok(rows);
        }
        self.recorder.count(|m| &m.cache_misses);
        span.detail(format!("{relation} (cache miss)"));
        let rel = self
            .relations
            .get(relation)
            .ok_or_else(|| TquelError::Semantic(format!("unknown relation {relation:?}")))?;
        let rows = rel
            .scan_traced(as_of, &self.recorder)
            .map(Arc::new)
            .map_err(|e| match e {
                DbError::Tquel(t) => t,
                DbError::Core(c) => TquelError::Core(c),
                other => TquelError::Semantic(other.to_string()),
            })?;
        {
            // A coordinate strictly below the next commit time can never
            // be rewritten (transaction time is append-only and the
            // commit clock is monotone), so the entry is frozen: it
            // outlives commit epoch bumps and only structural changes
            // drop it.
            let frozen = match as_of {
                Some(AsOfSpec::At(t)) => *t < self.txn.peek_now(),
                Some(AsOfSpec::Through(_, t2)) => *t2 < self.txn.peek_now(),
                None => false,
            };
            let mut cache = self.cache.lock();
            let before = cache.stats();
            cache.insert(relation, as_of, Arc::clone(&rows), frozen);
            if cache.stats().evictions > before.evictions {
                self.recorder.count(|m| &m.cache_evictions);
            }
        }
        span.rows_out(rows.len() as u64);
        Ok(rows)
    }

    fn estimated_rows(&self, relation: &str) -> Option<u64> {
        // The latest `analyze` sample's current-row count — `scan(None)`
        // yields current rows in every class, so "rows" (not "versions")
        // is the comparable estimate.  Never-analyzed relations (and all
        // sys$ telemetry) answer None.
        self.telemetry
            .latest_tablestat(relation, "rows")
            .map(|v| v.max(0) as u64)
    }
}

/// Serializable point-in-time snapshot of every engine instrument plus
/// the query-cache section, returned by [`Database::engine_stats`].
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// The metrics registry (pager, WAL, scans, rollback, commits …).
    pub metrics: MetricsSnapshot,
    /// Query-cache counters since construction.
    pub cache: CacheStats,
    /// Live query-cache entries right now.
    pub cache_entries: usize,
    /// Event-journal counters (seq, rotations, retention); `None` for
    /// in-memory databases, which have no journal.
    pub journal: Option<JournalStats>,
    /// Telemetry-subsystem counters (samples, spill, sampler state).
    pub telemetry: TelemetryStats,
}

impl EngineStats {
    /// Hand-rolled JSON object (the workspace deliberately has no
    /// serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"metrics\": {}, \"cache\": {{\"hits\": {}, \"misses\": {}, \
             \"invalidations\": {}, \"evictions\": {}, \"epoch_bumps\": {}, \
             \"frozen_hits\": {}, \"entries\": {}}}, \"journal\": {}, \"telemetry\": {}}}",
            self.metrics.to_json(),
            self.cache.hits,
            self.cache.misses,
            self.cache.invalidations,
            self.cache.evictions,
            self.cache.epoch_bumps,
            self.cache.frozen_hits,
            self.cache_entries,
            match &self.journal {
                Some(j) => j.to_json(),
                None => "null".to_string(),
            },
            self.telemetry.to_json()
        )
    }

    /// Prometheus text exposition: the registry families plus
    /// `chronos_query_cache_*`, journal, and telemetry gauges.
    pub fn to_prometheus(&self) -> String {
        let mut out = self.metrics.to_prometheus();
        for (name, v) in [
            ("query_cache_hits", self.cache.hits),
            ("query_cache_misses", self.cache.misses),
            ("query_cache_invalidations", self.cache.invalidations),
            ("query_cache_evictions", self.cache.evictions),
            ("query_cache_epoch_bumps", self.cache.epoch_bumps),
            ("query_cache_frozen_hits", self.cache.frozen_hits),
            ("query_cache_entries", self.cache_entries as u64),
            (
                "active_sessions",
                self.metrics
                    .sessions_opened
                    .saturating_sub(self.metrics.sessions_closed),
            ),
        ] {
            out.push_str(&format!(
                "# TYPE chronos_{name} gauge\nchronos_{name} {v}\n"
            ));
        }
        if let Some(j) = &self.journal {
            for (name, v) in [
                ("journal_seq", j.seq),
                ("journal_rotations", j.rotations),
                ("journal_generations", j.generations as u64),
            ] {
                out.push_str(&format!(
                    "# TYPE chronos_{name} gauge\nchronos_{name} {v}\n"
                ));
            }
        }
        for (name, v) in [
            ("telemetry_samples_taken", self.telemetry.samples_taken),
            ("telemetry_samples_spilled", self.telemetry.samples_spilled),
            (
                "telemetry_stats_retained",
                self.telemetry.stats_retained as u64,
            ),
            (
                "telemetry_sampler_running",
                u64::from(self.telemetry.sampler_running),
            ),
        ] {
            out.push_str(&format!(
                "# TYPE chronos_{name} gauge\nchronos_{name} {v}\n"
            ));
        }
        out
    }
}
