//! The database: catalog + relations + transaction clock + durability.
//!
//! A [`Database`] owns the catalog and one store per defined relation.
//! All mutation funnels through [`Database::commit`], which allocates a
//! strictly monotonic transaction time from the
//! [`TxnManager`], validates the operations, writes them ahead to the
//! shared log (durable databases), then applies them.  Reopening a
//! durable database loads the catalog image and replays the log — the
//! log *is* the temporal database, which is precisely the paper's
//! append-only transaction-time semantics.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use chronos_core::chronon::Chronon;
use chronos_core::clock::Clock;
use chronos_core::relation::HistoricalOp;
use chronos_core::schema::{RelationClass, Schema, TemporalSignature};
use chronos_core::taxonomy::DatabaseClass;
use chronos_obs::export::{Health, ObsServer};
use chronos_obs::{EventJournal, MetricsSnapshot, Recorder};
use chronos_storage::txn::TxnManager;
use chronos_storage::wal::{Wal, WalRecord};
use chronos_tquel::provider::{AsOfSpec, RelationInfo, RelationProvider, SourceRow};
use chronos_tquel::TquelError;

use crate::cache::{QueryCache, CacheStats, DEFAULT_CACHE_CAPACITY};
use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::observe::{DbObsSource, ObsBootstrap};
use crate::relation::Relation;
use crate::session::Session;

/// A ChronosDB database instance.
pub struct Database {
    catalog: Catalog,
    relations: HashMap<String, Relation>,
    txn: TxnManager,
    dir: Option<PathBuf>,
    wal: Option<Wal>,
    /// Memoized relation scans ([`RelationProvider::scan`] takes
    /// `&self`, hence the mutex).  `Arc`-shared so the HTTP exporter
    /// can read cache stats without borrowing the database.
    cache: Arc<Mutex<QueryCache>>,
    /// Engine instruments and trace spans, shared with every relation
    /// store, the shared WAL, and the TQuel executor.
    recorder: Arc<Recorder>,
    /// Readiness flags served by `/healthz` + `/readyz`.
    health: Arc<Health>,
}

impl Database {
    /// Creates a volatile in-memory database.
    pub fn in_memory(clock: Arc<dyn Clock>) -> Database {
        Database {
            catalog: Catalog::new(),
            relations: HashMap::new(),
            txn: TxnManager::new(clock),
            dir: None,
            wal: None,
            cache: Arc::new(Mutex::new(QueryCache::new(DEFAULT_CACHE_CAPACITY))),
            recorder: Arc::new(Recorder::new()),
            // Nothing to recover: ready from the first instant.
            health: Arc::new(Health::ready_now()),
        }
    }

    /// Opens (creating if needed) a durable database in `dir`: loads the
    /// catalog image, replays the write-ahead log (truncating a torn
    /// tail), and resumes the transaction clock after the last replayed
    /// commit.
    pub fn open(dir: &Path, clock: Arc<dyn Clock>) -> DbResult<Database> {
        Self::open_with_obs(dir, clock, &ObsBootstrap::new())
    }

    /// [`open`](Self::open) against pre-created observability handles,
    /// so an exporter started from the same [`ObsBootstrap`] observes
    /// recovery as it happens: `/healthz` answers 503 until the
    /// catalog, checkpoint image, and WAL replay have all completed.
    pub fn open_with_obs(
        dir: &Path,
        clock: Arc<dyn Clock>,
        obs: &ObsBootstrap,
    ) -> DbResult<Database> {
        std::fs::create_dir_all(dir).map_err(chronos_storage::StorageError::from)?;
        let recorder = Arc::clone(&obs.recorder);
        // The lifecycle journal lives beside the WAL.  Journaling is
        // diagnostic: a journal that cannot be opened is skipped, never
        // a reason to refuse recovery.
        if let Ok(journal) = EventJournal::open(&dir.join("events.jsonl")) {
            recorder.set_journal(Arc::new(journal));
        }
        let catalog = Catalog::load(&dir.join("catalog"))?;
        obs.health.mark_catalog_loaded();
        recorder.emit_event(
            "recovery_start",
            &[("relations", catalog.iter().count().into())],
        );
        // Start from the checkpoint image when one exists, otherwise
        // from empty stores; either way the log suffix replays on top.
        let mut images = crate::checkpoint::load(&dir.join("checkpoint"))?.unwrap_or_default();
        obs.health.mark_checkpoint_loaded();
        let mut relations = HashMap::new();
        let mut by_id: HashMap<u32, String> = HashMap::new();
        let mut last_commit: Option<chronos_core::chronon::Chronon> = None;
        let mut observe = |t: Option<chronos_core::chronon::Chronon>| {
            if let Some(t) = t {
                last_commit = Some(match last_commit {
                    Some(prev) => prev.max_of(t),
                    None => t,
                });
            }
        };
        for (name, entry) in catalog.iter() {
            let rel = match images.remove(&entry.rel_id) {
                Some(image) => {
                    if let crate::checkpoint::RelationImage::Rollback { last_commit, .. }
                    | crate::checkpoint::RelationImage::Temporal { last_commit, .. } = &image
                    {
                        observe(*last_commit);
                    }
                    crate::checkpoint::restore(entry, image)?
                }
                None => Relation::new(entry.schema.clone(), entry.class, entry.signature),
            };
            relations.insert(name.clone(), rel);
            by_id.insert(entry.rel_id, name.clone());
        }
        let wal_path = dir.join("wal");
        let recovered = Wal::truncate_torn_tail(&wal_path)?;
        for rec in &recovered.records {
            let Some(name) = by_id.get(&rec.rel_id) else {
                continue; // relation since destroyed
            };
            let rel = relations.get_mut(name).expect("catalog and stores in sync");
            rel.apply(rec.tx_time, &rec.ops).map_err(|e| {
                DbError::Storage(chronos_storage::StorageError::Corrupt(format!(
                    "log replay failed for {name:?} at {}: {e}",
                    rec.tx_time
                )))
            })?;
            observe(Some(rec.tx_time));
        }
        obs.health.mark_wal_recovered();
        recorder.emit_event(
            "recovery",
            &[
                ("frames_replayed", recovered.records.len().into()),
                ("truncated_at", recovered.valid_len.into()),
                ("torn_bytes", recovered.torn_bytes.into()),
            ],
        );
        for rel in relations.values_mut() {
            rel.set_recorder(Arc::clone(&recorder));
        }
        let mut wal = Wal::open(&wal_path)?;
        wal.set_recorder(Arc::clone(&recorder));
        Ok(Database {
            catalog,
            relations,
            txn: TxnManager::resuming_after(clock, last_commit),
            dir: Some(dir.to_path_buf()),
            wal: Some(wal),
            cache: Arc::clone(&obs.cache),
            recorder,
            health: Arc::clone(&obs.health),
        })
    }

    /// Checkpoints the database: writes the complete physical state of
    /// every relation (all versions included — a temporal database
    /// forgets nothing) to the `checkpoint` file and truncates the
    /// write-ahead log, bounding future recovery time.  Only meaningful
    /// on durable databases.
    pub fn checkpoint(&mut self) -> DbResult<()> {
        let Some(dir) = self.dir.clone() else {
            return Err(DbError::Catalog(
                "checkpoint requires a durable database".into(),
            ));
        };
        self.recorder.emit_event(
            "db_checkpoint_start",
            &[("relations", self.relations.len().into())],
        );
        let mut images = std::collections::BTreeMap::new();
        for (name, entry) in self.catalog.iter() {
            let rel = self.relations.get(name).expect("catalog and stores in sync");
            images.insert(entry.rel_id, crate::checkpoint::capture(rel)?);
        }
        crate::checkpoint::save(&dir.join("checkpoint"), &images)?;
        let wal_bytes_truncated = match &mut self.wal {
            Some(wal) => {
                let len = wal.len().unwrap_or(0);
                wal.reset()?;
                len
            }
            None => 0,
        };
        self.recorder.emit_event(
            "db_checkpoint_finish",
            &[
                ("relations", self.relations.len().into()),
                ("wal_bytes_truncated", wal_bytes_truncated.into()),
            ],
        );
        Ok(())
    }

    /// True iff the database persists to disk.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The current reading of the database clock: the transaction time
    /// the next commit would receive.
    pub fn now(&self) -> Chronon {
        self.txn.peek_now()
    }

    /// Defines a new relation.
    pub fn create_relation(
        &mut self,
        name: &str,
        schema: Schema,
        class: RelationClass,
        signature: TemporalSignature,
    ) -> DbResult<()> {
        self.catalog
            .define(name, schema.clone(), class, signature)
            .map_err(DbError::Catalog)?;
        let mut rel = Relation::new(schema, class, signature);
        rel.set_recorder(Arc::clone(&self.recorder));
        self.relations.insert(name.to_string(), rel);
        self.bump_epoch(name, "create");
        self.persist_catalog()?;
        Ok(())
    }

    /// Drops a relation and its store.
    pub fn destroy_relation(&mut self, name: &str) -> DbResult<()> {
        if self.catalog.remove(name).is_none() {
            return Err(DbError::Catalog(format!("unknown relation {name:?}")));
        }
        self.relations.remove(name);
        self.bump_epoch(name, "destroy");
        self.persist_catalog()?;
        Ok(())
    }

    /// Invalidates cached scans of `relation` and journals why.
    fn bump_epoch(&self, relation: &str, reason: &str) {
        self.cache.lock().bump_epoch(relation);
        self.recorder.emit_event(
            "cache_epoch_bump",
            &[("relation", relation.into()), ("reason", reason.into())],
        );
    }

    fn persist_catalog(&self) -> DbResult<()> {
        if let Some(dir) = &self.dir {
            self.catalog.save(&dir.join("catalog"))?;
        }
        Ok(())
    }

    /// Names of all defined relations, in name order.
    pub fn relation_names(&self) -> Vec<String> {
        self.catalog.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Borrows a relation's store.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// The database class of a relation (Figure 10 classification).
    pub fn classify(&self, name: &str) -> Option<DatabaseClass> {
        self.catalog.get(name).map(|e| e.class.database_class())
    }

    /// Commits a transaction against one relation: allocates the
    /// transaction time, validates, logs (write-ahead), applies.
    /// Returns the transaction time.
    pub fn commit(&mut self, relation: &str, ops: &[HistoricalOp]) -> DbResult<Chronon> {
        // Clone the handle so the span's borrow doesn't pin `self`.
        let recorder = Arc::clone(&self.recorder);
        let span = recorder.span("db/commit");
        span.detail(relation.to_string());
        span.rows_in(ops.len() as u64);
        let started = std::time::Instant::now();
        if ops.is_empty() {
            return Err(DbError::Catalog("empty transaction".into()));
        }
        let entry = self
            .catalog
            .get(relation)
            .ok_or_else(|| DbError::Catalog(format!("unknown relation {relation:?}")))?;
        let rel_id = entry.rel_id;
        let rel = self
            .relations
            .get(relation)
            .expect("catalog and stores in sync");
        let tx_time = self.txn.next_commit_time();
        rel.validate(tx_time, ops)?;
        if let Some(wal) = &mut self.wal {
            wal.append(&WalRecord {
                rel_id,
                tx_time,
                ops: ops.to_vec(),
            })?;
        }
        let rel = self
            .relations
            .get_mut(relation)
            .expect("catalog and stores in sync");
        rel.apply(tx_time, ops)
            .expect("validated transaction applies");
        self.bump_epoch(relation, "commit");
        recorder.count(|m| &m.commits);
        recorder.record_latency(|m| &m.commit_latency, started.elapsed().as_nanos() as u64);
        Ok(tx_time)
    }

    /// The engine's observability handle.  Shared (behind the `Arc`)
    /// with every relation store, the WAL, and traced query execution.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Unified engine statistics: every instrument in the metrics
    /// registry plus the query-cache section.  This is the sole stats
    /// surface (the former `cache_stats` accessor is gone; read the
    /// `cache` section here instead).
    pub fn engine_stats(&self) -> EngineStats {
        crate::observe::engine_stats_from(&self.recorder, &self.cache)
    }

    /// The database's readiness flags (`/healthz` + `/readyz`).
    pub fn health(&self) -> &Arc<Health> {
        &self.health
    }

    /// Starts the embedded HTTP observability exporter on `addr`
    /// (e.g. `"127.0.0.1:9090"`, or port `:0` for an ephemeral port —
    /// read it back from [`ObsServer::addr`]).  The server owns `Arc`
    /// clones of the engine handles and keeps serving until dropped;
    /// it never borrows the database.
    pub fn serve_observability(&self, addr: &str) -> std::io::Result<ObsServer> {
        chronos_obs::export::serve(
            addr,
            Arc::new(DbObsSource {
                recorder: Arc::clone(&self.recorder),
                health: Arc::clone(&self.health),
                cache: Arc::clone(&self.cache),
            }),
        )
    }

    /// Sets the slow-query admission threshold: statements at least
    /// this slow are captured (with their span tree and counter
    /// deltas) into the recorder's slow log.  `0` captures everything;
    /// `u64::MAX` (the default) disables capture.
    pub fn set_slow_query_threshold_ns(&self, ns: u64) {
        self.recorder.slowlog().set_threshold_ns(ns);
    }

    /// Replaces the query cache with one holding `capacity` scans
    /// (0 disables caching).  Existing entries and counters are reset.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        *self.cache.lock() = QueryCache::new(capacity);
    }

    /// Materializes a derived relation under `name` — the executable
    /// form of the paper's closure property ("this derived relation is a
    /// temporal relation, so further temporal relations can be derived
    /// from it").  The new relation's class is the result's class; its
    /// rows keep their derived timestamps verbatim.  On a durable
    /// database a checkpoint is taken immediately, since derived
    /// timestamps cannot be replayed through the append-only log.
    pub fn materialize(
        &mut self,
        name: &str,
        result: &chronos_tquel::exec::ResultRelation,
    ) -> DbResult<()> {
        use chronos_core::relation::temporal::BitemporalRow;
        let class = match result.kind {
            DatabaseClass::Static => RelationClass::Static,
            DatabaseClass::StaticRollback => RelationClass::StaticRollback,
            DatabaseClass::Historical => RelationClass::Historical,
            DatabaseClass::Temporal => RelationClass::Temporal,
        };
        let schema = result.schema.clone();
        let mut relation = match class {
            RelationClass::Static => {
                let mut r = chronos_core::relation::static_rel::StaticRelation::new(schema.clone());
                for row in &result.rows {
                    r.insert(row.tuple.clone())?;
                }
                Relation::Static(r)
            }
            RelationClass::Historical => {
                let mut r = chronos_core::relation::historical::HistoricalRelation::new(
                    schema.clone(),
                    result.signature,
                );
                for row in &result.rows {
                    let validity = row.validity.ok_or_else(|| {
                        DbError::Capability("historical result row lacks valid time".into())
                    })?;
                    r.insert(row.tuple.clone(), validity)?;
                }
                Relation::Historical(r)
            }
            RelationClass::Temporal => {
                let mut rows = Vec::with_capacity(result.rows.len());
                let mut last_commit: Option<Chronon> = None;
                for row in &result.rows {
                    let validity = row.validity.ok_or_else(|| {
                        DbError::Capability("temporal result row lacks valid time".into())
                    })?;
                    let tx = row.tx.ok_or_else(|| {
                        DbError::Capability("temporal result row lacks transaction time".into())
                    })?;
                    if let Some(start) = tx.start().finite() {
                        last_commit = Some(match last_commit {
                            Some(prev) => prev.max_of(start),
                            None => start,
                        });
                    }
                    rows.push(BitemporalRow {
                        tuple: row.tuple.clone(),
                        validity,
                        tx,
                    });
                }
                let transactions = {
                    let mut starts: Vec<_> = rows.iter().map(|r| r.tx.start()).collect();
                    starts.sort();
                    starts.dedup();
                    starts.len()
                };
                Relation::Temporal(Box::new(
                    chronos_storage::table::StoredBitemporalTable::<
                        chronos_storage::pager::MemPager,
                    >::from_rows(
                        schema.clone(),
                        result.signature,
                        rows,
                        last_commit,
                        transactions,
                    )?,
                ))
            }
            RelationClass::StaticRollback => {
                return Err(DbError::Capability(
                    "query results are never rollback relations (rollback yields static results)"
                        .into(),
                ))
            }
        };
        self.catalog
            .define(name, schema, class, result.signature)
            .map_err(DbError::Catalog)?;
        relation.set_recorder(Arc::clone(&self.recorder));
        self.relations.insert(name.to_string(), relation);
        self.bump_epoch(name, "materialize");
        self.persist_catalog()?;
        // Derived timestamps aren't reproducible from the log; capture
        // them (and everything else) in a checkpoint right away.
        if self.is_durable() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Starts a session for executing TQuel programs.
    pub fn session(&mut self) -> Session<'_> {
        Session::new(self)
    }
}

impl RelationProvider for Database {
    fn info(&self, relation: &str) -> Option<RelationInfo> {
        self.catalog.get(relation).map(|e| RelationInfo {
            schema: e.schema.clone(),
            class: e.class,
            signature: e.signature,
        })
    }

    fn scan(
        &self,
        relation: &str,
        as_of: Option<&AsOfSpec>,
    ) -> Result<Arc<Vec<SourceRow>>, TquelError> {
        let span = self.recorder.span("db/scan");
        let cached = {
            let mut cache = self.cache.lock();
            let before = cache.stats();
            let got = cache.get(relation, as_of);
            // Mirror the cache's own accounting (a stale entry dropped
            // on lookup counts as an invalidation) into the registry.
            if cache.stats().invalidations > before.invalidations {
                self.recorder.count(|m| &m.cache_invalidations);
            }
            got
        };
        if let Some(rows) = cached {
            self.recorder.count(|m| &m.cache_hits);
            span.detail(format!("{relation} (cache hit)"));
            span.rows_out(rows.len() as u64);
            return Ok(rows);
        }
        self.recorder.count(|m| &m.cache_misses);
        span.detail(format!("{relation} (cache miss)"));
        let rel = self.relations.get(relation).ok_or_else(|| {
            TquelError::Semantic(format!("unknown relation {relation:?}"))
        })?;
        let rows = rel
            .scan_traced(as_of, &self.recorder)
            .map(Arc::new)
            .map_err(|e| match e {
                DbError::Tquel(t) => t,
                DbError::Core(c) => TquelError::Core(c),
                other => TquelError::Semantic(other.to_string()),
            })?;
        {
            let mut cache = self.cache.lock();
            let before = cache.stats();
            cache.insert(relation, as_of, Arc::clone(&rows));
            if cache.stats().evictions > before.evictions {
                self.recorder.count(|m| &m.cache_evictions);
            }
        }
        span.rows_out(rows.len() as u64);
        Ok(rows)
    }
}

/// Serializable point-in-time snapshot of every engine instrument plus
/// the query-cache section, returned by [`Database::engine_stats`].
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// The metrics registry (pager, WAL, scans, rollback, commits …).
    pub metrics: MetricsSnapshot,
    /// Query-cache counters since construction.
    pub cache: CacheStats,
    /// Live query-cache entries right now.
    pub cache_entries: usize,
}

impl EngineStats {
    /// Hand-rolled JSON object (the workspace deliberately has no
    /// serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"metrics\": {}, \"cache\": {{\"hits\": {}, \"misses\": {}, \
             \"invalidations\": {}, \"evictions\": {}, \"epoch_bumps\": {}, \
             \"entries\": {}}}}}",
            self.metrics.to_json(),
            self.cache.hits,
            self.cache.misses,
            self.cache.invalidations,
            self.cache.evictions,
            self.cache.epoch_bumps,
            self.cache_entries
        )
    }

    /// Prometheus text exposition: the registry families plus
    /// `chronos_query_cache_*` gauges for the cache section.
    pub fn to_prometheus(&self) -> String {
        let mut out = self.metrics.to_prometheus();
        for (name, v) in [
            ("query_cache_hits", self.cache.hits),
            ("query_cache_misses", self.cache.misses),
            ("query_cache_invalidations", self.cache.invalidations),
            ("query_cache_evictions", self.cache.evictions),
            ("query_cache_epoch_bumps", self.cache.epoch_bumps),
            ("query_cache_entries", self.cache_entries as u64),
        ] {
            out.push_str(&format!(
                "# TYPE chronos_{name} gauge\nchronos_{name} {v}\n"
            ));
        }
        out
    }
}
