//! The TQuel network endpoint: a zero-dependency TCP query service.
//!
//! [`QueryServer`] accepts connections on a `TcpListener` and gives
//! each one its own thread owning a snapshot-pinned
//! [`EngineSession`](crate::engine::EngineSession) — the wire-level
//! twin of the embedded observability exporter in `chronos-obs`
//! (single accept loop, stop-flag + connect-kick shutdown), but
//! read-write and session-oriented.
//!
//! ## Protocol
//!
//! Length-prefixed binary frames, little-endian, over one TCP stream:
//!
//! ```text
//! request:   [u32 len] [u8 opcode] [payload: len-1 bytes]
//! response:  [u32 len] [u8 status] [u8 trace_len] [trace_id] [body]
//! ```
//!
//! | opcode | payload | meaning                                      |
//! |--------|---------|----------------------------------------------|
//! | 1      | `[u8 trace_len][trace_id][UTF-8 program]` — execute  |
//! |        | under a fresh snapshot (the pin refreshes first).    |
//! |        | `trace_len 0` asks the server to mint the trace id.  |
//! | 2      | ignored — ping, answers `pong`                       |
//! | 3      | as 1, but the session keeps its existing snapshot    |
//!
//! | status | meaning                                                |
//! |--------|--------------------------------------------------------|
//! | 0      | ok — body is the rendered outcomes (CLI text)          |
//! | 1      | error — body is the error message                      |
//!
//! Every response carries the trace id the request ran under
//! (client-chosen when supplied, server-minted otherwise; empty for
//! pings and protocol errors), so clients can correlate a wire
//! response with the server's slow-query log, `sys$sessions`, and
//! events journal.
//!
//! A frame longer than [`MAX_FRAME_BYTES`] (or truncated mid-frame by
//! a hangup) is a protocol violation: the server answers one clean
//! error frame (best effort), counts it in `net_errors`, and closes.
//! Statements acknowledge only after their covering group fsync, so a
//! status-0 `append` is durable.
//!
//! [`QueryClient`] is the matching blocking client (used by the CLI's
//! `--connect` mode and the bench harness).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use chronos_obs::Recorder;
use chronos_tquel::printer::render;

use crate::engine::{Engine, EngineSession};
use crate::introspect::SessionRegistry;
use crate::session::ExecOutcome;

/// Hard cap on one frame (request or response).
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Execute a TQuel program under a fresh snapshot.
pub const OP_EXECUTE: u8 = 1;
/// Liveness probe.
pub const OP_PING: u8 = 2;
/// Execute a TQuel program under the session's existing snapshot.
pub const OP_EXECUTE_PINNED: u8 = 3;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// How often blocked connection reads re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// One response from the query service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// True iff the request succeeded (status byte 0).
    pub ok: bool,
    /// The trace id the request ran under — the client-chosen id when
    /// one was supplied, the server-minted one otherwise (empty for
    /// pings and protocol errors).
    pub trace_id: String,
    /// Rendered outcomes on success, the error message on failure.
    pub body: String,
}

/// A running TQuel query service; shuts down when dropped.
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<StdMutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl QueryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves TQuel sessions over `engine` from background threads —
    /// one acceptor plus one thread per connection.
    pub fn serve(engine: Arc<Engine>, addr: &str) -> std::io::Result<QueryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(StdMutex::new(Vec::new()));
        let stop_flag = Arc::clone(&stop);
        let conn_reg = Arc::clone(&conns);
        let accept = std::thread::Builder::new()
            .name("chronos-serve".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let engine = Arc::clone(&engine);
                    let stop = Arc::clone(&stop_flag);
                    let handle = std::thread::Builder::new()
                        .name("chronos-conn".to_string())
                        .spawn(move || {
                            // A dropped connection is the client's
                            // problem; the server keeps accepting.
                            let _ = serve_connection(stream, &engine, &stop);
                        });
                    if let Ok(handle) = handle {
                        conn_reg.lock().expect("conns lock").push(handle);
                    }
                }
            })?;
        Ok(QueryServer {
            addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, disconnects every session, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = self.conns.lock().expect("conns lock").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

impl std::fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryServer")
            .field("addr", &self.addr)
            .finish()
    }
}

/// One connection's request loop: owns a pinned session for its whole
/// lifetime.  Returns when the peer hangs up, violates the protocol,
/// or the server stops.
fn serve_connection(
    mut stream: TcpStream,
    engine: &Arc<Engine>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let recorder = Arc::clone(engine.recorder());
    let registry = Arc::clone(engine.session_registry());
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let mut session = engine.session();
    let conn_id = registry.register_connection(peer, session.session_id());
    let result = serve_requests(
        &mut stream,
        stop,
        &mut session,
        &recorder,
        &registry,
        conn_id,
    );
    registry.deregister_connection(conn_id);
    result
}

/// The per-connection request loop, factored out so the registry entry
/// is removed on every exit path.
fn serve_requests(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    session: &mut EngineSession,
    recorder: &Recorder,
    registry: &SessionRegistry,
    conn_id: u64,
) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (opcode, payload) = match read_frame(stream, stop, &mut buf) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Protocol violation (oversized length word, truncated
                // frame): answer one clean error frame — best effort,
                // the peer may already be gone — count it, and close.
                recorder.count(|m| &m.net_requests);
                recorder.count(|m| &m.net_errors);
                registry.record_conn_io(conn_id, 0, 0);
                let body = format!("protocol error: {e}");
                let _ = write_response(stream, STATUS_ERR, "", body.as_bytes());
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        let frame_in = (4 + 1 + payload.len()) as u64;
        recorder.count(|m| &m.net_requests);
        recorder.count_n(|m| &m.net_bytes_in, frame_in);
        let (status, trace, body) = match opcode {
            OP_PING => (STATUS_OK, String::new(), "pong".to_string()),
            OP_EXECUTE | OP_EXECUTE_PINNED => match decode_execute(&payload) {
                Ok((trace_id, src)) => {
                    if opcode == OP_EXECUTE {
                        // Each request is its own read transaction:
                        // see everything durable up to now, then hold
                        // that snapshot for the whole program.
                        session.refresh();
                    }
                    session.set_trace_id(trace_id);
                    let result = session.run(src);
                    // `run` resolved the trace id (client-chosen or
                    // minted); echo it either way so the client can
                    // correlate even a failed request.
                    let trace = session.last_trace_id().to_string();
                    match result {
                        Ok(outcomes) => (STATUS_OK, trace, render_outcomes(&outcomes)),
                        Err(e) => (STATUS_ERR, trace, e.to_string()),
                    }
                }
                Err(msg) => (STATUS_ERR, String::new(), msg),
            },
            other => (STATUS_ERR, String::new(), format!("unknown opcode {other}")),
        };
        if status == STATUS_ERR {
            recorder.count(|m| &m.net_errors);
        }
        let frame_out = (4 + 1 + 1 + trace.len() + body.len()) as u64;
        write_response(stream, status, &trace, body.as_bytes())?;
        recorder.count_n(|m| &m.net_bytes_out, frame_out);
        registry.record_conn_io(conn_id, frame_in, frame_out);
    }
}

/// Splits an execute payload into its trace-id prefix and program text.
fn decode_execute(payload: &[u8]) -> Result<(&str, &str), String> {
    let Some((&tlen, rest)) = payload.split_first() else {
        return Err("empty execute payload".to_string());
    };
    let tlen = tlen as usize;
    if rest.len() < tlen {
        return Err(format!("trace id length {tlen} exceeds the payload"));
    }
    let trace =
        std::str::from_utf8(&rest[..tlen]).map_err(|_| "trace id is not UTF-8".to_string())?;
    let src = std::str::from_utf8(&rest[tlen..]).map_err(|_| "payload is not UTF-8".to_string())?;
    Ok((trace, src))
}

/// Writes one `[status][trace_len][trace_id][body]` response frame.
fn write_response(
    stream: &mut TcpStream,
    status: u8,
    trace: &str,
    body: &[u8],
) -> std::io::Result<()> {
    debug_assert!(trace.len() <= u8::MAX as usize);
    let mut payload = Vec::with_capacity(1 + trace.len() + body.len());
    payload.push(trace.len() as u8);
    payload.extend_from_slice(trace.as_bytes());
    payload.extend_from_slice(body);
    write_frame(stream, status, &payload)
}

/// Extracts the next complete frame from `stream`, buffering partial
/// reads in `buf` and re-checking `stop` every [`POLL_INTERVAL`].
/// `Ok(None)` means orderly end (EOF between frames, or server stop);
/// EOF with a partial frame buffered is an `InvalidData` error.
fn read_frame(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    buf: &mut Vec<u8>,
) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    loop {
        if buf.len() >= 4 {
            let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
            if len == 0 || len > MAX_FRAME_BYTES {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad frame length {len}"),
                ));
            }
            if buf.len() >= 4 + len {
                let opcode = buf[4];
                let payload = buf[5..4 + len].to_vec();
                buf.drain(..4 + len);
                return Ok(Some((opcode, payload)));
            }
        }
        if stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                // The peer hung up mid-frame.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("truncated frame ({} bytes buffered at EOF)", buf.len()),
                ));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

fn write_frame(stream: &mut TcpStream, head: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = 1 + payload.len();
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame too large ({len} bytes)"),
        ));
    }
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(head);
    frame.extend_from_slice(payload);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Renders a statement batch's outcomes the way the CLI prints them —
/// the response body of a status-0 execute.
pub fn render_outcomes(outcomes: &[ExecOutcome]) -> String {
    let mut out = String::new();
    for outcome in outcomes {
        match outcome {
            ExecOutcome::Retrieved(rel) => {
                out.push_str(&render(rel));
                out.push_str(&format!(
                    "({} row{})\n",
                    rel.len(),
                    if rel.len() == 1 { "" } else { "s" }
                ));
            }
            ExecOutcome::Appended(t) => {
                out.push_str(&format!(
                    "appended (transaction time {})\n",
                    chronos_core::calendar::Date::from_chronon(*t)
                ));
            }
            ExecOutcome::Materialized { relation, rows } => {
                out.push_str(&format!("materialized {rows} row(s) into {relation}\n"));
            }
            ExecOutcome::Deleted(n) => out.push_str(&format!("deleted {n} row(s)\n")),
            ExecOutcome::Replaced(n) => out.push_str(&format!("replaced {n} row(s)\n")),
            ExecOutcome::Created => out.push_str("created\n"),
            ExecOutcome::Destroyed => out.push_str("destroyed\n"),
            ExecOutcome::Explained { profile, report } => {
                out.push_str(&format!(
                    "{} plan:\n",
                    if *profile { "profile" } else { "explain" }
                ));
                for line in report.lines() {
                    out.push_str(&format!("  {line}\n"));
                }
            }
            ExecOutcome::Analyzed { relation, stats } => {
                out.push_str(&format!(
                    "analyzed {relation} ({stats} statistic(s) into sys$tablestats)\n"
                ));
            }
            ExecOutcome::Frozen {
                relation,
                versions,
                chains,
                file_bytes,
            } => {
                if *versions == 0 {
                    out.push_str(&format!("froze {relation}: nothing freezable\n"));
                } else {
                    out.push_str(&format!(
                        "froze {relation}: {versions} version(s) in {chains} chain(s), \
                         {file_bytes} bytes\n"
                    ));
                }
            }
            ExecOutcome::Declared => {}
        }
    }
    out
}

/// A blocking client for the query service: one TCP connection, one
/// server-side session.
pub struct QueryClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl QueryClient {
    /// Connects to a running [`QueryServer`].
    pub fn connect(addr: &str) -> std::io::Result<QueryClient> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
        let stream = TcpStream::connect_timeout(&sock, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        // Generous: an execute blocks on its covering group fsync.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(QueryClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Executes a TQuel program under a fresh snapshot; the server
    /// mints the trace id (echoed in [`Response::trace_id`]).
    pub fn execute(&mut self, src: &str) -> std::io::Result<Response> {
        self.execute_traced(src, "")
    }

    /// [`execute`](Self::execute) under a client-chosen trace id
    /// (at most 255 bytes; empty asks the server to mint one), for
    /// end-to-end correlation with the server's slow-query log,
    /// `sys$sessions`, and events journal.
    pub fn execute_traced(&mut self, src: &str, trace_id: &str) -> std::io::Result<Response> {
        self.request(OP_EXECUTE, &encode_execute(src, trace_id)?)
    }

    /// Executes a TQuel program under the session's pinned snapshot
    /// (taken at connect, or at the last plain `execute`).
    pub fn execute_pinned(&mut self, src: &str) -> std::io::Result<Response> {
        self.request(OP_EXECUTE_PINNED, &encode_execute(src, "")?)
    }

    /// Liveness probe; true iff the server answered `pong`.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        let r = self.request(OP_PING, b"")?;
        Ok(r.ok && r.body == "pong")
    }

    fn request(&mut self, opcode: u8, payload: &[u8]) -> std::io::Result<Response> {
        write_frame(&mut self.stream, opcode, payload)?;
        let (status, payload) = self.read_response()?;
        // Every response leads with its trace-id prefix.
        let Some((&tlen, rest)) = payload.split_first() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "empty response frame",
            ));
        };
        let tlen = tlen as usize;
        if rest.len() < tlen {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response trace id length {tlen} exceeds the payload"),
            ));
        }
        Ok(Response {
            ok: status == STATUS_OK,
            trace_id: String::from_utf8_lossy(&rest[..tlen]).into_owned(),
            body: String::from_utf8_lossy(&rest[tlen..]).into_owned(),
        })
    }

    fn read_response(&mut self) -> std::io::Result<(u8, Vec<u8>)> {
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
                if len == 0 || len > MAX_FRAME_BYTES {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad frame length {len}"),
                    ));
                }
                if self.buf.len() >= 4 + len {
                    let status = self.buf[4];
                    let payload = self.buf[5..4 + len].to_vec();
                    self.buf.drain(..4 + len);
                    return Ok((status, payload));
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

/// Builds an execute payload: `[u8 trace_len][trace_id][program]`.
fn encode_execute(src: &str, trace_id: &str) -> std::io::Result<Vec<u8>> {
    if trace_id.len() > u8::MAX as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("trace id too long ({} bytes, max 255)", trace_id.len()),
        ));
    }
    let mut payload = Vec::with_capacity(1 + trace_id.len() + src.len());
    payload.push(trace_id.len() as u8);
    payload.extend_from_slice(trace_id.as_bytes());
    payload.extend_from_slice(src.as_bytes());
    Ok(payload)
}

impl std::fmt::Debug for QueryClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryClient").finish()
    }
}
