//! The TQuel network endpoint: a zero-dependency TCP query service.
//!
//! [`QueryServer`] accepts connections on a `TcpListener` and gives
//! each one its own thread owning a snapshot-pinned
//! [`EngineSession`](crate::engine::EngineSession) — the wire-level
//! twin of the embedded observability exporter in `chronos-obs`
//! (single accept loop, stop-flag + connect-kick shutdown), but
//! read-write and session-oriented.
//!
//! ## Protocol
//!
//! Length-prefixed binary frames, little-endian, over one TCP stream:
//!
//! ```text
//! request:   [u32 len] [u8 opcode] [payload: len-1 bytes]
//! response:  [u32 len] [u8 status] [payload: len-1 bytes]
//! ```
//!
//! | opcode | meaning                                                |
//! |--------|--------------------------------------------------------|
//! | 1      | execute: payload is a UTF-8 TQuel program; the pin is  |
//! |        | refreshed first (each request begins a read snapshot)  |
//! | 2      | ping: payload ignored, answers `pong`                  |
//! | 3      | execute pinned: as 1, but the session keeps the        |
//! |        | snapshot it pinned at connect (or last refreshed)      |
//!
//! | status | meaning                                                |
//! |--------|--------------------------------------------------------|
//! | 0      | ok — payload is the rendered outcomes (CLI text)       |
//! | 1      | error — payload is the error message                   |
//!
//! A frame longer than [`MAX_FRAME_BYTES`] is a protocol violation and
//! closes the connection.  Statements acknowledge only after their
//! covering group fsync, so a status-0 `append` is durable.
//!
//! [`QueryClient`] is the matching blocking client (used by the CLI's
//! `--connect` mode and the bench harness).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use chronos_tquel::printer::render;

use crate::engine::Engine;
use crate::session::ExecOutcome;

/// Hard cap on one frame (request or response).
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Execute a TQuel program under a fresh snapshot.
pub const OP_EXECUTE: u8 = 1;
/// Liveness probe.
pub const OP_PING: u8 = 2;
/// Execute a TQuel program under the session's existing snapshot.
pub const OP_EXECUTE_PINNED: u8 = 3;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// How often blocked connection reads re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// One response from the query service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// True iff the request succeeded (status byte 0).
    pub ok: bool,
    /// Rendered outcomes on success, the error message on failure.
    pub body: String,
}

/// A running TQuel query service; shuts down when dropped.
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<StdMutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl QueryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves TQuel sessions over `engine` from background threads —
    /// one acceptor plus one thread per connection.
    pub fn serve(engine: Arc<Engine>, addr: &str) -> std::io::Result<QueryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(StdMutex::new(Vec::new()));
        let stop_flag = Arc::clone(&stop);
        let conn_reg = Arc::clone(&conns);
        let accept = std::thread::Builder::new()
            .name("chronos-serve".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let engine = Arc::clone(&engine);
                    let stop = Arc::clone(&stop_flag);
                    let handle = std::thread::Builder::new()
                        .name("chronos-conn".to_string())
                        .spawn(move || {
                            // A dropped connection is the client's
                            // problem; the server keeps accepting.
                            let _ = serve_connection(stream, &engine, &stop);
                        });
                    if let Ok(handle) = handle {
                        conn_reg.lock().expect("conns lock").push(handle);
                    }
                }
            })?;
        Ok(QueryServer {
            addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, disconnects every session, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = self.conns.lock().expect("conns lock").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_and_join();
        }
    }
}

impl std::fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryServer")
            .field("addr", &self.addr)
            .finish()
    }
}

/// One connection's request loop: owns a pinned session for its whole
/// lifetime.  Returns when the peer hangs up, violates the protocol,
/// or the server stops.
fn serve_connection(
    mut stream: TcpStream,
    engine: &Arc<Engine>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut session = engine.session();
    let mut buf: Vec<u8> = Vec::new();
    while let Some((opcode, payload)) = read_frame(&mut stream, stop, &mut buf)? {
        let (status, body) = match opcode {
            OP_PING => (STATUS_OK, "pong".to_string()),
            OP_EXECUTE | OP_EXECUTE_PINNED => match String::from_utf8(payload) {
                Ok(src) => {
                    if opcode == OP_EXECUTE {
                        // Each request is its own read transaction:
                        // see everything durable up to now, then hold
                        // that snapshot for the whole program.
                        session.refresh();
                    }
                    match session.run(&src) {
                        Ok(outcomes) => (STATUS_OK, render_outcomes(&outcomes)),
                        Err(e) => (STATUS_ERR, e.to_string()),
                    }
                }
                Err(_) => (STATUS_ERR, "payload is not UTF-8".to_string()),
            },
            other => (STATUS_ERR, format!("unknown opcode {other}")),
        };
        write_frame(&mut stream, status, body.as_bytes())?;
    }
    Ok(())
}

/// Extracts the next complete frame from `stream`, buffering partial
/// reads in `buf` and re-checking `stop` every [`POLL_INTERVAL`].
/// `Ok(None)` means orderly end (EOF or server stop).
fn read_frame(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    buf: &mut Vec<u8>,
) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    loop {
        if buf.len() >= 4 {
            let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
            if len == 0 || len > MAX_FRAME_BYTES {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad frame length {len}"),
                ));
            }
            if buf.len() >= 4 + len {
                let opcode = buf[4];
                let payload = buf[5..4 + len].to_vec();
                buf.drain(..4 + len);
                return Ok(Some((opcode, payload)));
            }
        }
        if stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

fn write_frame(stream: &mut TcpStream, head: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = 1 + payload.len();
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame too large ({len} bytes)"),
        ));
    }
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(head);
    frame.extend_from_slice(payload);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Renders a statement batch's outcomes the way the CLI prints them —
/// the response body of a status-0 execute.
pub fn render_outcomes(outcomes: &[ExecOutcome]) -> String {
    let mut out = String::new();
    for outcome in outcomes {
        match outcome {
            ExecOutcome::Retrieved(rel) => {
                out.push_str(&render(rel));
                out.push_str(&format!(
                    "({} row{})\n",
                    rel.len(),
                    if rel.len() == 1 { "" } else { "s" }
                ));
            }
            ExecOutcome::Appended(t) => {
                out.push_str(&format!(
                    "appended (transaction time {})\n",
                    chronos_core::calendar::Date::from_chronon(*t)
                ));
            }
            ExecOutcome::Materialized { relation, rows } => {
                out.push_str(&format!("materialized {rows} row(s) into {relation}\n"));
            }
            ExecOutcome::Deleted(n) => out.push_str(&format!("deleted {n} row(s)\n")),
            ExecOutcome::Replaced(n) => out.push_str(&format!("replaced {n} row(s)\n")),
            ExecOutcome::Created => out.push_str("created\n"),
            ExecOutcome::Destroyed => out.push_str("destroyed\n"),
            ExecOutcome::Explained { profile, report } => {
                out.push_str(&format!(
                    "{} plan:\n",
                    if *profile { "profile" } else { "explain" }
                ));
                for line in report.lines() {
                    out.push_str(&format!("  {line}\n"));
                }
            }
            ExecOutcome::Declared => {}
        }
    }
    out
}

/// A blocking client for the query service: one TCP connection, one
/// server-side session.
pub struct QueryClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl QueryClient {
    /// Connects to a running [`QueryServer`].
    pub fn connect(addr: &str) -> std::io::Result<QueryClient> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
        let stream = TcpStream::connect_timeout(&sock, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        // Generous: an execute blocks on its covering group fsync.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(QueryClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Executes a TQuel program under a fresh snapshot.
    pub fn execute(&mut self, src: &str) -> std::io::Result<Response> {
        self.request(OP_EXECUTE, src.as_bytes())
    }

    /// Executes a TQuel program under the session's pinned snapshot
    /// (taken at connect, or at the last plain `execute`).
    pub fn execute_pinned(&mut self, src: &str) -> std::io::Result<Response> {
        self.request(OP_EXECUTE_PINNED, src.as_bytes())
    }

    /// Liveness probe; true iff the server answered `pong`.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        let r = self.request(OP_PING, b"")?;
        Ok(r.ok && r.body == "pong")
    }

    fn request(&mut self, opcode: u8, payload: &[u8]) -> std::io::Result<Response> {
        write_frame(&mut self.stream, opcode, payload)?;
        let (status, payload) = self.read_response()?;
        Ok(Response {
            ok: status == STATUS_OK,
            body: String::from_utf8_lossy(&payload).into_owned(),
        })
    }

    fn read_response(&mut self) -> std::io::Result<(u8, Vec<u8>)> {
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
                if len == 0 || len > MAX_FRAME_BYTES {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad frame length {len}"),
                    ));
                }
                if self.buf.len() >= 4 + len {
                    let status = self.buf[4];
                    let payload = self.buf[5..4 + len].to_vec();
                    self.buf.drain(..4 + len);
                    return Ok((status, payload));
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

impl std::fmt::Debug for QueryClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryClient").finish()
    }
}
