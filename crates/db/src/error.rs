//! Error types for the database facade.

use std::fmt;

use chronos_core::CoreError;
use chronos_storage::StorageError;
use chronos_tquel::TquelError;

/// Result alias for database operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors surfaced by the database facade.
#[derive(Debug)]
pub enum DbError {
    /// Catalog errors: unknown or duplicate relation names, DDL misuse.
    Catalog(String),
    /// A capability violation: the statement needs a time the relation's
    /// class does not support (e.g. `as of` on a historical relation).
    Capability(String),
    /// The concurrent write service cannot take the request (stopped,
    /// or poisoned by an earlier durability failure).
    Service(String),
    /// A query-language error.
    Tquel(TquelError),
    /// A relation-model error.
    Core(CoreError),
    /// A storage-layer error.
    Storage(StorageError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Capability(m) => write!(f, "capability violation: {m}"),
            DbError::Service(m) => write!(f, "service error: {m}"),
            DbError::Tquel(e) => write!(f, "{e}"),
            DbError::Core(e) => write!(f, "{e}"),
            DbError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Tquel(e) => Some(e),
            DbError::Core(e) => Some(e),
            DbError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TquelError> for DbError {
    fn from(e: TquelError) -> Self {
        DbError::Tquel(e)
    }
}

impl From<CoreError> for DbError {
    fn from(e: CoreError) -> Self {
        DbError::Core(e)
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nested_errors() {
        let e = DbError::Catalog("relation \"x\" already exists".into());
        assert!(e.to_string().contains("already exists"));
        let e: DbError = CoreError::Invalid("boom".into()).into();
        assert!(e.to_string().contains("boom"));
    }
}
