//! The embedded HTTP observability exporter.
//!
//! A zero-dependency HTTP/1.1 server over [`std::net::TcpListener`]
//! serving eleven read-only endpoints:
//!
//! | endpoint               | body                                   | status    |
//! |------------------------|----------------------------------------|-----------|
//! | `/metrics`             | Prometheus text exposition             | 200       |
//! | `/stats`               | engine stats JSON                      | 200       |
//! | `/slow`                | slow-query log JSON                    | 200       |
//! | `/queries`             | query-fingerprint workload JSON        | 200       |
//! | `/sessions`            | live session/connection JSON           | 200       |
//! | `/events?n=N`          | last N event-journal entries (JSON)    | 200       |
//! | `/history?metric=&n=`  | sampled metric history (JSON)          | 200       |
//! | `/wal`                 | physical WAL statistics (JSON)         | 200       |
//! | `/storage`             | per-relation page/heap stats (JSON)    | 200       |
//! | `/healthz`             | `ok` / `starting`                      | 200 / 503 |
//! | `/readyz`              | readiness detail JSON                  | 200 / 503 |
//!
//! The server knows nothing about the database: it reads everything
//! through the [`ObsSource`] trait, which the `db` crate implements over
//! its `Arc`-shared recorder, health state, and query cache.  Requests
//! are handled one at a time on a single background thread — the
//! endpoints are all cheap snapshot reads, and a scrape interval is
//! orders of magnitude longer than a response.
//!
//! [`http_get`] is the matching `curl`-equivalent raw-TCP client, used
//! by the CLI helper mode, the integration tests, and `check.sh`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Engine readiness, flag by flag.  `/healthz` and `/readyz` flip from
/// 503 to 200 once every stage of recovery has completed; the `db` layer
/// marks the flags as `Database::open` progresses.
#[derive(Debug, Default)]
pub struct Health {
    catalog_loaded: AtomicBool,
    checkpoint_loaded: AtomicBool,
    wal_recovered: AtomicBool,
    // Informational: whether the background stats sampler is running.
    // Deliberately not part of ready() — a database without a sampler
    // is fully serviceable.
    sampler_running: AtomicBool,
}

impl Health {
    /// All flags down: the engine is still recovering.
    pub fn starting() -> Health {
        Health::default()
    }

    /// All flags up (an in-memory database has nothing to recover).
    pub fn ready_now() -> Health {
        let h = Health::default();
        h.mark_catalog_loaded();
        h.mark_checkpoint_loaded();
        h.mark_wal_recovered();
        h
    }

    pub fn mark_catalog_loaded(&self) {
        self.catalog_loaded.store(true, Ordering::Release);
    }

    pub fn mark_checkpoint_loaded(&self) {
        self.checkpoint_loaded.store(true, Ordering::Release);
    }

    pub fn mark_wal_recovered(&self) {
        self.wal_recovered.store(true, Ordering::Release);
    }

    /// Records whether the background stats sampler is running (shown
    /// in `/readyz`, never gates readiness).
    pub fn mark_sampler(&self, running: bool) {
        self.sampler_running.store(running, Ordering::Release);
    }

    /// True while the background stats sampler thread is alive.
    pub fn sampler_running(&self) -> bool {
        self.sampler_running.load(Ordering::Acquire)
    }

    /// True once catalog, checkpoint image, and WAL recovery are done.
    pub fn ready(&self) -> bool {
        self.catalog_loaded.load(Ordering::Acquire)
            && self.checkpoint_loaded.load(Ordering::Acquire)
            && self.wal_recovered.load(Ordering::Acquire)
    }

    /// Readiness detail (the `/readyz` body).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ready\": {}, \"catalog_loaded\": {}, \"checkpoint_loaded\": {}, \
             \"wal_recovered\": {}, \"sampler_running\": {}}}",
            self.ready(),
            self.catalog_loaded.load(Ordering::Acquire),
            self.checkpoint_loaded.load(Ordering::Acquire),
            self.wal_recovered.load(Ordering::Acquire),
            self.sampler_running.load(Ordering::Acquire)
        )
    }
}

/// What the exporter serves.  Implemented by the `db` crate over its
/// shared engine handles; the server itself holds no database borrow.
pub trait ObsSource: Send + Sync {
    /// `/metrics`: Prometheus text exposition.
    fn prometheus(&self) -> String;
    /// `/stats`: engine statistics JSON.
    fn stats_json(&self) -> String;
    /// `/slow`: slow-query log JSON.
    fn slow_json(&self) -> String;
    /// `/queries`: query-fingerprint workload aggregates JSON.
    /// Sources without a fingerprint store report an empty list.
    fn queries_json(&self) -> String {
        "{\"queries\": []}".to_string()
    }
    /// `/events?n=N`: last `n` event-journal entries as a JSON array of
    /// objects.  Sources without a journal return `{"events": []}`.
    fn events_json(&self, n: usize) -> String {
        let _ = n;
        "{\"events\": []}".to_string()
    }
    /// `/history?metric=&n=`: the last `n` sampled values of `metric`
    /// from the telemetry store, as `{"metric": ..., "samples": [...]}`.
    fn history_json(&self, metric: &str, n: usize) -> String {
        let _ = n;
        format!(
            "{{\"metric\": \"{}\", \"samples\": []}}",
            crate::events::escape_json(metric)
        )
    }
    /// `/sessions`: live session and connection introspection JSON.
    /// Sources without an engine session registry report empty lists.
    fn sessions_json(&self) -> String {
        "{\"sessions\": [], \"connections\": []}".to_string()
    }
    /// `/wal`: physical WAL statistics (the `sys$wal` rows as JSON).
    /// Sources without a physical snapshot report an empty list.
    fn wal_json(&self) -> String {
        "{\"wal\": []}".to_string()
    }
    /// `/storage`: per-relation page/heap statistics (the `sys$pages`
    /// rows as JSON).  Sources without a physical snapshot report an
    /// empty list.
    fn storage_json(&self) -> String {
        "{\"storage\": []}".to_string()
    }
    /// Readiness for `/healthz` + `/readyz`.
    fn health(&self) -> &Health;
}

/// A running exporter; shuts down when dropped.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serves
/// the observability endpoints from a background thread.
pub fn serve(addr: &str, source: Arc<dyn ObsSource>) -> std::io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("chronos-obs".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = stream {
                    // Diagnostic plane: a failed response never matters
                    // beyond the one scrape that lost it.
                    let _ = handle_connection(stream, source.as_ref());
                }
            }
        })?;
    Ok(ObsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn handle_connection(mut stream: TcpStream, source: &dyn ObsSource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request_line = read_request_line(&mut stream)?;
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            return respond(
                &mut stream,
                400,
                "Bad Request",
                "text/plain",
                "bad request\n",
            )
        }
    };
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    const PROM: &str = "text/plain; version=0.0.4";
    const JSON: &str = "application/json";
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    match path {
        "/metrics" => respond(&mut stream, 200, "OK", PROM, &source.prometheus()),
        "/stats" => respond(&mut stream, 200, "OK", JSON, &source.stats_json()),
        "/slow" => respond(&mut stream, 200, "OK", JSON, &source.slow_json()),
        "/queries" => respond(&mut stream, 200, "OK", JSON, &source.queries_json()),
        "/sessions" => respond(&mut stream, 200, "OK", JSON, &source.sessions_json()),
        "/wal" => respond(&mut stream, 200, "OK", JSON, &source.wal_json()),
        "/storage" => respond(&mut stream, 200, "OK", JSON, &source.storage_json()),
        "/events" => {
            let n = query_param(query, "n")
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_EVENTS_TAIL);
            respond(&mut stream, 200, "OK", JSON, &source.events_json(n))
        }
        "/history" => match query_param(query, "metric") {
            Some(metric) if !metric.is_empty() => {
                let n = query_param(query, "n")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(DEFAULT_HISTORY_TAIL);
                respond(
                    &mut stream,
                    200,
                    "OK",
                    JSON,
                    &source.history_json(&metric, n),
                )
            }
            _ => respond(
                &mut stream,
                400,
                "Bad Request",
                "text/plain",
                "missing ?metric= parameter\n",
            ),
        },
        "/healthz" => {
            if source.health().ready() {
                respond(&mut stream, 200, "OK", "text/plain", "ok\n")
            } else {
                respond(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    "starting\n",
                )
            }
        }
        "/readyz" => {
            let health = source.health();
            let body = health.to_json();
            if health.ready() {
                respond(&mut stream, 200, "OK", JSON, &body)
            } else {
                respond(&mut stream, 503, "Service Unavailable", JSON, &body)
            }
        }
        _ => respond(&mut stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

/// Default tail length for `/events` when `?n=` is absent.
pub const DEFAULT_EVENTS_TAIL: usize = 64;

/// Default tail length for `/history` when `?n=` is absent.
pub const DEFAULT_HISTORY_TAIL: usize = 32;

/// Extracts `key` from an `a=1&b=2` query string (no percent-decoding:
/// the observability parameters are metric names and counts).
fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then(|| v.to_string())
    })
}

/// Reads up to the end of the request head (or 8 KiB) and returns the
/// request line.
fn read_request_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    Ok(head.lines().next().unwrap_or("").to_string())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    // Bodies are newline-terminated so terminal consumers (curl, the
    // CLI's `\obs`) leave the cursor on a fresh line.
    let newline = if body.ends_with('\n') { "" } else { "\n" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len() + newline.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.write_all(newline.as_bytes())?;
    stream.flush()
}

/// `curl`-equivalent raw-TCP GET: returns `(status, body)`.  The shared
/// test helper behind the CLI's `--get` mode, the integration tests, and
/// the `check.sh` smoke probes.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = match response.find("\r\n\r\n") {
        Some(at) => response[at + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeSource {
        health: Health,
    }

    impl ObsSource for FakeSource {
        fn prometheus(&self) -> String {
            "# TYPE chronos_commits counter\nchronos_commits 7\n".to_string()
        }
        fn stats_json(&self) -> String {
            "{\"metrics\": {}}".to_string()
        }
        fn slow_json(&self) -> String {
            "[]".to_string()
        }
        fn events_json(&self, n: usize) -> String {
            format!("{{\"requested\": {n}, \"events\": []}}")
        }
        fn history_json(&self, metric: &str, n: usize) -> String {
            format!("{{\"metric\": \"{metric}\", \"requested\": {n}, \"samples\": []}}")
        }
        fn health(&self) -> &Health {
            &self.health
        }
    }

    #[test]
    fn serves_every_endpoint() {
        let server = serve(
            "127.0.0.1:0",
            Arc::new(FakeSource {
                health: Health::ready_now(),
            }),
        )
        .unwrap();
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("chronos_commits 7"));
        // JSON bodies come back newline-terminated.
        assert_eq!(
            http_get(&addr, "/stats").unwrap(),
            (200, "{\"metrics\": {}}\n".into())
        );
        assert_eq!(http_get(&addr, "/slow").unwrap(), (200, "[]\n".into()));
        // The default queries body for sources without a fingerprint store.
        assert_eq!(
            http_get(&addr, "/queries").unwrap(),
            (200, "{\"queries\": []}\n".into())
        );
        // The default sessions body for sources without a registry.
        assert_eq!(
            http_get(&addr, "/sessions").unwrap(),
            (200, "{\"sessions\": [], \"connections\": []}\n".into())
        );
        // The default physical-storage bodies for sources without a
        // snapshot store.
        assert_eq!(
            http_get(&addr, "/wal").unwrap(),
            (200, "{\"wal\": []}\n".into())
        );
        assert_eq!(
            http_get(&addr, "/storage").unwrap(),
            (200, "{\"storage\": []}\n".into())
        );
        assert_eq!(http_get(&addr, "/healthz").unwrap(), (200, "ok\n".into()));
        let (status, body) = http_get(&addr, "/readyz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ready\": true"));
        assert!(body.contains("\"sampler_running\": false"));
        assert_eq!(http_get(&addr, "/nope").unwrap().0, 404);
        server.shutdown();
    }

    #[test]
    fn query_string_endpoints_route_and_validate() {
        let server = serve(
            "127.0.0.1:0",
            Arc::new(FakeSource {
                health: Health::ready_now(),
            }),
        )
        .unwrap();
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/events?n=5").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"requested\": 5"));
        // Default n when the parameter is absent or malformed.
        let (_, body) = http_get(&addr, "/events").unwrap();
        assert!(body.contains(&format!("\"requested\": {DEFAULT_EVENTS_TAIL}")));
        let (_, body) = http_get(&addr, "/events?n=bogus").unwrap();
        assert!(body.contains(&format!("\"requested\": {DEFAULT_EVENTS_TAIL}")));
        let (status, body) = http_get(&addr, "/history?metric=commits&n=3").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"metric\": \"commits\""));
        assert!(body.contains("\"requested\": 3"));
        // metric is mandatory.
        assert_eq!(http_get(&addr, "/history").unwrap().0, 400);
        assert_eq!(http_get(&addr, "/history?n=3").unwrap().0, 400);
        server.shutdown();
    }

    #[test]
    fn unready_health_reports_503() {
        let source = Arc::new(FakeSource {
            health: Health::starting(),
        });
        let server = serve("127.0.0.1:0", Arc::clone(&source) as Arc<dyn ObsSource>).unwrap();
        let addr = server.addr().to_string();
        assert_eq!(http_get(&addr, "/healthz").unwrap().0, 503);
        let (status, body) = http_get(&addr, "/readyz").unwrap();
        assert_eq!(status, 503);
        assert!(body.contains("\"ready\": false"));
        // Flip the flags while the server runs: 503 becomes 200.
        source.health.mark_catalog_loaded();
        source.health.mark_checkpoint_loaded();
        source.health.mark_wal_recovered();
        assert_eq!(http_get(&addr, "/healthz").unwrap().0, 200);
        server.shutdown();
    }

    #[test]
    fn non_get_is_rejected() {
        let server = serve(
            "127.0.0.1:0",
            Arc::new(FakeSource {
                health: Health::ready_now(),
            }),
        )
        .unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }

    #[test]
    fn shutdown_frees_the_port_quickly() {
        let server = serve(
            "127.0.0.1:0",
            Arc::new(FakeSource {
                health: Health::ready_now(),
            }),
        )
        .unwrap();
        let addr = server.addr();
        server.shutdown();
        // The listener is gone: connecting may succeed transiently on
        // some stacks, but a GET must not be answered.
        assert!(http_get(&addr.to_string(), "/healthz").is_err());
    }
}
