//! The [`Recorder`]: named instruments plus lightweight tracing spans.
//!
//! A span is an RAII guard ([`SpanGuard`]).  Creating one while a
//! trace capture is active appends a record to the capture's span
//! list at the current nesting depth; dropping it writes the measured
//! wall time back.  Outside a capture, finished spans still land in a
//! small ring-buffer event log (the last [`EVENT_RING_CAPACITY`]
//! spans), so post-hoc debugging has *some* recent history even when
//! nobody asked for a trace.
//!
//! A disabled recorder short-circuits every instrument to a branch on
//! a plain bool — no atomics touched, no locks taken, no `Instant`
//! read — which is what lets the figure-regeneration binaries run
//! with instrumented code and byte-identical output.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::events::{EventJournal, EventValue};
use crate::fingerprint::QueryFingerprints;
use crate::metrics::{Counter, Gauge, LatencyHistogram, MetricsSnapshot};
use crate::slowlog::SlowLog;

/// How many finished spans the background event ring retains.
pub const EVENT_RING_CAPACITY: usize = 256;

/// Mint a process-unique request trace id (`t-<hex>`), for statements
/// that arrived without a client-chosen one.  A plain counter keeps it
/// zero-dependency, allocation-cheap, and collision-free within one
/// server process — the scope a trace id must be unique in.
pub fn next_trace_id() -> String {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    format!("t-{:08x}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// A process-wide disabled recorder, for call sites that must accept a
/// `&Recorder` but have none threaded to them.
pub fn noop_recorder() -> &'static Recorder {
    static NOOP: OnceLock<Recorder> = OnceLock::new();
    NOOP.get_or_init(Recorder::disabled)
}

/// One finished (or in-flight) span inside a trace capture.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub name: &'static str,
    /// Free-form annotation, e.g. the access path chosen.
    pub detail: String,
    /// Nesting depth at entry (0 = root).
    pub depth: usize,
    pub duration_ns: u64,
    pub rows_in: Option<u64>,
    pub rows_out: Option<u64>,
    /// Statistics-based row-count estimate for this operator (from
    /// `analyze`-collected table statistics), shown beside the actual
    /// count so misestimation is visible in `explain`/`profile`.
    pub rows_est: Option<u64>,
}

/// A finished span in the background event ring.
#[derive(Debug, Clone)]
pub struct RingEvent {
    pub name: &'static str,
    pub duration_ns: u64,
}

#[derive(Default)]
struct TraceState {
    /// `Some` while a capture is active.
    capture: Option<Vec<SpanRecord>>,
    depth: usize,
    ring: Vec<RingEvent>,
    ring_next: usize,
}

/// Every named instrument in the engine.  Public fields: callers
/// increment through [`Recorder`] helpers so the enabled check stays
/// in one place, but tests may read counters directly.
#[derive(Default)]
pub struct Instruments {
    pub pager_page_reads: Counter,
    pub pager_page_writes: Counter,
    pub wal_appends: Counter,
    pub wal_fsyncs: Counter,
    pub heap_morsels_claimed: Counter,
    pub heap_rows_scanned: Counter,
    pub index_probes: Counter,
    pub rollback_checkpoint_hits: Counter,
    pub rollback_txns_replayed: Counter,
    /// Frozen-segment reads that consulted a segment's map.
    pub segment_hits: Counter,
    /// Frozen segments skipped wholesale (tx-range or bloom miss).
    pub segment_skips: Counter,
    /// Bloom probes that passed but found no chain in the directory.
    pub segment_bloom_fps: Counter,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub cache_evictions: Counter,
    pub cache_invalidations: Counter,
    pub cache_frozen_hits: Counter,
    pub commits: Counter,
    pub sessions_opened: Counter,
    pub sessions_closed: Counter,
    pub group_commit_batches: Counter,
    pub group_fsyncs_saved: Counter,
    /// Submissions that found the bounded writer queue full.
    pub submit_stalls: Counter,
    pub net_requests: Counter,
    pub net_errors: Counter,
    pub net_bytes_in: Counter,
    pub net_bytes_out: Counter,
    /// Writer-queue depth (level + high-watermark).
    pub commit_queue_depth: Gauge,
    pub commit_latency: LatencyHistogram,
    pub query_latency: LatencyHistogram,
    /// Commits per group-commit batch (value is a count, not ns).
    pub group_batch_size: LatencyHistogram,
    /// Commit-latency decomposition stages (all ns; see DESIGN §6d).
    pub commit_queue_wait: LatencyHistogram,
    pub commit_lock_wait: LatencyHistogram,
    pub commit_apply: LatencyHistogram,
    pub commit_fsync: LatencyHistogram,
    pub commit_ack: LatencyHistogram,
    /// Read-side shared-lock acquisition wait.
    pub read_lock_wait: LatencyHistogram,
}

/// The engine-wide observability handle.
pub struct Recorder {
    enabled: bool,
    metrics: Instruments,
    trace: Mutex<TraceState>,
    /// Slow-statement captures (disabled until a threshold is set).
    slowlog: SlowLog,
    /// Per-statement-shape workload aggregates (always on while the
    /// recorder is enabled; one mutex-guarded vector probe per
    /// statement, priced in EXPERIMENTS.md T14).
    fingerprints: QueryFingerprints,
    /// Lifecycle event sink, present only on databases that attached a
    /// journal (durable ones); `has_journal` is the lock-free fast path.
    journal: Mutex<Option<Arc<EventJournal>>>,
    has_journal: AtomicBool,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An enabled recorder: instruments record, spans are captured.
    pub fn new() -> Self {
        Recorder {
            enabled: true,
            metrics: Instruments::default(),
            trace: Mutex::new(TraceState::default()),
            slowlog: SlowLog::default(),
            fingerprints: QueryFingerprints::default(),
            journal: Mutex::new(None),
            has_journal: AtomicBool::new(false),
        }
    }

    /// A recorder whose every operation is a no-op (one branch).
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            metrics: Instruments::default(),
            trace: Mutex::new(TraceState::default()),
            slowlog: SlowLog::default(),
            fingerprints: QueryFingerprints::default(),
            journal: Mutex::new(None),
            has_journal: AtomicBool::new(false),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Direct read access for tests and stats surfacing.
    pub fn instruments(&self) -> &Instruments {
        &self.metrics
    }

    /// The slow-query log (disabled until a threshold is set).
    pub fn slowlog(&self) -> &SlowLog {
        &self.slowlog
    }

    /// The query-fingerprint store (recording whenever the recorder is
    /// enabled; callers gate on [`is_enabled`](Self::is_enabled)).
    pub fn fingerprints(&self) -> &QueryFingerprints {
        &self.fingerprints
    }

    /// Attaches the lifecycle event journal; subsequent
    /// [`emit_event`](Self::emit_event) calls append to it.
    pub fn set_journal(&self, journal: Arc<EventJournal>) {
        *self.journal.lock().unwrap() = Some(journal);
        self.has_journal.store(true, Ordering::Release);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<Arc<EventJournal>> {
        if !self.has_journal.load(Ordering::Acquire) {
            return None;
        }
        self.journal.lock().unwrap().clone()
    }

    /// Appends one lifecycle event to the journal, if one is attached.
    /// One relaxed-ish atomic load when none is — the common case for
    /// in-memory databases and the figure binaries.
    #[inline]
    pub fn emit_event(&self, event: &str, fields: &[(&str, EventValue)]) {
        if !self.has_journal.load(Ordering::Acquire) {
            return;
        }
        if let Some(journal) = self.journal.lock().unwrap().as_ref() {
            journal.emit(event, fields);
        }
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = &self.metrics;
        MetricsSnapshot {
            pager_page_reads: m.pager_page_reads.get(),
            pager_page_writes: m.pager_page_writes.get(),
            wal_appends: m.wal_appends.get(),
            wal_fsyncs: m.wal_fsyncs.get(),
            heap_morsels_claimed: m.heap_morsels_claimed.get(),
            heap_rows_scanned: m.heap_rows_scanned.get(),
            index_probes: m.index_probes.get(),
            rollback_checkpoint_hits: m.rollback_checkpoint_hits.get(),
            rollback_txns_replayed: m.rollback_txns_replayed.get(),
            segment_hits: m.segment_hits.get(),
            segment_skips: m.segment_skips.get(),
            segment_bloom_fps: m.segment_bloom_fps.get(),
            cache_hits: m.cache_hits.get(),
            cache_misses: m.cache_misses.get(),
            cache_evictions: m.cache_evictions.get(),
            cache_invalidations: m.cache_invalidations.get(),
            cache_frozen_hits: m.cache_frozen_hits.get(),
            commits: m.commits.get(),
            sessions_opened: m.sessions_opened.get(),
            sessions_closed: m.sessions_closed.get(),
            group_commit_batches: m.group_commit_batches.get(),
            group_fsyncs_saved: m.group_fsyncs_saved.get(),
            submit_stalls: m.submit_stalls.get(),
            net_requests: m.net_requests.get(),
            net_errors: m.net_errors.get(),
            net_bytes_in: m.net_bytes_in.get(),
            net_bytes_out: m.net_bytes_out.get(),
            commit_queue_depth: m.commit_queue_depth.get(),
            commit_queue_hwm: m.commit_queue_depth.high_watermark(),
            commit_latency: m.commit_latency.snapshot(),
            query_latency: m.query_latency.snapshot(),
            group_batch_size: m.group_batch_size.snapshot(),
            commit_queue_wait: m.commit_queue_wait.snapshot(),
            commit_lock_wait: m.commit_lock_wait.snapshot(),
            commit_apply: m.commit_apply.snapshot(),
            commit_fsync: m.commit_fsync.snapshot(),
            commit_ack: m.commit_ack.snapshot(),
            read_lock_wait: m.read_lock_wait.snapshot(),
        }
    }

    // ---- counter helpers (all gated on `enabled`) -------------------

    #[inline]
    pub fn count(&self, pick: impl FnOnce(&Instruments) -> &Counter) {
        if self.enabled {
            pick(&self.metrics).incr();
        }
    }

    #[inline]
    pub fn count_n(&self, pick: impl FnOnce(&Instruments) -> &Counter, n: u64) {
        if self.enabled {
            pick(&self.metrics).add(n);
        }
    }

    #[inline]
    pub fn record_latency(&self, pick: impl FnOnce(&Instruments) -> &LatencyHistogram, ns: u64) {
        if self.enabled {
            pick(&self.metrics).record_ns(ns);
        }
    }

    #[inline]
    pub fn set_gauge(&self, pick: impl FnOnce(&Instruments) -> &Gauge, v: u64) {
        if self.enabled {
            pick(&self.metrics).set(v);
        }
    }

    // ---- tracing ----------------------------------------------------

    /// Start capturing a span tree.  A capture already in progress is
    /// discarded (traces don't nest; the outermost wins is *not* the
    /// rule — the newest request wins, matching the CLI's one-query-
    /// at-a-time use).
    pub fn begin_trace(&self) {
        if !self.enabled {
            return;
        }
        let mut t = self.trace.lock().unwrap();
        t.capture = Some(Vec::new());
        t.depth = 0;
    }

    /// Stop capturing and return the span tree plus the metrics delta
    /// accumulated since `since` (callers snapshot before the traced
    /// work).  Returns `None` when disabled or no capture was active.
    pub fn end_trace(&self, since: &MetricsSnapshot) -> Option<TraceReport> {
        if !self.enabled {
            return None;
        }
        let spans = self.trace.lock().unwrap().capture.take()?;
        Some(TraceReport {
            spans,
            delta: self.snapshot().since(since),
        })
    }

    /// Open a span.  The guard records wall time on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard {
                rec: None,
                name,
                index: None,
                start: None,
            };
        }
        let mut t = self.trace.lock().unwrap();
        let depth = t.depth;
        let index = t.capture.as_mut().map(|spans| {
            spans.push(SpanRecord {
                name,
                detail: String::new(),
                depth,
                duration_ns: 0,
                rows_in: None,
                rows_out: None,
                rows_est: None,
            });
            spans.len() - 1
        });
        if index.is_some() {
            t.depth += 1;
        }
        drop(t);
        SpanGuard {
            rec: Some(self),
            name,
            index,
            start: Some(Instant::now()),
        }
    }

    /// Copy of the background event ring, oldest first.
    pub fn recent_events(&self) -> Vec<RingEvent> {
        let t = self.trace.lock().unwrap();
        let mut out = Vec::with_capacity(t.ring.len());
        if t.ring.len() == EVENT_RING_CAPACITY {
            out.extend_from_slice(&t.ring[t.ring_next..]);
            out.extend_from_slice(&t.ring[..t.ring_next]);
        } else {
            out.extend_from_slice(&t.ring);
        }
        out
    }

    fn finish_span(&self, index: Option<usize>, name: &'static str, ns: u64) {
        let mut t = self.trace.lock().unwrap();
        if let Some(i) = index {
            if let Some(spans) = t.capture.as_mut() {
                if let Some(rec) = spans.get_mut(i) {
                    rec.duration_ns = ns;
                }
            }
            t.depth = t.depth.saturating_sub(1);
        }
        let ev = RingEvent {
            name,
            duration_ns: ns,
        };
        if t.ring.len() < EVENT_RING_CAPACITY {
            t.ring.push(ev);
        } else {
            let slot = t.ring_next;
            t.ring[slot] = ev;
        }
        t.ring_next = (t.ring_next + 1) % EVENT_RING_CAPACITY;
    }

    fn annotate(&self, index: usize, f: impl FnOnce(&mut SpanRecord)) {
        let mut t = self.trace.lock().unwrap();
        if let Some(spans) = t.capture.as_mut() {
            if let Some(rec) = spans.get_mut(index) {
                f(rec);
            }
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

/// RAII span guard; see [`Recorder::span`].
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    name: &'static str,
    /// Position in the active capture, if one was running at entry.
    index: Option<usize>,
    start: Option<Instant>,
}

impl SpanGuard<'_> {
    /// Attach a free-form annotation (e.g. the access path chosen).
    pub fn detail(&self, detail: impl Into<String>) {
        if let (Some(rec), Some(i)) = (self.rec, self.index) {
            let d = detail.into();
            rec.annotate(i, |r| r.detail = d);
        }
    }

    pub fn rows_in(&self, n: u64) {
        if let (Some(rec), Some(i)) = (self.rec, self.index) {
            rec.annotate(i, |r| r.rows_in = Some(n));
        }
    }

    pub fn rows_out(&self, n: u64) {
        if let (Some(rec), Some(i)) = (self.rec, self.index) {
            rec.annotate(i, |r| r.rows_out = Some(n));
        }
    }

    /// Statistics-based row-count estimate for this operator.
    pub fn rows_est(&self, n: u64) {
        if let (Some(rec), Some(i)) = (self.rec, self.index) {
            rec.annotate(i, |r| r.rows_est = Some(n));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(rec), Some(start)) = (self.rec, self.start) {
            rec.finish_span(self.index, self.name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// A captured span tree plus the metrics delta over the traced work.
#[derive(Debug, Clone)]
pub struct TraceReport {
    pub spans: Vec<SpanRecord>,
    pub delta: MetricsSnapshot,
}

impl TraceReport {
    /// First span with the given name, if any (test convenience).
    pub fn span_named(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Per-operator misestimation factors (×1000) for every span that
    /// carries both an estimate and an actual row count — what the
    /// session layer feeds back into the fingerprint store.
    pub fn misestimates(&self) -> Vec<(&'static str, u64)> {
        self.spans
            .iter()
            .filter_map(|s| match (s.rows_est, s.rows_out) {
                (Some(est), Some(actual)) => Some((s.name, misestimate_x1000(est, actual))),
                _ => None,
            })
            .collect()
    }

    /// Render the span tree.  With `timings` (profile mode) each row
    /// carries its wall time; without (explain mode) only structure,
    /// row counts, and access-path details are shown.
    pub fn render(&self, timings: bool) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&"  ".repeat(s.depth));
            out.push_str(s.name);
            if !s.detail.is_empty() {
                out.push_str(&format!(" [{}]", s.detail));
            }
            if let Some(n) = s.rows_in {
                out.push_str(&format!(" rows_in={n}"));
            }
            if let Some(n) = s.rows_out {
                out.push_str(&format!(" rows_out={n}"));
            }
            if let Some(est) = s.rows_est {
                out.push_str(&format!(" est={est}"));
                if let Some(actual) = s.rows_out {
                    let x1000 = misestimate_x1000(est, actual);
                    out.push_str(&format!(
                        " ({}{:.1}x)",
                        if est >= actual { "over " } else { "under " },
                        x1000 as f64 / 1000.0
                    ));
                }
            }
            if timings {
                out.push_str(&format!(" ({})", fmt_ns(s.duration_ns)));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "counters: rows_scanned={} morsels={} index_probes={} txns_replayed={} \
             checkpoint_hits={} cache_hits={} cache_misses={} page_reads={}\n",
            self.delta.heap_rows_scanned,
            self.delta.heap_morsels_claimed,
            self.delta.index_probes,
            self.delta.rollback_txns_replayed,
            self.delta.rollback_checkpoint_hits,
            self.delta.cache_hits,
            self.delta.cache_misses,
            self.delta.pager_page_reads,
        ));
        out
    }
}

/// Symmetric misestimation factor ×1000: `max/min` of estimate and
/// actual (so 2× over and 2× under both read 2000), with zeroes
/// clamped to 1 so an empty side reads as a finite factor.  1000 is a
/// perfect estimate.
pub fn misestimate_x1000(est: u64, actual: u64) -> u64 {
    let (hi, lo) = (est.max(actual).max(1), est.min(actual).max(1));
    hi.saturating_mul(1000) / lo
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        r.count(|m| &m.cache_hits);
        r.count_n(|m| &m.heap_rows_scanned, 100);
        r.record_latency(|m| &m.commit_latency, 42);
        r.begin_trace();
        {
            let s = r.span("scan");
            s.detail("sequential");
            s.rows_out(10);
        }
        assert!(r.end_trace(&MetricsSnapshot::default()).is_none());
        assert!(r.snapshot().is_zero());
        assert!(r.recent_events().is_empty());
    }

    #[test]
    fn span_tree_capture_nests_by_depth() {
        let r = Recorder::new();
        let before = r.snapshot();
        r.begin_trace();
        {
            let outer = r.span("exec");
            outer.rows_out(2);
            {
                let inner = r.span("scan");
                inner.detail("sequential");
                inner.rows_out(5);
                r.count_n(|m| &m.heap_rows_scanned, 5);
            }
            let sibling = r.span("product");
            sibling.rows_in(5);
        }
        let report = r.end_trace(&before).expect("capture active");
        assert_eq!(report.spans.len(), 3);
        assert_eq!(report.spans[0].name, "exec");
        assert_eq!(report.spans[0].depth, 0);
        assert_eq!(report.spans[1].name, "scan");
        assert_eq!(report.spans[1].depth, 1);
        assert_eq!(report.spans[2].name, "product");
        assert_eq!(report.spans[2].depth, 1);
        assert_eq!(report.delta.heap_rows_scanned, 5);
        let rendered = report.render(true);
        assert!(rendered.contains("scan [sequential] rows_out=5"));
        assert!(rendered.contains("rows_scanned=5"));
    }

    #[test]
    fn rows_est_renders_with_misestimation_factor() {
        let r = Recorder::new();
        let before = r.snapshot();
        r.begin_trace();
        {
            let scan = r.span("scan");
            scan.rows_est(100);
            scan.rows_out(10);
        }
        let report = r.end_trace(&before).expect("capture active");
        let rendered = report.render(false);
        assert!(
            rendered.contains("rows_out=10 est=100 (over 10.0x)"),
            "{rendered}"
        );
        assert_eq!(report.misestimates(), vec![("scan", 10_000)]);
        assert_eq!(misestimate_x1000(10, 100), 10_000, "symmetric");
        assert_eq!(misestimate_x1000(7, 7), 1_000, "perfect");
        assert_eq!(misestimate_x1000(0, 5), 5_000, "zero clamps to 1");
    }

    #[test]
    fn spans_outside_capture_land_in_ring() {
        let r = Recorder::new();
        for _ in 0..3 {
            let _s = r.span("commit");
        }
        let events = r.recent_events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.name == "commit"));
    }

    #[test]
    fn ring_wraps_at_capacity() {
        let r = Recorder::new();
        for _ in 0..EVENT_RING_CAPACITY + 10 {
            let _s = r.span("tick");
        }
        assert_eq!(r.recent_events().len(), EVENT_RING_CAPACITY);
    }

    #[test]
    fn trace_delta_is_scoped_to_snapshot() {
        let r = Recorder::new();
        r.count_n(|m| &m.index_probes, 7);
        let before = r.snapshot();
        r.begin_trace();
        r.count_n(|m| &m.index_probes, 3);
        let report = r.end_trace(&before).unwrap();
        assert_eq!(report.delta.index_probes, 3);
        assert_eq!(r.snapshot().index_probes, 10);
    }
}
