//! Deterministic fault injection for the storage stack.
//!
//! Durability claims are only as good as the crash schedule they were
//! tested under.  This module gives the engine a *deterministic* one: a
//! [`StorageFaults`] plan installed process-globally decides, for each
//! named **crash site** the storage and recovery code passes through,
//! whether execution proceeds, unwinds with an injected I/O error,
//! tears a write short, or kills the process on the spot (exit code
//! [`CRASH_EXIT_CODE`], so a torture harness can tell an injected crash
//! from a genuine panic).
//!
//! The registry lives in `chronos-obs` because it is the one crate
//! every layer already depends on and it depends on nothing; the
//! storage crate re-exports it as `chronos_storage::fault`.
//!
//! Design constraints:
//!
//! * **Zero cost when disarmed.**  Every site starts with one relaxed
//!   atomic load; production binaries never take the slow path.
//! * **Deterministic.**  Sites are hit in program order; the plan keys
//!   on `(site, per-site hit count)`, so "fail the 3rd WAL append" is
//!   reproducible byte-for-byte.
//! * **Cross-process.**  [`arm_from_env`] arms a plan from
//!   `CHRONOS_FAULT_*` environment variables, which is how the torture
//!   harness injects crashes into spawned child processes.
//!
//! The catalog of sites the engine declares is [`CRASH_SITES`]; the
//! fault matrix (`tests/fault_matrix.rs`, `experiments` mode `faults`)
//! iterates over it and verifies workload → crash → recover → verify
//! for every entry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Exit code used for injected crashes, distinguishable from panics
/// (101) and clean exits (0).
pub const CRASH_EXIT_CODE: i32 = 86;

/// Every named crash site the engine declares, with the module that
/// hosts it.  The fault matrix iterates this list; adding a site here
/// without wiring `crash_point`/`write_decision` at the matching code
/// path makes the matrix fail (the child completes without crashing).
pub const CRASH_SITES: &[(&str, &str)] = &[
    ("wal.append.pre_frame", "storage/wal.rs"),
    ("wal.append.frame", "storage/wal.rs"),
    ("wal.append.pre_sync", "storage/wal.rs"),
    ("wal.append.post_sync", "storage/wal.rs"),
    ("wal.group_fsync", "storage/wal.rs"),
    ("wal.reset.pre_truncate", "storage/wal.rs"),
    ("wal.reset.post_truncate", "storage/wal.rs"),
    ("pager.read.miss", "storage/pager.rs"),
    ("pager.allocate", "storage/pager.rs"),
    ("heap.insert", "storage/heap.rs"),
    ("table.commit.apply", "storage/table.rs"),
    ("segment.write", "storage/segment.rs"),
    ("segment.rename", "storage/segment.rs"),
    ("segment.mmap_open", "storage/segment.rs"),
    ("checkpoint.save.pre_write", "db/checkpoint.rs"),
    ("checkpoint.save.pre_rename", "db/checkpoint.rs"),
    ("checkpoint.save.post_rename", "db/checkpoint.rs"),
    ("journal.emit", "obs/events.rs"),
];

/// What happens when execution reaches an armed crash site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// Nothing: the site is not (yet) the one being faulted.
    Proceed,
    /// Unwind with an injected I/O error.
    Error,
    /// Kill the process immediately with [`CRASH_EXIT_CODE`].
    Crash,
    /// For write sites only: persist the first `keep` bytes of the
    /// buffer, then crash (or unwind, when `unwind` is set) — a torn
    /// write.
    Torn { keep: usize, unwind: bool },
}

/// A fault schedule: asked once per site execution, in program order.
pub trait StorageFaults: Send + Sync {
    /// Decides the fate of the `hit`-th (1-based) execution of `site`.
    /// `len` is the buffer length at write sites, 0 elsewhere.
    fn decide(&self, site: &str, hit: u64, len: usize) -> FaultAction;
}

/// The common plan: fault one site on its Nth hit.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The site to fault (must match a [`CRASH_SITES`] name).
    pub site: String,
    /// 1-based hit number to fault on.
    pub hit: u64,
    /// `Some(k)`: tear the write after `k` bytes (write sites only).
    pub torn_keep: Option<usize>,
    /// `true`: unwind with an error instead of killing the process.
    pub unwind: bool,
}

impl FaultPlan {
    /// A plan that kills the process at the `hit`-th execution of `site`.
    pub fn crash_at(site: &str, hit: u64) -> FaultPlan {
        FaultPlan {
            site: site.to_string(),
            hit,
            torn_keep: None,
            unwind: false,
        }
    }

    /// A plan that injects an I/O error at the `hit`-th execution of
    /// `site` instead of crashing.
    pub fn error_at(site: &str, hit: u64) -> FaultPlan {
        FaultPlan {
            site: site.to_string(),
            hit,
            torn_keep: None,
            unwind: true,
        }
    }
}

impl StorageFaults for FaultPlan {
    fn decide(&self, site: &str, hit: u64, len: usize) -> FaultAction {
        if site != self.site || hit != self.hit {
            return FaultAction::Proceed;
        }
        match self.torn_keep {
            Some(keep) => FaultAction::Torn {
                keep: keep.min(len),
                unwind: self.unwind,
            },
            None if self.unwind => FaultAction::Error,
            None => FaultAction::Crash,
        }
    }
}

struct Registry {
    plan: Option<Arc<dyn StorageFaults>>,
    hits: HashMap<String, u64>,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            plan: None,
            hits: HashMap::new(),
        })
    })
}

/// Installs a fault plan (replacing any previous one) and resets the
/// per-site hit counters.
pub fn install(plan: Arc<dyn StorageFaults>) {
    let mut reg = registry().lock().expect("fault registry poisoned");
    reg.plan = Some(plan);
    reg.hits.clear();
    ARMED.store(true, Ordering::SeqCst);
}

/// Removes the installed plan; every site reverts to zero-cost
/// pass-through.
pub fn clear() {
    let mut reg = registry().lock().expect("fault registry poisoned");
    reg.plan = None;
    reg.hits.clear();
    ARMED.store(false, Ordering::SeqCst);
}

/// True while a plan is installed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

fn decide(site: &str, len: usize) -> FaultAction {
    let mut reg = registry().lock().expect("fault registry poisoned");
    let Some(plan) = reg.plan.clone() else {
        return FaultAction::Proceed;
    };
    let hit = reg.hits.entry(site.to_string()).or_insert(0);
    *hit += 1;
    let hit = *hit;
    drop(reg);
    plan.decide(site, hit, len)
}

/// The injected error returned by unwinding faults; recognizable by
/// its message prefix.
pub fn injected_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {site}"))
}

/// Kills the process the way an injected crash does, after announcing
/// the site on stderr (the torture harness greps for this line).
pub fn crash_now(site: &str) -> ! {
    eprintln!("chronos-fault: crashing at site {site}");
    std::process::exit(CRASH_EXIT_CODE);
}

/// A non-write crash site.  Returns `Ok(())` when disarmed or when the
/// plan lets this hit proceed; never returns on [`FaultAction::Crash`].
pub fn crash_point(site: &str) -> std::io::Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    match decide(site, 0) {
        FaultAction::Proceed => Ok(()),
        // A torn action at a non-write site degrades to an error/crash.
        FaultAction::Error | FaultAction::Torn { unwind: true, .. } => Err(injected_error(site)),
        FaultAction::Crash | FaultAction::Torn { unwind: false, .. } => crash_now(site),
    }
}

/// Peeks whether the *next* execution of `site` would kill the process
/// (as opposed to proceeding or unwinding).  Does **not** consume a
/// hit.  This lets a site that has staged unsynced bytes model a power
/// cut — dropping the staged bytes from the file — before the
/// subsequent [`crash_point`] fires, the same way torn-write sites
/// persist their tear before dying.
pub fn crash_imminent(site: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let reg = registry().lock().expect("fault registry poisoned");
    let Some(plan) = reg.plan.clone() else {
        return false;
    };
    let next_hit = reg.hits.get(site).copied().unwrap_or(0) + 1;
    drop(reg);
    matches!(
        plan.decide(site, next_hit, 0),
        FaultAction::Crash | FaultAction::Torn { unwind: false, .. }
    )
}

/// The fate of a buffer about to be written at a write site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoFault {
    /// Write the whole buffer, as normal.
    Full,
    /// Write only the first `keep` bytes, then crash (`unwind` false)
    /// or return [`injected_error`] (`unwind` true).  The caller is
    /// responsible for persisting the partial bytes *before* invoking
    /// the aftermath, so the tear is actually on disk.
    Torn { keep: usize, unwind: bool },
}

/// A write crash site: decides whether the `len`-byte buffer about to
/// be written is written whole, torn, or not at all.
pub fn write_decision(site: &str, len: usize) -> std::io::Result<IoFault> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(IoFault::Full);
    }
    match decide(site, len) {
        FaultAction::Proceed => Ok(IoFault::Full),
        FaultAction::Error => Err(injected_error(site)),
        FaultAction::Crash => crash_now(site),
        FaultAction::Torn { keep, unwind } => Ok(IoFault::Torn {
            keep: keep.min(len),
            unwind,
        }),
    }
}

/// Arms a [`FaultPlan`] from the environment, for fault injection into
/// spawned processes:
///
/// * `CHRONOS_FAULT_SITE` — site name (required; absent means no-op);
/// * `CHRONOS_FAULT_HIT` — 1-based hit number (default 1);
/// * `CHRONOS_FAULT_MODE` — `crash` (default) or `error`;
/// * `CHRONOS_FAULT_KEEP` — torn-write byte count (write sites).
///
/// Returns `true` when a plan was installed.
pub fn arm_from_env() -> bool {
    let Ok(site) = std::env::var("CHRONOS_FAULT_SITE") else {
        return false;
    };
    if site.is_empty() {
        return false;
    }
    let hit = std::env::var("CHRONOS_FAULT_HIT")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1);
    let unwind = matches!(
        std::env::var("CHRONOS_FAULT_MODE").as_deref(),
        Ok("error") | Ok("unwind")
    );
    let torn_keep = std::env::var("CHRONOS_FAULT_KEEP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    install(Arc::new(FaultPlan {
        site,
        hit,
        torn_keep,
        unwind,
    }));
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialize the tests that arm it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_sites_pass_through() {
        let _g = guard();
        clear();
        assert!(crash_point("wal.append.pre_frame").is_ok());
        assert_eq!(
            write_decision("wal.append.frame", 64).unwrap(),
            IoFault::Full
        );
    }

    #[test]
    fn error_plan_fires_on_exact_hit_only() {
        let _g = guard();
        install(Arc::new(FaultPlan::error_at("heap.insert", 3)));
        assert!(crash_point("heap.insert").is_ok());
        assert!(crash_point("heap.insert").is_ok());
        let err = crash_point("heap.insert").unwrap_err();
        assert!(err.to_string().contains("injected fault at heap.insert"));
        // Other sites and later hits are untouched.
        assert!(crash_point("heap.insert").is_ok());
        assert!(crash_point("pager.allocate").is_ok());
        clear();
    }

    #[test]
    fn torn_write_keeps_prefix_and_unwinds() {
        let _g = guard();
        install(Arc::new(FaultPlan {
            site: "wal.append.frame".into(),
            hit: 1,
            torn_keep: Some(5),
            unwind: true,
        }));
        match write_decision("wal.append.frame", 64).unwrap() {
            IoFault::Torn { keep, unwind } => {
                assert_eq!(keep, 5);
                assert!(unwind);
            }
            other => panic!("expected torn, got {other:?}"),
        }
        clear();
    }

    #[test]
    fn reinstall_resets_hit_counters() {
        let _g = guard();
        install(Arc::new(FaultPlan::error_at("pager.read.miss", 1)));
        assert!(crash_point("pager.read.miss").is_err());
        install(Arc::new(FaultPlan::error_at("pager.read.miss", 1)));
        assert!(crash_point("pager.read.miss").is_err());
        clear();
        assert!(crash_point("pager.read.miss").is_ok());
    }

    #[test]
    fn crash_imminent_peeks_without_consuming_a_hit() {
        let _g = guard();
        install(Arc::new(FaultPlan::crash_at("wal.group_fsync", 2)));
        assert!(!crash_imminent("wal.group_fsync"), "next hit is 1, not 2");
        assert!(crash_point("wal.group_fsync").is_ok()); // consumes hit 1
        assert!(crash_imminent("wal.group_fsync"), "next hit would crash");
        assert!(crash_imminent("wal.group_fsync"), "peek does not consume");
        // Unwind plans are not imminent crashes.
        install(Arc::new(FaultPlan::error_at("wal.group_fsync", 1)));
        assert!(!crash_imminent("wal.group_fsync"));
        clear();
        assert!(!crash_imminent("wal.group_fsync"));
    }

    #[test]
    fn catalog_names_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for (site, module) in CRASH_SITES {
            assert!(seen.insert(*site), "duplicate site {site}");
            assert!(site.split('.').count() >= 2, "site {site} not dotted");
            assert!(module.ends_with(".rs"));
        }
        assert!(CRASH_SITES.len() >= 12);
    }
}
