//! The query-fingerprint store: per-statement-shape workload
//! aggregates.
//!
//! The session layer normalizes every executed statement (literals
//! replaced by `"?"`, structure preserved — see `chronos-tquel`'s
//! `fingerprint` module for the rules) and records the execution here
//! under the normalized text's FNV-1a hash.  Two statements that differ
//! only in literals therefore share one entry, which accumulates:
//!
//! * call count and a latency histogram (p50/p99 over all calls);
//! * total rows returned;
//! * cache hits and misses attributed to the statement (counter deltas
//!   around execution);
//! * the last access path a traced execution took (`-` until a capture
//!   runs — tracing is not forced onto the hot path);
//! * the worst estimated-vs-actual row-count misestimation any operator
//!   of this shape has shown (×1000 fixed point), so bad estimates are
//!   themselves observable.
//!
//! The store is bounded: when full, a new fingerprint evicts the
//! least-called entry (the workload's long tail), never the head.
//! Surfaced as the `sys$queries` system relation, the `/queries` HTTP
//! endpoint, and the CLI's `\top`.

use std::sync::Mutex;

use crate::events::escape_json;
use crate::metrics::LatencyHistogram;

/// Fingerprints the store retains.
pub const DEFAULT_FINGERPRINT_CAPACITY: usize = 128;

/// One fingerprint's aggregates, snapshotted for rendering.
#[derive(Debug, Clone)]
pub struct FingerprintStats {
    /// FNV-1a hash of the normalized statement text.
    pub hash: u64,
    /// The normalized statement (literals replaced by `"?"`).
    pub statement: String,
    /// Statement kind (`retrieve`, `append`, `analyze`, …).
    pub kind: &'static str,
    /// Executions recorded under this fingerprint.
    pub calls: u64,
    /// Median wall time over all calls.
    pub p50_ns: u64,
    /// Tail wall time over all calls.
    pub p99_ns: u64,
    /// Total rows returned by all calls.
    pub rows_out: u64,
    /// Query-cache hits attributed to this shape.
    pub cache_hits: u64,
    /// Query-cache misses attributed to this shape.
    pub cache_misses: u64,
    /// Access path of the most recent *traced* execution (`-` until
    /// one runs).
    pub access_path: String,
    /// Worst per-operator |estimate/actual| ratio seen, ×1000
    /// (0 = no estimate recorded yet; 1000 = perfect).
    pub worst_misestimate_x1000: u64,
}

struct Entry {
    hash: u64,
    statement: String,
    kind: &'static str,
    calls: u64,
    latency: LatencyHistogram,
    rows_out: u64,
    cache_hits: u64,
    cache_misses: u64,
    access_path: String,
    worst_misestimate_x1000: u64,
}

impl Entry {
    fn stats(&self) -> FingerprintStats {
        let snap = self.latency.snapshot();
        FingerprintStats {
            hash: self.hash,
            statement: self.statement.clone(),
            kind: self.kind,
            calls: self.calls,
            p50_ns: snap.percentile(50.0).unwrap_or(0),
            p99_ns: snap.percentile(99.0).unwrap_or(0),
            rows_out: self.rows_out,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            access_path: self.access_path.clone(),
            worst_misestimate_x1000: self.worst_misestimate_x1000,
        }
    }
}

/// Bounded store of per-fingerprint workload aggregates; lives inside
/// the [`Recorder`](crate::Recorder) beside the slow-query log.
pub struct QueryFingerprints {
    capacity: usize,
    inner: Mutex<Vec<Entry>>,
}

impl Default for QueryFingerprints {
    fn default() -> Self {
        QueryFingerprints::new(DEFAULT_FINGERPRINT_CAPACITY)
    }
}

impl QueryFingerprints {
    /// An empty store retaining up to `capacity` fingerprints.
    pub fn new(capacity: usize) -> QueryFingerprints {
        QueryFingerprints {
            capacity: capacity.max(1),
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Records one execution of a statement with the given normalized
    /// text.  `access_path` is `Some` only when the execution ran under
    /// a trace capture (the path the spans named).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        hash: u64,
        statement: &str,
        kind: &'static str,
        duration_ns: u64,
        rows_out: u64,
        cache_hits: u64,
        cache_misses: u64,
        access_path: Option<&str>,
    ) {
        let mut inner = self.inner.lock().unwrap();
        let entry = match inner.iter_mut().find(|e| e.hash == hash) {
            Some(e) => e,
            None => {
                if inner.len() == self.capacity {
                    // Evict the long tail, never the head.
                    let victim = inner
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.calls)
                        .map(|(i, _)| i)
                        .expect("capacity >= 1");
                    inner.swap_remove(victim);
                }
                inner.push(Entry {
                    hash,
                    statement: statement.to_string(),
                    kind,
                    calls: 0,
                    latency: LatencyHistogram::default(),
                    rows_out: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                    access_path: "-".to_string(),
                    worst_misestimate_x1000: 0,
                });
                inner.last_mut().expect("just pushed")
            }
        };
        entry.calls += 1;
        entry.latency.record_ns(duration_ns);
        entry.rows_out += rows_out;
        entry.cache_hits += cache_hits;
        entry.cache_misses += cache_misses;
        if let Some(path) = access_path {
            entry.access_path = path.to_string();
        }
    }

    /// Records a per-operator estimated-vs-actual row-count ratio
    /// (×1000, ≥1000) against an already-recorded fingerprint; keeps
    /// the worst.  Unknown hashes are ignored (the entry was evicted).
    pub fn record_misestimate(&self, hash: u64, factor_x1000: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.iter_mut().find(|e| e.hash == hash) {
            e.worst_misestimate_x1000 = e.worst_misestimate_x1000.max(factor_x1000);
        }
    }

    /// Snapshot of every fingerprint, most-called first.
    pub fn entries(&self) -> Vec<FingerprintStats> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<FingerprintStats> = inner.iter().map(Entry::stats).collect();
        out.sort_by(|a, b| b.calls.cmp(&a.calls).then(a.statement.cmp(&b.statement)));
        out
    }

    /// Number of distinct fingerprints retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the store.
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// Hand-rolled JSON object (the `/queries` endpoint body).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"queries\": [");
        for (i, e) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"fingerprint\": \"{:016x}\", \"kind\": \"{}\", \"calls\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"rows_out\": {}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \
                 \"worst_misestimate_x1000\": {}, \"access_path\": \"{}\", \
                 \"statement\": \"{}\"}}",
                e.hash,
                e.kind,
                e.calls,
                e.p50_ns,
                e.p99_ns,
                e.rows_out,
                e.cache_hits,
                e.cache_misses,
                e.worst_misestimate_x1000,
                escape_json(&e.access_path),
                escape_json(&e.statement)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Human-readable rendering (the CLI's `\top` workload section).
    pub fn render(&self) -> String {
        let entries = self.entries();
        if entries.is_empty() {
            return "  (no query fingerprints yet — run some statements)\n".to_string();
        }
        let mut out = format!("  workload fingerprints ({} shape(s)):\n", entries.len());
        for e in &entries {
            out.push_str(&format!(
                "  {:>6} call(s)  p50 {:>9} ns  p99 {:>9} ns  {:>8} row(s)  {}\n",
                e.calls,
                e.p50_ns,
                e.p99_ns,
                e.rows_out,
                e.statement.replace('\n', " ")
            ));
        }
        out
    }
}

impl std::fmt::Debug for QueryFingerprints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryFingerprints")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::validate_json;

    #[test]
    fn aggregates_by_hash() {
        let store = QueryFingerprints::new(8);
        store.record(
            42,
            "retrieve (f.rank) where f.name = \"?\"",
            "retrieve",
            100,
            1,
            0,
            1,
            None,
        );
        store.record(
            42,
            "retrieve (f.rank) where f.name = \"?\"",
            "retrieve",
            300,
            2,
            1,
            0,
            None,
        );
        store.record(
            7,
            "append to faculty (name = \"?\")",
            "append",
            50,
            0,
            0,
            0,
            None,
        );
        let entries = store.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].calls, 2, "most-called first");
        assert_eq!(entries[0].rows_out, 3);
        assert_eq!(entries[0].cache_hits, 1);
        assert_eq!(entries[0].cache_misses, 1);
        assert_eq!(entries[0].access_path, "-");
    }

    #[test]
    fn eviction_drops_the_least_called() {
        let store = QueryFingerprints::new(2);
        store.record(1, "a", "retrieve", 1, 0, 0, 0, None);
        store.record(1, "a", "retrieve", 1, 0, 0, 0, None);
        store.record(2, "b", "retrieve", 1, 0, 0, 0, None);
        store.record(3, "c", "retrieve", 1, 0, 0, 0, None);
        let entries = store.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().any(|e| e.hash == 1), "head survives");
        assert!(entries.iter().any(|e| e.hash == 3), "newcomer admitted");
    }

    #[test]
    fn misestimate_keeps_the_worst_and_ignores_unknown() {
        let store = QueryFingerprints::new(4);
        store.record(9, "q", "retrieve", 1, 0, 0, 0, Some("heap scan"));
        store.record_misestimate(9, 2_000);
        store.record_misestimate(9, 1_500);
        store.record_misestimate(404, 9_000); // evicted/unknown: no-op
        let e = &store.entries()[0];
        assert_eq!(e.worst_misestimate_x1000, 2_000);
        assert_eq!(e.access_path, "heap scan");
    }

    #[test]
    fn json_is_well_formed_with_hostile_text() {
        let store = QueryFingerprints::new(4);
        store.record(
            1,
            "retrieve (f.name) where f.name = \"M\\\"er\nrie\"",
            "retrieve",
            10,
            1,
            0,
            0,
            Some("path \"quoted\""),
        );
        validate_json(&store.to_json()).unwrap();
    }

    #[test]
    fn empty_render_and_json() {
        let store = QueryFingerprints::default();
        assert!(store.is_empty());
        assert_eq!(store.to_json(), "{\"queries\": []}");
        assert!(store.render().contains("no query fingerprints"));
    }
}
