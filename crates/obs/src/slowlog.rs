//! The slow-query log: a bounded ring of captured statement profiles.
//!
//! The session layer wraps every statement in a trace capture when the
//! log is enabled; any statement whose wall time meets the threshold is
//! admitted here with its rendered span tree and counter deltas — the
//! same artifact the `profile` prefix produces, but captured
//! automatically while the system runs.
//!
//! The threshold is a plain nanosecond count behind an atomic:
//!
//! * `u64::MAX` (the default, [`SLOWLOG_DISABLED`]) disables the log —
//!   the statement path pays one relaxed load and a branch, nothing
//!   else (the <5% disabled-overhead budget of EXPERIMENTS.md T9/T10);
//! * `0` admits every statement (the determinism tests drive this);
//! * anything in between is an operational slow-query threshold.
//!
//! The ring holds the most recent [`DEFAULT_SLOWLOG_CAPACITY`] entries;
//! `seq` numbers are global, so consumers can tell how many admissions
//! the ring has already shed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::events::escape_json;

/// Entries the ring retains.
pub const DEFAULT_SLOWLOG_CAPACITY: usize = 64;

/// Threshold value that disables capture entirely.
pub const SLOWLOG_DISABLED: u64 = u64::MAX;

/// One admitted slow statement.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Global admission number (0-based, never reset).
    pub seq: u64,
    /// The statement's canonical text (unparsed AST).
    pub statement: String,
    /// Wall time of the statement.
    pub duration_ns: u64,
    /// Rendered span tree + counter deltas (the `profile` artifact).
    pub report: String,
    /// Transaction-clock reading (chronon ticks) at admission; lets the
    /// `sys$slow` system relation index entries in engine time.
    pub at_tick: i64,
    /// The engine session that ran the statement (0 = a local,
    /// unregistered session such as the CLI's embedded one).
    pub session_id: u64,
    /// The request trace id the statement ran under (client-chosen or
    /// server-minted), correlating this entry with the events journal
    /// and the wire response.
    pub trace_id: String,
}

#[derive(Default)]
struct SlowInner {
    entries: Vec<SlowEntry>,
    next: usize,
    seq: u64,
}

/// Bounded ring of slow-statement captures; lives inside the
/// [`Recorder`](crate::Recorder).
pub struct SlowLog {
    threshold_ns: AtomicU64,
    capacity: usize,
    inner: Mutex<SlowInner>,
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::new(DEFAULT_SLOWLOG_CAPACITY)
    }
}

impl SlowLog {
    /// A disabled log retaining up to `capacity` entries once enabled.
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            threshold_ns: AtomicU64::new(SLOWLOG_DISABLED),
            capacity: capacity.max(1),
            inner: Mutex::new(SlowInner::default()),
        }
    }

    /// The current admission threshold in nanoseconds.
    #[inline]
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Sets the admission threshold (`u64::MAX` disables, 0 admits all).
    pub fn set_threshold_ns(&self, ns: u64) {
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// True iff statements should be captured at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.threshold_ns() != SLOWLOG_DISABLED
    }

    /// Admits one slow statement; returns its global seq number.
    /// `at_tick` is the transaction clock's current chronon reading;
    /// `session_id`/`trace_id` attribute the entry to the session and
    /// request that produced it.
    pub fn admit(
        &self,
        statement: String,
        duration_ns: u64,
        report: String,
        at_tick: i64,
        session_id: u64,
        trace_id: String,
    ) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.seq;
        inner.seq += 1;
        let entry = SlowEntry {
            seq,
            statement,
            duration_ns,
            report,
            at_tick,
            session_id,
            trace_id,
        };
        if inner.entries.len() < self.capacity {
            inner.entries.push(entry);
        } else {
            let slot = inner.next;
            inner.entries[slot] = entry;
        }
        inner.next = (inner.next + 1) % self.capacity;
        seq
    }

    /// Total admissions ever (≥ `entries().len()`).
    pub fn admitted(&self) -> u64 {
        self.inner.lock().unwrap().seq
    }

    /// Ring contents, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        let inner = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(inner.entries.len());
        if inner.entries.len() == self.capacity {
            out.extend_from_slice(&inner.entries[inner.next..]);
            out.extend_from_slice(&inner.entries[..inner.next]);
        } else {
            out.extend_from_slice(&inner.entries);
        }
        out
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// True iff nothing has been admitted (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the ring (seq numbering continues).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.entries.clear();
        inner.next = 0;
    }

    /// Hand-rolled JSON object (the `/slow` endpoint body): the active
    /// threshold, the total admissions ever, and the ring oldest first.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"threshold_ns\": {}, \"admitted\": {}, \"entries\": [",
            self.threshold_ns(),
            self.admitted()
        );
        for (i, e) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"seq\": {}, \"duration_ns\": {}, \"at_tick\": {}, \
                 \"session\": {}, \"trace_id\": \"{}\", \
                 \"statement\": \"{}\", \"report\": \"{}\"}}",
                e.seq,
                e.duration_ns,
                e.at_tick,
                e.session_id,
                escape_json(&e.trace_id),
                escape_json(&e.statement),
                escape_json(&e.report)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Human-readable rendering (the CLI's `\slow` output).
    pub fn render(&self) -> String {
        let entries = self.entries();
        if entries.is_empty() {
            return format!(
                "slow-query log empty (threshold {})\n",
                match self.threshold_ns() {
                    SLOWLOG_DISABLED => "disabled".to_string(),
                    ns => format!("{ns} ns"),
                }
            );
        }
        let mut out = String::new();
        for e in &entries {
            out.push_str(&format!(
                "#{} ({} ns) [session {} trace {}]  {}\n",
                e.seq,
                e.duration_ns,
                e.session_id,
                if e.trace_id.is_empty() {
                    "-"
                } else {
                    &e.trace_id
                },
                e.statement.replace('\n', " ")
            ));
            for line in e.report.lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

impl std::fmt::Debug for SlowLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("threshold_ns", &self.threshold_ns())
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::validate_json;

    #[test]
    fn disabled_by_default() {
        let log = SlowLog::default();
        assert!(!log.is_enabled());
        assert_eq!(log.threshold_ns(), SLOWLOG_DISABLED);
        assert!(log.is_empty());
    }

    #[test]
    fn ring_keeps_newest_and_global_seq() {
        let log = SlowLog::new(3);
        log.set_threshold_ns(0);
        for i in 0..5 {
            log.admit(
                format!("stmt {i}"),
                i,
                format!("report {i}"),
                i as i64,
                i,
                format!("t-{i}"),
            );
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest first, newest retained"
        );
        assert_eq!(log.admitted(), 5);
    }

    #[test]
    fn json_is_well_formed_with_hostile_text() {
        let log = SlowLog::new(4);
        log.admit(
            "retrieve (f.name) where f.name = \"Mer\\rie\"\n".to_string(),
            42,
            "tquel/exec [path \"quoted\"]\n  storage/scan\n".to_string(),
            7,
            3,
            "cli\"quoted\\id".to_string(),
        );
        validate_json(&log.to_json()).unwrap();
    }

    #[test]
    fn clear_empties_but_seq_continues() {
        let log = SlowLog::new(2);
        log.admit("a".into(), 1, String::new(), 0, 0, String::new());
        log.clear();
        assert!(log.is_empty());
        let seq = log.admit("b".into(), 1, String::new(), 0, 0, String::new());
        assert_eq!(seq, 1);
    }
}
