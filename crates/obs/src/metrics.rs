//! The metrics registry: named atomic counters and fixed-bucket
//! latency histograms, snapshotted into a plain serializable struct.
//!
//! Counters are relaxed `AtomicU64`s — a single uncontended RMW per
//! increment, safe to call from the morsel-scan worker threads.
//! Histograms use power-of-two nanosecond buckets (bucket *i* covers
//! `[2^i, 2^(i+1))` ns) so recording is a `leading_zeros` plus one
//! atomic increment, with percentiles estimated from bucket upper
//! bounds at snapshot time.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge with a monotone high-watermark, for level
/// readings (queue depth) rather than event counts.  Same relaxed
/// atomics as [`Counter`]: the reading is advisory, not a fence.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high_watermark: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
            high_watermark: AtomicU64::new(0),
        }
    }

    /// Publish a new level and fold it into the high-watermark.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high_watermark.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever published.
    #[inline]
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 39 covers everything at or
/// above `2^39` ns (~9.2 minutes), far beyond any single operation.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Fixed-bucket latency histogram over power-of-two nanosecond bins.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    samples: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            samples: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    /// Bucket index for a duration: `floor(log2(ns))`, clamped.
    #[inline]
    fn bucket_of(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            samples: self.samples.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub samples: u64,
    pub total_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            samples: 0,
            total_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Upper bound (exclusive) of bucket `i` in nanoseconds.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        1u64 << (i as u32 + 1).min(63)
    }

    /// Estimated value at percentile `p` in `[0, 100]`, as the upper
    /// bound of the bucket where the cumulative count crosses the
    /// target rank.  Returns `None` for an empty histogram.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(i));
            }
        }
        Some(Self::bucket_upper_bound(HISTOGRAM_BUCKETS - 1))
    }

    pub fn mean_ns(&self) -> Option<u64> {
        self.total_ns.checked_div(self.samples)
    }

    /// Per-field difference against an earlier snapshot.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            samples: self.samples.saturating_sub(earlier.samples),
            total_ns: self.total_ns.saturating_sub(earlier.total_ns),
        }
    }
}

/// Every named counter in the engine, snapshotted.  Field order is the
/// exposition order for both the Prometheus text format and JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub pager_page_reads: u64,
    pub pager_page_writes: u64,
    pub wal_appends: u64,
    pub wal_fsyncs: u64,
    pub heap_morsels_claimed: u64,
    pub heap_rows_scanned: u64,
    pub index_probes: u64,
    pub rollback_checkpoint_hits: u64,
    pub rollback_txns_replayed: u64,
    /// Frozen-segment reads that consulted a segment's map.
    pub segment_hits: u64,
    /// Frozen segments skipped wholesale (tx-range or bloom miss).
    pub segment_skips: u64,
    /// Bloom probes that passed but found no chain in the directory.
    pub segment_bloom_fps: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_invalidations: u64,
    pub cache_frozen_hits: u64,
    pub commits: u64,
    pub sessions_opened: u64,
    pub sessions_closed: u64,
    pub group_commit_batches: u64,
    pub group_fsyncs_saved: u64,
    /// Submissions that found the bounded writer queue full and had to
    /// block (backpressure events, not blocked nanoseconds).
    pub submit_stalls: u64,
    pub net_requests: u64,
    pub net_errors: u64,
    pub net_bytes_in: u64,
    pub net_bytes_out: u64,
    /// Writer-queue depth at the last submit/drain (gauge).
    pub commit_queue_depth: u64,
    /// Deepest the writer queue has ever been (gauge high-watermark).
    pub commit_queue_hwm: u64,
    pub commit_latency: HistogramSnapshot,
    pub query_latency: HistogramSnapshot,
    /// Commits per group-commit batch.  Same power-of-two machinery as
    /// the latency histograms, but the recorded value is a *count*
    /// (commits covered by one WAL fsync), not nanoseconds.
    pub group_batch_size: HistogramSnapshot,
    /// Commit-latency decomposition: submit-to-dequeue wait in the
    /// bounded writer queue.
    pub commit_queue_wait: HistogramSnapshot,
    /// Commit-latency decomposition: writer thread waiting for the
    /// database write lock.
    pub commit_lock_wait: HistogramSnapshot,
    /// Commit-latency decomposition: applying the batch under the lock.
    pub commit_apply: HistogramSnapshot,
    /// Commit-latency decomposition: the covering group fsync.
    pub commit_fsync: HistogramSnapshot,
    /// Commit-latency decomposition: acking the batch's sessions.
    pub commit_ack: HistogramSnapshot,
    /// Read-side contention: time spent acquiring the shared read lock.
    pub read_lock_wait: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// `(name, value)` pairs for every plain counter, in exposition
    /// order.  Keeping this as the single enumeration point means the
    /// JSON and Prometheus renderings can never drift apart.
    pub fn counters(&self) -> [(&'static str, u64); 27] {
        [
            ("pager_page_reads", self.pager_page_reads),
            ("pager_page_writes", self.pager_page_writes),
            ("wal_appends", self.wal_appends),
            ("wal_fsyncs", self.wal_fsyncs),
            ("heap_morsels_claimed", self.heap_morsels_claimed),
            ("heap_rows_scanned", self.heap_rows_scanned),
            ("index_probes", self.index_probes),
            ("rollback_checkpoint_hits", self.rollback_checkpoint_hits),
            ("rollback_txns_replayed", self.rollback_txns_replayed),
            ("segment_hits", self.segment_hits),
            ("segment_skips", self.segment_skips),
            ("segment_bloom_fps", self.segment_bloom_fps),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_evictions", self.cache_evictions),
            ("cache_invalidations", self.cache_invalidations),
            ("cache_frozen_hits", self.cache_frozen_hits),
            ("commits", self.commits),
            ("sessions_opened", self.sessions_opened),
            ("sessions_closed", self.sessions_closed),
            ("group_commit_batches", self.group_commit_batches),
            ("group_fsyncs_saved", self.group_fsyncs_saved),
            ("submit_stalls", self.submit_stalls),
            ("net_requests", self.net_requests),
            ("net_errors", self.net_errors),
            ("net_bytes_in", self.net_bytes_in),
            ("net_bytes_out", self.net_bytes_out),
        ]
    }

    /// `(name, value)` pairs for every gauge (level readings, not
    /// monotone counts), in exposition order.
    pub fn gauges(&self) -> [(&'static str, u64); 2] {
        [
            ("commit_queue_depth", self.commit_queue_depth),
            ("commit_queue_hwm", self.commit_queue_hwm),
        ]
    }

    /// `(name, snapshot)` pairs for every histogram, in exposition
    /// order — the single enumeration point for the JSON and
    /// Prometheus renderings.  `group_batch_size` reads in commits per
    /// batch, everything else in nanoseconds.
    pub fn histograms(&self) -> [(&'static str, &HistogramSnapshot); 9] {
        [
            ("commit_latency", &self.commit_latency),
            ("query_latency", &self.query_latency),
            ("group_batch_size", &self.group_batch_size),
            ("commit_queue_wait", &self.commit_queue_wait),
            ("commit_lock_wait", &self.commit_lock_wait),
            ("commit_apply", &self.commit_apply),
            ("commit_fsync", &self.commit_fsync),
            ("commit_ack", &self.commit_ack),
            ("read_lock_wait", &self.read_lock_wait),
        ]
    }

    /// True iff no instrument ever fired — the disabled-recorder
    /// invariant asserted by the figures smoke check.
    pub fn is_zero(&self) -> bool {
        self.counters().iter().all(|(_, v)| *v == 0)
            && self.gauges().iter().all(|(_, v)| *v == 0)
            && self.histograms().iter().all(|(_, h)| h.samples == 0)
    }

    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            pager_page_reads: self.pager_page_reads - earlier.pager_page_reads,
            pager_page_writes: self.pager_page_writes - earlier.pager_page_writes,
            wal_appends: self.wal_appends - earlier.wal_appends,
            wal_fsyncs: self.wal_fsyncs - earlier.wal_fsyncs,
            heap_morsels_claimed: self.heap_morsels_claimed - earlier.heap_morsels_claimed,
            heap_rows_scanned: self.heap_rows_scanned - earlier.heap_rows_scanned,
            index_probes: self.index_probes - earlier.index_probes,
            rollback_checkpoint_hits: self.rollback_checkpoint_hits
                - earlier.rollback_checkpoint_hits,
            rollback_txns_replayed: self.rollback_txns_replayed - earlier.rollback_txns_replayed,
            segment_hits: self.segment_hits - earlier.segment_hits,
            segment_skips: self.segment_skips - earlier.segment_skips,
            segment_bloom_fps: self.segment_bloom_fps - earlier.segment_bloom_fps,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_evictions: self.cache_evictions - earlier.cache_evictions,
            cache_invalidations: self.cache_invalidations - earlier.cache_invalidations,
            cache_frozen_hits: self.cache_frozen_hits - earlier.cache_frozen_hits,
            commits: self.commits - earlier.commits,
            sessions_opened: self.sessions_opened - earlier.sessions_opened,
            sessions_closed: self.sessions_closed - earlier.sessions_closed,
            group_commit_batches: self.group_commit_batches - earlier.group_commit_batches,
            group_fsyncs_saved: self.group_fsyncs_saved - earlier.group_fsyncs_saved,
            submit_stalls: self.submit_stalls - earlier.submit_stalls,
            net_requests: self.net_requests - earlier.net_requests,
            net_errors: self.net_errors - earlier.net_errors,
            net_bytes_in: self.net_bytes_in - earlier.net_bytes_in,
            net_bytes_out: self.net_bytes_out - earlier.net_bytes_out,
            // Gauges are level readings; a difference is meaningless,
            // so the delta carries the later reading unchanged.
            commit_queue_depth: self.commit_queue_depth,
            commit_queue_hwm: self.commit_queue_hwm,
            commit_latency: self.commit_latency.since(&earlier.commit_latency),
            query_latency: self.query_latency.since(&earlier.query_latency),
            group_batch_size: self.group_batch_size.since(&earlier.group_batch_size),
            commit_queue_wait: self.commit_queue_wait.since(&earlier.commit_queue_wait),
            commit_lock_wait: self.commit_lock_wait.since(&earlier.commit_lock_wait),
            commit_apply: self.commit_apply.since(&earlier.commit_apply),
            commit_fsync: self.commit_fsync.since(&earlier.commit_fsync),
            commit_ack: self.commit_ack.since(&earlier.commit_ack),
            read_lock_wait: self.read_lock_wait.since(&earlier.read_lock_wait),
        }
    }

    /// Hand-rolled JSON object (the workspace deliberately has no
    /// serde); numbers only, so no escaping is needed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.counters().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {v}"));
        }
        for (name, v) in self.gauges() {
            out.push_str(&format!(", \"{name}\": {v}"));
        }
        for (name, h) in self.histograms() {
            out.push_str(&format!(
                ", \"{name}\": {{\"samples\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"buckets\": [",
                h.samples,
                h.total_ns,
                h.percentile(50.0).unwrap_or(0),
                h.percentile(99.0).unwrap_or(0),
                h.percentile(99.9).unwrap_or(0)
            ));
            // Explicit upper bounds so scrapers need not hard-code the
            // power-of-two bucketing; empty buckets are elided.
            let mut first = true;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    out.push_str(&format!(
                        "{{\"le_ns\": {}, \"count\": {c}}}",
                        HistogramSnapshot::bucket_upper_bound(i)
                    ));
                }
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }

    /// Prometheus text exposition (one `chronos_*` family per
    /// instrument; histograms use the cumulative `_bucket` form).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            out.push_str(&format!(
                "# TYPE chronos_{name} counter\nchronos_{name} {v}\n"
            ));
        }
        for (name, v) in self.gauges() {
            out.push_str(&format!(
                "# TYPE chronos_{name} gauge\nchronos_{name} {v}\n"
            ));
        }
        for (plain, h) in self.histograms() {
            // Latency families carry an explicit `_ns` unit suffix;
            // `group_batch_size` reads in commits per batch.
            let name = if plain == "group_batch_size" {
                plain.to_string()
            } else {
                format!("{plain}_ns")
            };
            out.push_str(&format!("# TYPE chronos_{name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                cumulative += c;
                if c > 0 {
                    out.push_str(&format!(
                        "chronos_{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                        HistogramSnapshot::bucket_upper_bound(i)
                    ));
                }
            }
            out.push_str(&format!(
                "chronos_{name}_bucket{{le=\"+Inf\"}} {}\n",
                h.samples
            ));
            out.push_str(&format!("chronos_{name}_sum {}\n", h.total_ns));
            out.push_str(&format!("chronos_{name}_count {}\n", h.samples));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basic() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_bucketing() {
        // Bucket i covers [2^i, 2^(i+1)): boundary values land low.
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(1023), 9);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().percentile(50.0), None);
        // 90 fast samples (~100ns, bucket 6) and 10 slow (~1ms, bucket 19).
        for _ in 0..90 {
            h.record_ns(100);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.samples, 100);
        assert_eq!(s.percentile(50.0), Some(128)); // bucket 6 upper bound
        assert_eq!(s.percentile(90.0), Some(128));
        assert_eq!(s.percentile(99.0), Some(1 << 20)); // bucket 19 upper bound
        assert_eq!(s.percentile(99.9), Some(1 << 20));
        // The JSON form carries the explicit bucket bounds.
        let mut m = MetricsSnapshot::default();
        m.query_latency = s.clone();
        let json = m.to_json();
        assert!(json.contains("{\"le_ns\": 128, \"count\": 90}"));
        assert!(json.contains(&format!("{{\"le_ns\": {}, \"count\": 10}}", 1u64 << 20)));
        assert_eq!(s.mean_ns(), Some((90 * 100 + 10 * 1_000_000) / 100));
    }

    #[test]
    fn prometheus_exposition_is_cumulative_with_sum_and_count() {
        // The scrape must carry real histogram series — monotone
        // cumulative `_bucket{le=...}` counts ending at `+Inf`, plus
        // `_sum` and `_count` — not just summary quantiles.
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_ns(100);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        let mut m = MetricsSnapshot::default();
        m.query_latency = h.snapshot();
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE chronos_query_latency_ns histogram"));
        assert!(text.contains("chronos_query_latency_ns_bucket{le=\"128\"} 90"));
        // Cumulative: the slow bucket reports 90 + 10, not 10.
        assert!(text.contains(&format!(
            "chronos_query_latency_ns_bucket{{le=\"{}\"}} 100",
            1u64 << 20
        )));
        assert!(text.contains("chronos_query_latency_ns_bucket{le=\"+Inf\"} 100"));
        assert!(text.contains(&format!(
            "chronos_query_latency_ns_sum {}",
            90 * 100 + 10 * 1_000_000
        )));
        assert!(text.contains("chronos_query_latency_ns_count 100"));
    }

    #[test]
    fn histogram_since_is_counterwise() {
        let h = LatencyHistogram::new();
        h.record_ns(10);
        let early = h.snapshot();
        h.record_ns(10);
        h.record_ns(1000);
        let diff = h.snapshot().since(&early);
        assert_eq!(diff.samples, 2);
        assert_eq!(diff.total_ns, 1010);
    }

    #[test]
    fn snapshot_consistent_under_concurrent_updates() {
        // Writers hammer the histogram while a reader snapshots; every
        // snapshot must be internally coherent (bucket sum == samples
        // is not guaranteed mid-update, but it may never exceed the
        // number of recordings issued, and the final snapshot must be
        // exact).
        let h = Arc::new(LatencyHistogram::new());
        let writers = 4;
        let per_writer = 10_000u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..per_writer {
                        h.record_ns((w as u64 + 1) * 37 + i % 512);
                    }
                });
            }
            let h = Arc::clone(&h);
            s.spawn(move || {
                for _ in 0..100 {
                    let snap = h.snapshot();
                    let bucket_sum: u64 = snap.buckets.iter().sum();
                    assert!(bucket_sum <= writers as u64 * per_writer);
                    assert!(snap.samples <= writers as u64 * per_writer);
                    if snap.samples > 0 {
                        assert!(snap.percentile(99.0).is_some());
                    }
                }
            });
        });
        let final_snap = h.snapshot();
        assert_eq!(final_snap.samples, writers as u64 * per_writer);
        assert_eq!(
            final_snap.buckets.iter().sum::<u64>(),
            writers as u64 * per_writer
        );
    }

    #[test]
    fn snapshot_json_and_prometheus_render() {
        let mut s = MetricsSnapshot::default();
        s.cache_hits = 3;
        s.commits = 7;
        let json = s.to_json();
        assert!(json.contains("\"cache_hits\": 3"));
        assert!(json.contains("\"commits\": 7"));
        assert!(json.contains("\"commit_latency\""));
        assert!(json.contains("\"p999_ns\": 0"));
        assert!(json.contains("\"buckets\": []"));
        let prom = s.to_prometheus();
        assert!(prom.contains("chronos_cache_hits 3"));
        assert!(prom.contains("# TYPE chronos_commits counter"));
        assert!(prom.contains("chronos_commit_latency_ns_count 0"));
    }

    #[test]
    fn gauge_enumeration_is_consistent_across_renderings() {
        // The queue-depth gauge pair must appear, under the same names,
        // in the enumeration point, the JSON body, and the Prometheus
        // exposition — the no-drift invariant for every scraper.
        let mut s = MetricsSnapshot::default();
        s.commit_queue_depth = 3;
        s.commit_queue_hwm = 9;
        let gauges = s.gauges();
        assert_eq!(gauges.len(), 2);
        assert_eq!(gauges[0], ("commit_queue_depth", 3));
        assert_eq!(gauges[1], ("commit_queue_hwm", 9));
        let json = s.to_json();
        let prom = s.to_prometheus();
        for (name, v) in gauges {
            assert!(
                json.contains(&format!("\"{name}\": {v}")),
                "JSON missing gauge {name}"
            );
            assert!(
                prom.contains(&format!("# TYPE chronos_{name} gauge")),
                "Prometheus missing gauge TYPE line for {name}"
            );
            assert!(
                prom.contains(&format!("chronos_{name} {v}")),
                "Prometheus missing gauge sample for {name}"
            );
        }
    }

    #[test]
    fn zero_detection() {
        let mut s = MetricsSnapshot::default();
        assert!(s.is_zero());
        s.index_probes = 1;
        assert!(!s.is_zero());
    }
}
