//! Observability primitives for ChronosDB: a lock-cheap metrics
//! registry (atomic counters + fixed-bucket latency histograms) and
//! lightweight tracing spans (RAII guards that record wall time into
//! the registry and, while a trace capture is active, build the span
//! tree rendered by TQuel `explain` / `profile`).
//!
//! The crate has no dependencies and no global state: every engine
//! component holds an `Arc<Recorder>` handed down from the `Database`
//! (or a disabled recorder when observability is off).  A disabled
//! recorder is a single relaxed load + branch per instrument call, so
//! the hot paths stay byte-identical in behaviour — see the
//! figure-regeneration smoke assertion in `figures.rs`.

pub mod events;
pub mod export;
pub mod fault;
pub mod fingerprint;
pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use events::{
    parse_event_summary, validate_json, validate_jsonl, EventJournal, EventValue, JournalStats,
};
pub use export::{http_get, serve, Health, ObsServer, ObsSource};
pub use fingerprint::{FingerprintStats, QueryFingerprints};
pub use metrics::{Counter, Gauge, HistogramSnapshot, LatencyHistogram, MetricsSnapshot};
pub use slowlog::{SlowEntry, SlowLog, SLOWLOG_DISABLED};
pub use trace::{
    misestimate_x1000, next_trace_id, noop_recorder, Instruments, Recorder, RingEvent, SpanGuard,
    SpanRecord, TraceReport,
};
