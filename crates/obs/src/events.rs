//! Structured lifecycle event journal.
//!
//! An [`EventJournal`] is a JSONL file (`events.jsonl`, kept beside the
//! WAL) recording engine lifecycle events — WAL append/fsync batches,
//! recovery start/stop, checkpoint builds, cache epoch bumps, slow-query
//! admissions.  Each line is one self-contained JSON object:
//!
//! ```text
//! {"seq": 12, "ts_ns": 48211094, "event": "recovery", "frames_replayed": 3, ...}
//! ```
//!
//! * `seq` is a strictly increasing admission number (never reset, not
//!   even by rotation), so consumers can detect gaps.
//! * `ts_ns` is a **monotonic** timestamp: nanoseconds since the journal
//!   was opened, read from [`Instant`].  Wall-clock time is deliberately
//!   absent — the engine's own notion of time is the transaction clock,
//!   and a monotonic offset cannot run backwards under NTP steps.
//! * Rotation is by size: when appending a line would push the file past
//!   `max_bytes`, older generations shift (`.1` → `.2`, …), the current
//!   file is renamed to `<path>.1`, and a fresh file is started.  The
//!   number of retained generations is configurable (default one), so
//!   disk use is bounded at ~`(generations + 1) × max_bytes`.  Each
//!   rotation writes a `journal_rotate` event as the first line of the
//!   fresh file.
//!
//! The workspace has no serde; encoding is hand-rolled here and checked
//! by the [`validate_json`] well-formedness validator (also used by the
//! `check.sh` JSONL gate).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Default rotation threshold: 4 MiB per generation.
pub const DEFAULT_JOURNAL_MAX_BYTES: u64 = 4 * 1024 * 1024;

/// Default number of rotated generations kept on disk (`<path>.1`).
pub const DEFAULT_JOURNAL_GENERATIONS: usize = 1;

/// A field value in a journal event.
#[derive(Debug, Clone)]
pub enum EventValue {
    U64(u64),
    I64(i64),
    Bool(bool),
    Str(String),
}

impl From<u64> for EventValue {
    fn from(v: u64) -> Self {
        EventValue::U64(v)
    }
}
impl From<usize> for EventValue {
    fn from(v: usize) -> Self {
        EventValue::U64(v as u64)
    }
}
impl From<i64> for EventValue {
    fn from(v: i64) -> Self {
        EventValue::I64(v)
    }
}
impl From<bool> for EventValue {
    fn from(v: bool) -> Self {
        EventValue::Bool(v)
    }
}
impl From<&str> for EventValue {
    fn from(v: &str) -> Self {
        EventValue::Str(v.to_string())
    }
}
impl From<String> for EventValue {
    fn from(v: String) -> Self {
        EventValue::Str(v)
    }
}

impl EventValue {
    fn write_json(&self, out: &mut String) {
        match self {
            EventValue::U64(v) => out.push_str(&v.to_string()),
            EventValue::I64(v) => out.push_str(&v.to_string()),
            EventValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            EventValue::Str(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
        }
    }
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct JournalInner {
    file: File,
    seq: u64,
    bytes: u64,
    rotations: u64,
}

/// Point-in-time counters of an [`EventJournal`], surfaced through
/// `engine_stats()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Admission numbers handed out so far.
    pub seq: u64,
    /// Rotations performed since the journal was opened.
    pub rotations: u64,
    /// Rotated generations retained on disk (`.1`..`.k`).
    pub generations: usize,
    /// Per-generation size threshold in bytes.
    pub max_bytes: u64,
}

impl JournalStats {
    /// Hand-rolled JSON object (the workspace has no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"rotations\": {}, \"generations\": {}, \"max_bytes\": {}}}",
            self.seq, self.rotations, self.generations, self.max_bytes
        )
    }
}

/// Append-only JSONL journal of engine lifecycle events.
pub struct EventJournal {
    path: PathBuf,
    max_bytes: u64,
    generations: usize,
    origin: Instant,
    inner: Mutex<JournalInner>,
}

impl EventJournal {
    /// Opens (appending to, creating if needed) the journal at `path`
    /// with the default rotation threshold.
    pub fn open(path: &Path) -> std::io::Result<EventJournal> {
        Self::open_with_max(path, DEFAULT_JOURNAL_MAX_BYTES)
    }

    /// Opens the journal, rotating once the file exceeds `max_bytes`.
    pub fn open_with_max(path: &Path, max_bytes: u64) -> std::io::Result<EventJournal> {
        Self::open_with_retention(path, max_bytes, DEFAULT_JOURNAL_GENERATIONS)
    }

    /// Opens the journal with an explicit rotation threshold and number
    /// of rotated generations to retain (`<path>.1` .. `<path>.k`).
    pub fn open_with_retention(
        path: &Path,
        max_bytes: u64,
        generations: usize,
    ) -> std::io::Result<EventJournal> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(EventJournal {
            path: path.to_path_buf(),
            max_bytes: max_bytes.max(1),
            generations: generations.max(1),
            origin: Instant::now(),
            inner: Mutex::new(JournalInner {
                file,
                seq: 0,
                bytes,
                rotations: 0,
            }),
        })
    }

    /// The journal's live file path (`<path>.1` .. `<path>.k` are the
    /// rotated generations, `.1` newest).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of rotated generation `i` (1-based).
    fn generation_path(&self, i: usize) -> PathBuf {
        let mut rotated = self.path.as_os_str().to_owned();
        rotated.push(format!(".{i}"));
        PathBuf::from(rotated)
    }

    /// Admission numbers handed out so far.
    pub fn seq(&self) -> u64 {
        self.inner.lock().unwrap().seq
    }

    /// Snapshot of the journal's counters and configuration.
    pub fn stats(&self) -> JournalStats {
        let inner = self.inner.lock().unwrap();
        JournalStats {
            seq: inner.seq,
            rotations: inner.rotations,
            generations: self.generations,
            max_bytes: self.max_bytes,
        }
    }

    /// Composes one JSONL line (without allocating a sequence number).
    fn compose(seq: u64, ts_ns: u64, event: &str, fields: &[(&str, EventValue)]) -> String {
        let mut line = String::with_capacity(96);
        line.push_str(&format!(
            "{{\"seq\": {seq}, \"ts_ns\": {ts_ns}, \"event\": \"{}\"",
            escape_json(event)
        ));
        for (name, value) in fields {
            line.push_str(&format!(", \"{}\": ", escape_json(name)));
            value.write_json(&mut line);
        }
        line.push_str("}\n");
        line
    }

    /// Allocates the next seq and writes `line` (already composed with
    /// that seq).  Write errors are swallowed.
    fn write_line(inner: &mut JournalInner, line: &str) {
        inner.seq += 1;
        if inner.file.write_all(line.as_bytes()).is_ok() {
            inner.bytes += line.len() as u64;
        }
    }

    /// Appends one event line.  Write errors are swallowed: journaling
    /// is diagnostic, never a reason to fail the engine operation that
    /// emitted the event.
    pub fn emit(&self, event: &str, fields: &[(&str, EventValue)]) {
        // An injected *error* here degrades to a dropped event — the
        // same contract as a real journal write failure.
        if crate::fault::crash_point("journal.emit").is_err() {
            return;
        }
        let ts_ns = self.origin.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().unwrap();
        let line = Self::compose(inner.seq, ts_ns, event, fields);
        if inner.bytes > 0 && inner.bytes + line.len() as u64 > self.max_bytes {
            // The rotation decision precedes seq allocation so the
            // `journal_rotate` marker lands first in the fresh file
            // with a lower seq than the event that triggered it.
            if self.rotate(&mut inner).is_err() {
                return;
            }
            inner.rotations += 1;
            let rot = Self::compose(
                inner.seq,
                ts_ns,
                "journal_rotate",
                &[
                    ("rotations", inner.rotations.into()),
                    ("generations", self.generations.into()),
                ],
            );
            Self::write_line(&mut inner, &rot);
            let line = Self::compose(inner.seq, ts_ns, event, fields);
            Self::write_line(&mut inner, &line);
        } else {
            Self::write_line(&mut inner, &line);
        }
    }

    /// Shifts rotated generations (`.i` → `.i+1`, dropping the oldest),
    /// renames the live file to `<path>.1`, and starts a fresh one.
    fn rotate(&self, inner: &mut JournalInner) -> std::io::Result<()> {
        for i in (1..self.generations).rev() {
            let from = self.generation_path(i);
            if from.exists() {
                std::fs::rename(&from, self.generation_path(i + 1))?;
            }
        }
        std::fs::rename(&self.path, self.generation_path(1))?;
        inner.file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&self.path)?;
        inner.bytes = 0;
        Ok(())
    }

    /// Last `n` journal lines across all retained generations, oldest
    /// first.  Holds the journal lock so a concurrent rotation cannot
    /// tear the read.
    pub fn tail_lines(&self, n: usize) -> Vec<String> {
        let _inner = self.inner.lock().unwrap();
        let mut lines: Vec<String> = Vec::new();
        for i in (1..=self.generations).rev() {
            if let Ok(text) = std::fs::read_to_string(self.generation_path(i)) {
                lines.extend(
                    text.lines()
                        .filter(|l| !l.trim().is_empty())
                        .map(str::to_string),
                );
            }
        }
        if let Ok(text) = std::fs::read_to_string(&self.path) {
            lines.extend(
                text.lines()
                    .filter(|l| !l.trim().is_empty())
                    .map(str::to_string),
            );
        }
        if lines.len() > n {
            lines.split_off(lines.len() - n)
        } else {
            lines
        }
    }
}

/// Extracts `(seq, ts_ns, event)` from the fixed prefix every journal
/// line starts with; `None` for lines that don't carry it.  Event names
/// are engine-chosen identifiers, so no unescaping is needed.
pub fn parse_event_summary(line: &str) -> Option<(u64, u64, String)> {
    fn field_u64(line: &str, key: &str) -> Option<u64> {
        let at = line.find(key)? + key.len();
        let digits: String = line[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    }
    let seq = field_u64(line, "\"seq\": ")?;
    let ts_ns = field_u64(line, "\"ts_ns\": ")?;
    let key = "\"event\": \"";
    let at = line.find(key)? + key.len();
    let end = line[at..].find('"')?;
    Some((seq, ts_ns, line[at..at + end].to_string()))
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("path", &self.path)
            .field("max_bytes", &self.max_bytes)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// JSON well-formedness validation (for the check.sh JSONL gate and the
// journal's own tests; the workspace has no serde to lean on).
// ---------------------------------------------------------------------

/// Validates that `s` is exactly one well-formed JSON value.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

/// Validates that every non-empty line of `text` parses as JSON.
/// Returns the number of lines validated.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    Ok(n)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at offset {pos}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| format!("short \\u escape at offset {pos}"))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at offset {pos}"));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at offset {pos}")),
            },
            c if c < 0x20 => {
                return Err(format!("unescaped control byte {c:#04x} at offset {pos}"))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |pos: &mut usize| {
        let from = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(pos) {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(pos) {
            return Err(format!("bad fraction at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(pos) {
            return Err(format!("bad exponent at offset {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("chronos-events-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let mut rotated = p.as_os_str().to_owned();
        rotated.push(".1");
        let _ = std::fs::remove_file(PathBuf::from(rotated));
        p
    }

    #[test]
    fn every_emitted_line_is_well_formed_json() {
        let path = temp_path("wellformed");
        let j = EventJournal::open(&path).unwrap();
        j.emit("recovery", &[("frames_replayed", 3u64.into())]);
        j.emit(
            "slow_query",
            &[
                ("statement", "retrieve (f.rank) \"quoted\"\nnext".into()),
                ("duration_ns", 12345u64.into()),
                ("admitted", true.into()),
            ],
        );
        j.emit("plain", &[]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_jsonl(&text).unwrap(), 3);
        assert!(text.contains("\"event\": \"recovery\""));
        assert!(text.contains("\\\"quoted\\\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn seq_and_ts_are_monotonic() {
        let path = temp_path("monotonic");
        let j = EventJournal::open(&path).unwrap();
        for _ in 0..5 {
            j.emit("tick", &[]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let mut last_seq = None;
        let mut last_ts = None;
        for line in text.lines() {
            let seq: u64 = extract_number(line, "\"seq\": ");
            let ts: u64 = extract_number(line, "\"ts_ns\": ");
            if let Some(prev) = last_seq {
                assert!(seq > prev, "seq must strictly increase");
            }
            if let Some(prev) = last_ts {
                assert!(ts >= prev, "ts_ns must be monotonic");
            }
            last_seq = Some(seq);
            last_ts = Some(ts);
        }
        assert_eq!(last_seq, Some(4));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rotation_by_size_keeps_two_generations_and_global_seq() {
        let path = temp_path("rotate");
        let j = EventJournal::open_with_max(&path, 256).unwrap();
        for i in 0..40 {
            j.emit("fill", &[("i", (i as u64).into())]);
        }
        let live = std::fs::read_to_string(&path).unwrap();
        let mut rotated_path = path.as_os_str().to_owned();
        rotated_path.push(".1");
        let rotated_path = PathBuf::from(rotated_path);
        let rotated = std::fs::read_to_string(&rotated_path).unwrap();
        validate_jsonl(&live).unwrap();
        validate_jsonl(&rotated).unwrap();
        // seq keeps counting across the rotation boundary; each
        // rotation spends one extra seq on its journal_rotate marker.
        let stats = j.stats();
        assert!(stats.rotations >= 1);
        assert_eq!(j.seq(), 40 + stats.rotations);
        assert_eq!(stats.generations, DEFAULT_JOURNAL_GENERATIONS);
        assert!(live.contains("\"i\": 39"));
        // The fresh file opens with the rotation marker.
        assert!(live.starts_with("{\"seq\": "));
        assert!(live
            .lines()
            .next()
            .unwrap()
            .contains("\"event\": \"journal_rotate\""));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&rotated_path).unwrap();
    }

    #[test]
    fn retention_keeps_k_generations_with_global_seq() {
        let path = temp_path("retention");
        // Clean up any stale generation files from a previous run.
        for i in 1..=4 {
            let mut p = path.as_os_str().to_owned();
            p.push(format!(".{i}"));
            let _ = std::fs::remove_file(PathBuf::from(p));
        }
        let j = EventJournal::open_with_retention(&path, 128, 3).unwrap();
        for i in 0..120 {
            j.emit("fill", &[("i", (i as u64).into())]);
        }
        let gen = |i: usize| {
            let mut p = path.as_os_str().to_owned();
            p.push(format!(".{i}"));
            PathBuf::from(p)
        };
        assert!(gen(1).exists() && gen(2).exists() && gen(3).exists());
        assert!(!gen(4).exists(), "retention must cap at 3 generations");
        let stats = j.stats();
        assert!(
            stats.rotations > 3,
            "expected many rotations, got {}",
            stats.rotations
        );
        assert_eq!(stats.generations, 3);
        // tail_lines stitches generations oldest-first with strictly
        // increasing seq, and the rotation markers parse.
        let tail = j.tail_lines(50);
        assert!(!tail.is_empty());
        let mut last = None;
        let mut saw_rotate = false;
        for line in &tail {
            let (seq, _ts, event) = parse_event_summary(line).unwrap();
            if let Some(prev) = last {
                assert!(seq > prev, "seq must strictly increase across generations");
            }
            last = Some(seq);
            if event == "journal_rotate" {
                saw_rotate = true;
            }
        }
        assert!(saw_rotate);
        assert_eq!(j.tail_lines(3).len(), 3);
        std::fs::remove_file(&path).unwrap();
        for i in 1..=3 {
            std::fs::remove_file(gen(i)).unwrap();
        }
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "{\"a\": [1, -2.5, 3e4], \"b\": {\"c\": null}, \"d\": \"x\\n\\u0041\"}",
            "  true  ",
            "-0.5e-2",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good:?} rejected: {e}"));
        }
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "01abc",
            "{} trailing",
            "{\"a\" 1}",
            "nul",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} accepted");
        }
    }

    fn extract_number(line: &str, key: &str) -> u64 {
        let at = line.find(key).unwrap() + key.len();
        line[at..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    }
}
