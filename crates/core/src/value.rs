//! Attribute values.
//!
//! The explicit (non-temporal) attributes of a relation hold [`Value`]s.
//! User-defined time (paper §4.5) is deliberately *not* a special
//! mechanism: it is an ordinary attribute of type [`AttrType::Date`]
//! whose values the DBMS stores, compares and prints but never
//! interprets — "all that is needed is an internal representation and
//! input and output functions".

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::calendar::Date;
use crate::chronon::Chronon;

/// The type of an explicit attribute.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AttrType {
    /// Character string.
    Str,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// User-defined time: a calendar date stored as a chronon,
    /// uninterpreted by the engine.
    Date,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Str => "str",
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Bool => "bool",
            AttrType::Date => "date",
        };
        f.pad(s)
    }
}

/// A single attribute value.
///
/// Strings are reference-counted so tuples copy cheaply through the
/// algebra pipeline.  `Float` wraps the bits to provide total ordering
/// and hashing (NaN sorts last; `-0.0 == 0.0`).
#[derive(Clone, Debug)]
pub enum Value {
    /// A string.
    Str(Arc<str>),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A user-defined time value.
    Date(Chronon),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The value's type.
    pub fn attr_type(&self) -> AttrType {
        match self {
            Value::Str(_) => AttrType::Str,
            Value::Int(_) => AttrType::Int,
            Value::Float(_) => AttrType::Float,
            Value::Bool(_) => AttrType::Bool,
            Value::Date(_) => AttrType::Date,
        }
    }

    /// Borrows the string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The date content, if this is a date.
    pub fn as_date(&self) -> Option<Chronon> {
        match self {
            Value::Date(c) => Some(*c),
            _ => None,
        }
    }

    /// Normalized float bits giving a total order (NaN canonicalized and
    /// greatest, `-0.0` = `0.0`).
    fn float_key(x: f64) -> u64 {
        if x.is_nan() {
            return u64::MAX;
        }
        let x = if x == 0.0 { 0.0 } else { x }; // collapse -0.0
        let bits = x.to_bits();
        if bits >> 63 == 0 {
            bits ^ (1 << 63)
        } else {
            !bits
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: within a type, natural order; across types, by type
    /// tag (Str < Int < Float < Bool < Date).  Cross-type comparisons only
    /// occur in heterogeneous sort keys, never in typed query evaluation.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Str(_) => 0,
                Int(_) => 1,
                Float(_) => 2,
                Bool(_) => 3,
                Date(_) => 4,
            }
        }
        match (self, other) {
            (Str(a), Str(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => Value::float_key(*a).cmp(&Value::float_key(*b)),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Str(s) => {
                state.write_u8(0);
                s.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(1);
                i.hash(state);
            }
            Value::Float(x) => {
                state.write_u8(2);
                Value::float_key(*x).hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(3);
                b.hash(state);
            }
            Value::Date(c) => {
                state.write_u8(4);
                c.ticks().hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.pad(s),
            Value::Int(i) => f.pad(&i.to_string()),
            Value::Float(x) => f.pad(&format!("{x}")),
            Value::Bool(b) => f.pad(if *b { "true" } else { "false" }),
            Value::Date(c) => f.pad(&Date::from_chronon(*c).to_string()),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Chronon> for Value {
    fn from(c: Chronon) -> Value {
        Value::Date(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_and_ordering_within_types() {
        assert_eq!(Value::str("full"), Value::str("full"));
        assert!(Value::str("associate") < Value::str("full"));
        assert!(Value::Int(3) < Value::Int(7));
        assert!(Value::Float(1.5) < Value::Float(2.0));
    }

    #[test]
    fn float_total_order_handles_nan_and_zero() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert!(Value::Float(f64::INFINITY) < Value::Float(f64::NAN));
        assert!(Value::Float(-f64::INFINITY) < Value::Float(0.0));
    }

    #[test]
    fn display_matches_paper_formats() {
        assert_eq!(Value::str("Merrie").to_string(), "Merrie");
        let d = crate::calendar::date("09/01/77").unwrap();
        assert_eq!(Value::Date(d).to_string(), "09/01/77");
    }

    #[test]
    fn types_report_correctly() {
        assert_eq!(Value::str("x").attr_type(), AttrType::Str);
        assert_eq!(Value::Int(1).attr_type(), AttrType::Int);
        assert_eq!(Value::Date(Chronon::ZERO).attr_type(), AttrType::Date);
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::str("a")), hash_of(&Value::str("a")));
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Int(42)));
    }
}
