//! # chronos-core
//!
//! Core library for **ChronosDB**, a Rust reproduction of
//! Snodgrass & Ahn, *"A Taxonomy of Time in Databases"* (SIGMOD 1985).
//!
//! The paper identifies three kinds of time that a database may support:
//!
//! * **transaction time** — when information was stored in the database.
//!   Supplied by the DBMS, append-only, models the *representation*;
//! * **valid time** — when the stored information was true in reality.
//!   User-supplied and correctable, models *reality*;
//! * **user-defined time** — additional temporal attributes whose values the
//!   DBMS stores but does not interpret.
//!
//! and derives four classes of database from two orthogonal capabilities
//! (*rollback* and *historical queries*): **static**, **static rollback**,
//! **historical** and **temporal** (bitemporal) databases.
//!
//! This crate provides:
//!
//! * the time domain ([`Chronon`], [`TimePoint`], [`Period`], Allen interval
//!   relations, a proleptic-Gregorian [`calendar`]);
//! * the taxonomy itself as code ([`taxonomy`]), including the literature
//!   classification tables of the paper's Figures 1 and 13;
//! * the relational model: the [`value`], [`schema`] and `tuple` modules;
//! * reference implementations of all four relation classes
//!   ([`relation`]), in both the conceptual "cube of snapshots" form and
//!   the practical tuple-timestamped form, whose equivalence is the
//!   executable semantics of the paper.
//!
//! Higher layers build on this crate: `chronos-storage` (pages, WAL,
//! indexes), `chronos-algebra` (temporal relational algebra),
//! `chronos-tquel` (the TQuel query language) and `chronos-db` (the DBMS
//! facade).
//!
//! ## Quick example
//!
//! ```
//! use chronos_core::prelude::*;
//!
//! // Build the start of the paper's Figure 8 bitemporal `faculty` relation.
//! let schema = Schema::new(vec![
//!     Attribute::new("name", AttrType::Str),
//!     Attribute::new("rank", AttrType::Str),
//! ]).unwrap();
//! let mut faculty = BitemporalTable::new(schema, TemporalSignature::Interval);
//!
//! let recorded = date("08/25/77").unwrap();
//! faculty.begin()
//!     .insert(tuple(["Merrie", "associate"]), Period::from_start(date("09/01/77").unwrap()))
//!     .commit(recorded)
//!     .unwrap();
//! assert_eq!(faculty.current().len(), 1);
//! ```

pub mod calendar;
pub mod chronon;
pub mod clock;
pub mod error;
pub mod period;
pub mod relation;
pub mod render;
pub mod schema;
pub mod taxonomy;
pub mod timepoint;
pub mod tuple;
pub mod value;

pub use chronon::Chronon;
pub use error::{CoreError, CoreResult};
pub use period::Period;
pub use timepoint::TimePoint;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::calendar::{date, Date};
    pub use crate::chronon::Chronon;
    pub use crate::clock::{Clock, ManualClock, SystemClock};
    pub use crate::error::{CoreError, CoreResult};
    pub use crate::period::{AllenRelation, Period};
    pub use crate::relation::historical::HistoricalRelation;
    pub use crate::relation::rollback::{
        CheckpointedRollback, RollbackStore, SnapshotRollback, TimestampedRollback,
    };
    pub use crate::relation::static_rel::StaticRelation;
    pub use crate::relation::temporal::{BitemporalTable, SnapshotTemporal, TemporalStore};
    pub use crate::relation::{HistoricalOp, RowSelector, Validity};
    pub use crate::schema::{Attribute, RelationClass, Schema, TemporalSignature};
    pub use crate::taxonomy::{DatabaseClass, TimeKind};
    pub use crate::timepoint::TimePoint;
    pub use crate::tuple::{tuple, Tuple};
    pub use crate::value::{AttrType, Value};
}
