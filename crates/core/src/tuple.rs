//! Tuples: ordered sequences of attribute values.
//!
//! A [`Tuple`] holds only the explicit attribute values; the implicit
//! temporal dimensions (valid and transaction time) live beside the
//! tuple in the relation classes, exactly as the paper's "overheads
//! associated with each tuple".

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// An immutable tuple of attribute values.
///
/// Cloning is cheap (a single `Arc` bump): the algebra layer freely
/// passes tuples between operators.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple {
            values: values.into(),
        }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at `idx` (panics when out of range, as does slice
    /// indexing).
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// The value at `idx`, if in range.
    pub fn try_get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// A new tuple holding the values at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenates two tuples (used by joins and cartesian products).
    #[must_use]
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values.iter()).finish()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        Tuple::new(iter.into_iter().collect())
    }
}

/// Builds a tuple from anything convertible to [`Value`]s.
///
/// ```
/// use chronos_core::tuple::tuple;
/// let t = tuple(["Merrie", "full"]);
/// assert_eq!(t.to_string(), "(Merrie, full)");
/// ```
pub fn tuple<V: Into<Value>, I: IntoIterator<Item = V>>(values: I) -> Tuple {
    values.into_iter().map(Into::into).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple(["Tom", "associate"]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0).as_str(), Some("Tom"));
        assert_eq!(t.try_get(2), None);
    }

    #[test]
    fn projection_and_concat() {
        let t = tuple(["Merrie", "full"]);
        assert_eq!(t.project(&[1]), tuple(["full"]));
        assert_eq!(t.project(&[1, 0]), tuple(["full", "Merrie"]));
        let u = Tuple::new(vec![Value::Int(7)]);
        let c = t.concat(&u);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2).as_int(), Some(7));
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(tuple(["a", "b"]), tuple(["a", "b"]));
        assert_ne!(tuple(["a", "b"]), tuple(["b", "a"]));
    }
}
