//! Proleptic-Gregorian day calendar for the chronon axis.
//!
//! The paper's figures use dates like `12/01/82`; ChronosDB fixes the
//! interpretation of one chronon tick as **one civil day**, with tick 0 =
//! 1970-01-01 (the Unix epoch day).  Conversions use the classic
//! days-from-civil / civil-from-days algorithms and are exact over the
//! full proleptic-Gregorian range supported by [`Date`].
//!
//! Two textual forms are accepted:
//!
//! * the paper's `mm/dd/yy` (two-digit years are pivoted into 19yy, since
//!   every date in the paper is from the 1970s and 80s) and `mm/dd/yyyy`;
//! * ISO `yyyy-mm-dd`.
//!
//! [`Date`] displays as `mm/dd/yy` so rendered tables match the paper
//! byte for byte.

use std::fmt;
use std::str::FromStr;

use crate::chronon::Chronon;
use crate::error::{CoreError, CoreResult};

/// A civil (year, month, day) date on the proleptic-Gregorian calendar.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date, validating month and day-of-month.
    pub fn new(year: i32, month: u8, day: u8) -> CoreResult<Date> {
        if !(1..=12).contains(&month) {
            return Err(CoreError::InvalidDate(format!(
                "month {month} out of range 1..=12"
            )));
        }
        let dim = days_in_month(year, month);
        if day == 0 || day > dim {
            return Err(CoreError::InvalidDate(format!(
                "day {day} out of range 1..={dim} for {year:04}-{month:02}"
            )));
        }
        Ok(Date { year, month, day })
    }

    /// The year (may be negative for BCE on the proleptic calendar).
    pub const fn year(self) -> i32 {
        self.year
    }

    /// The month, 1–12.
    pub const fn month(self) -> u8 {
        self.month
    }

    /// The day of month, 1–31.
    pub const fn day(self) -> u8 {
        self.day
    }

    /// Converts to the chronon of this day (days since 1970-01-01).
    pub fn to_chronon(self) -> Chronon {
        Chronon::new(days_from_civil(self.year, self.month, self.day))
    }

    /// Converts a chronon back to a civil date.
    pub fn from_chronon(c: Chronon) -> Date {
        let (year, month, day) = civil_from_days(c.ticks());
        Date { year, month, day }
    }

    /// Day of week, 0 = Sunday … 6 = Saturday.
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (4).
        let z = self.to_chronon().ticks();
        ((z.rem_euclid(7) + 4) % 7) as u8
    }
}

impl FromStr for Date {
    type Err = CoreError;

    fn from_str(s: &str) -> CoreResult<Date> {
        let bad = || CoreError::InvalidDate(format!("unparsable date {s:?}"));
        if s.contains('/') {
            // mm/dd/yy or mm/dd/yyyy — the paper's format.
            let mut it = s.split('/');
            let (m, d, y) = match (it.next(), it.next(), it.next(), it.next()) {
                (Some(m), Some(d), Some(y), None) => (m, d, y),
                _ => return Err(bad()),
            };
            let month: u8 = m.parse().map_err(|_| bad())?;
            let day: u8 = d.parse().map_err(|_| bad())?;
            let year: i32 = match y.len() {
                2 => 1900 + y.parse::<i32>().map_err(|_| bad())?,
                4 => y.parse().map_err(|_| bad())?,
                _ => return Err(bad()),
            };
            Date::new(year, month, day)
        } else if s.contains('-') && !s.starts_with('-') {
            // ISO yyyy-mm-dd.
            let mut it = s.split('-');
            let (y, m, d) = match (it.next(), it.next(), it.next(), it.next()) {
                (Some(y), Some(m), Some(d), None) => (y, m, d),
                _ => return Err(bad()),
            };
            Date::new(
                y.parse().map_err(|_| bad())?,
                m.parse().map_err(|_| bad())?,
                d.parse().map_err(|_| bad())?,
            )
        } else {
            Err(bad())
        }
    }
}

impl fmt::Display for Date {
    /// `mm/dd/yy` for 20th-century dates (as printed in the paper),
    /// `mm/dd/yyyy` otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = if (1900..2000).contains(&self.year) {
            format!("{:02}/{:02}/{:02}", self.month, self.day, self.year - 1900)
        } else {
            format!("{:02}/{:02}/{:04}", self.month, self.day, self.year)
        };
        f.pad(&text)
    }
}

/// Parses a date in either accepted format and returns its chronon.
///
/// This is the idiomatic way to write down paper dates:
///
/// ```
/// use chronos_core::calendar::date;
/// let promoted = date("12/01/82").unwrap();
/// assert_eq!(date("1982-12-01").unwrap(), promoted);
/// ```
pub fn date(s: &str) -> CoreResult<Chronon> {
    s.parse::<Date>().map(Date::to_chronon)
}

/// True iff `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 from a civil date (Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m as i32 + 9) % 12); // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::new(1970, 1, 1).unwrap().to_chronon(), Chronon::ZERO);
        assert_eq!(
            Date::from_chronon(Chronon::ZERO),
            Date::new(1970, 1, 1).unwrap()
        );
    }

    #[test]
    fn paper_dates_parse_and_print() {
        for s in [
            "08/25/77", "12/15/82", "12/07/82", "01/10/83", "02/25/84", "09/01/77", "12/01/82",
            "12/05/82", "01/01/83", "03/01/84", "12/10/82", "12/11/82", "12/20/82",
        ] {
            let c = date(s).unwrap();
            assert_eq!(Date::from_chronon(c).to_string(), s, "round trip of {s}");
        }
    }

    #[test]
    fn iso_and_paper_formats_agree() {
        assert_eq!(date("12/01/82").unwrap(), date("1982-12-01").unwrap());
        assert_eq!(date("12/01/1982").unwrap(), date("1982-12-01").unwrap());
    }

    #[test]
    fn ordering_matches_chronology() {
        assert!(date("08/25/77").unwrap() < date("12/15/82").unwrap());
        assert!(date("12/07/82").unwrap() < date("12/10/82").unwrap());
        assert!(date("12/10/82").unwrap() < date("12/15/82").unwrap());
    }

    #[test]
    fn rejects_nonsense() {
        assert!(date("13/01/82").is_err());
        assert!(date("02/30/83").is_err());
        assert!(date("02/29/83").is_err()); // 1983 not a leap year
        assert!(date("02/29/84").is_ok()); // 1984 is
        assert!(date("snodgrass").is_err());
        assert!(date("12/01").is_err());
        assert!(date("1982-13-01").is_err());
        assert!(date("00/10/82").is_err());
        assert!(date("01/00/82").is_err());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1984));
        assert!(!is_leap_year(1985));
    }

    #[test]
    fn weekday_known_values() {
        // 1970-01-01 was a Thursday.
        assert_eq!(Date::new(1970, 1, 1).unwrap().weekday(), 4);
        // 1985-05-28, first day of SIGMOD '85 week, was a Tuesday.
        assert_eq!(Date::new(1985, 5, 28).unwrap().weekday(), 2);
    }

    #[test]
    fn round_trip_dense_range() {
        // Every day across several leap boundaries round-trips.
        let start = Date::new(1979, 12, 20).unwrap().to_chronon().ticks();
        let end = Date::new(1985, 3, 10).unwrap().to_chronon().ticks();
        for t in start..=end {
            let d = Date::from_chronon(Chronon::new(t));
            assert_eq!(d.to_chronon().ticks(), t, "{d}");
        }
    }

    #[test]
    fn display_past_2000_uses_four_digits() {
        let d = Date::new(2026, 7, 5).unwrap();
        assert_eq!(d.to_string(), "07/05/2026");
    }
}
