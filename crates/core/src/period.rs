//! Periods (time intervals) and their algebra.
//!
//! A [`Period`] is a half-open interval `[start, end)` of [`TimePoint`]s.
//! Half-open periods compose without gaps or double counting: the paper's
//! Figure 6 row `Merrie associate [09/01/77, 12/01/82)` meets
//! `Merrie full [12/01/82, ∞)` exactly.
//!
//! Besides set operations (intersection, union of adjacent periods,
//! difference), this module implements:
//!
//! * **Allen's thirteen interval relations** ([`AllenRelation`]), the
//!   standard vocabulary for "the temporal relationship of tuples
//!   participating in a derivation" that the paper's `when` clause needs;
//! * the **TQuel temporal constructors** `start of`, `end of` and
//!   `extend`, and the **TQuel predicates** `overlap`, `precede` and
//!   `equal` used in the paper's example queries.

use std::fmt;

use crate::chronon::Chronon;
use crate::timepoint::TimePoint;

/// A half-open period `[start, end)` on the compactified time axis.
///
/// A period with `start >= end` is *empty*; all empty periods compare
/// equal through [`Period::is_empty`] but retain their endpoints.
/// Construction via [`Period::new`] never produces `start > end`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Period {
    start: TimePoint,
    end: TimePoint,
}

impl Period {
    /// The full axis `(-∞, ∞)`.
    pub const ALWAYS: Period = Period {
        start: TimePoint::MinusInfinity,
        end: TimePoint::PlusInfinity,
    };

    /// The canonical empty period.
    pub const EMPTY: Period = Period {
        start: TimePoint::PlusInfinity,
        end: TimePoint::PlusInfinity,
    };

    /// Creates `[start, end)`, returning `None` when `start > end`.
    #[inline]
    pub fn new(start: impl Into<TimePoint>, end: impl Into<TimePoint>) -> Option<Period> {
        let (start, end) = (start.into(), end.into());
        if start > end {
            None
        } else {
            Some(Period { start, end })
        }
    }

    /// Creates `[start, end)`, clamping a backwards pair to empty.
    #[inline]
    pub fn clamped(start: impl Into<TimePoint>, end: impl Into<TimePoint>) -> Period {
        let (start, end) = (start.into(), end.into());
        if start > end {
            Period::EMPTY
        } else {
            Period { start, end }
        }
    }

    /// `[start, ∞)` — "valid until further notice", the `∞` rows of the
    /// paper's figures.
    #[inline]
    pub fn from_start(start: impl Into<TimePoint>) -> Period {
        Period {
            start: start.into(),
            end: TimePoint::PlusInfinity,
        }
    }

    /// `(-∞, end)`.
    #[inline]
    pub fn until(end: impl Into<TimePoint>) -> Period {
        Period {
            start: TimePoint::MinusInfinity,
            end: end.into(),
        }
    }

    /// The degenerate period holding the single chronon `c`: `[c, c+1)`.
    ///
    /// Event relations (paper Figure 9) and `start of` / `end of`
    /// expressions denote instants; representing an instant as a
    /// one-chronon period lets every temporal predicate work uniformly on
    /// periods.
    #[inline]
    pub fn instant(c: Chronon) -> Period {
        Period {
            start: TimePoint::Finite(c),
            end: TimePoint::Finite(c.succ()),
        }
    }

    /// The degenerate period at a time point; infinite points yield an
    /// empty period anchored at that point.
    #[inline]
    pub fn instant_at(p: TimePoint) -> Period {
        match p {
            TimePoint::Finite(c) => Period::instant(c),
            other => Period {
                start: other,
                end: other,
            },
        }
    }

    /// The inclusive start (`from` / `(start)` column of the figures).
    #[inline]
    pub const fn start(self) -> TimePoint {
        self.start
    }

    /// The exclusive end (`to` / `(end)` column of the figures).
    #[inline]
    pub const fn end(self) -> TimePoint {
        self.end
    }

    /// True iff the period contains no chronon.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.start >= self.end
    }

    /// Number of chronons covered, if finite.
    pub fn duration(self) -> Option<i64> {
        match (self.start, self.end) {
            _ if self.is_empty() => Some(0),
            (TimePoint::Finite(s), TimePoint::Finite(e)) => Some(e.since(s)),
            _ => None,
        }
    }

    /// True iff the period contains the chronon `c`.
    #[inline]
    pub fn contains(self, c: Chronon) -> bool {
        let p = TimePoint::Finite(c);
        self.start <= p && p < self.end
    }

    /// True iff the period contains the time point `p`.
    ///
    /// `-∞` is a member only of periods starting at `-∞`; `+∞` is a member
    /// of no half-open period but is treated as contained when the period
    /// extends to `+∞`, matching the paper's reading of a `∞` end as
    /// "still valid now and into the future".
    #[inline]
    pub fn contains_point(self, p: TimePoint) -> bool {
        if self.is_empty() {
            return false;
        }
        match p {
            TimePoint::PlusInfinity => self.end == TimePoint::PlusInfinity,
            _ => self.start <= p && p < self.end,
        }
    }

    /// True iff `other` lies entirely within `self`.
    #[inline]
    pub fn encloses(self, other: Period) -> bool {
        if other.is_empty() {
            return true;
        }
        self.start <= other.start && other.end <= self.end
    }

    /// TQuel `overlap`: the two periods share at least one chronon
    /// (instants being one-chronon periods).
    #[inline]
    pub fn overlaps(self, other: Period) -> bool {
        !self.intersect(other).is_empty()
    }

    /// TQuel `precede`: every chronon of `self` is before every chronon of
    /// `other` (adjacency counts: `[a,b)` precedes `[b,c)`).
    #[inline]
    pub fn precedes(self, other: Period) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.end <= other.start
    }

    /// Periods that together cover `[min(start), max(end))` without a gap.
    #[inline]
    pub fn meets_or_overlaps(self, other: Period) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.start <= other.end && other.start <= self.end
    }

    /// Intersection (possibly empty).
    #[inline]
    #[must_use]
    pub fn intersect(self, other: Period) -> Period {
        let start = self.start.max_of(other.start);
        let end = self.end.min_of(other.end);
        if start >= end {
            Period::EMPTY
        } else {
            Period { start, end }
        }
    }

    /// Union, defined only when the periods meet or overlap (otherwise the
    /// result would not be a period).
    #[must_use]
    pub fn union(self, other: Period) -> Option<Period> {
        if self.is_empty() {
            return Some(other);
        }
        if other.is_empty() {
            return Some(self);
        }
        if self.meets_or_overlaps(other) {
            Some(Period {
                start: self.start.min_of(other.start),
                end: self.end.max_of(other.end),
            })
        } else {
            None
        }
    }

    /// TQuel `extend`: the smallest period covering both operands
    /// (`e1 extend e2` = from the earlier start to the later end), defined
    /// even across a gap.
    #[must_use]
    pub fn extend(self, other: Period) -> Period {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Period {
            start: self.start.min_of(other.start),
            end: self.end.max_of(other.end),
        }
    }

    /// Set difference `self \ other`, yielding zero, one or two pieces.
    pub fn difference(self, other: Period) -> (Option<Period>, Option<Period>) {
        if self.is_empty() {
            return (None, None);
        }
        let cut = self.intersect(other);
        if cut.is_empty() {
            return (Some(self), None);
        }
        let left = if self.start < cut.start {
            Some(Period {
                start: self.start,
                end: cut.start,
            })
        } else {
            None
        };
        let right = if cut.end < self.end {
            Some(Period {
                start: cut.end,
                end: self.end,
            })
        } else {
            None
        };
        (left, right)
    }

    /// TQuel `start of`: the instant at which the period begins.
    #[must_use]
    pub fn start_of(self) -> Period {
        Period::instant_at(self.start)
    }

    /// TQuel `end of`: the instant at which the period ends.
    ///
    /// For a period ending at a finite `e`, `end of` denotes the last
    /// chronon *inside* the period (`e - 1`), matching the inclusive
    /// endpoints printed in the paper's tables.
    #[must_use]
    pub fn end_of(self) -> Period {
        match self.end {
            TimePoint::Finite(e) if !self.is_empty() => Period::instant(e.pred()),
            _ => Period::instant_at(self.end),
        }
    }

    /// Classifies the pair under Allen's thirteen interval relations.
    ///
    /// Both periods must be non-empty (empty periods have no Allen
    /// classification); returns `None` otherwise.
    pub fn allen(self, other: Period) -> Option<AllenRelation> {
        use std::cmp::Ordering::*;
        if self.is_empty() || other.is_empty() {
            return None;
        }
        let (s1, e1, s2, e2) = (self.start, self.end, other.start, other.end);
        Some(match (s1.cmp(&s2), e1.cmp(&e2)) {
            (Equal, Equal) => AllenRelation::Equal,
            (Equal, Less) => AllenRelation::Starts,
            (Equal, Greater) => AllenRelation::StartedBy,
            (Greater, Equal) => AllenRelation::Finishes,
            (Less, Equal) => AllenRelation::FinishedBy,
            (Less, Less) => {
                if e1 < s2 {
                    AllenRelation::Before
                } else if e1 == s2 {
                    AllenRelation::Meets
                } else {
                    AllenRelation::Overlaps
                }
            }
            (Less, Greater) => AllenRelation::Contains,
            (Greater, Less) => AllenRelation::During,
            (Greater, Greater) => {
                if s1 > e2 {
                    AllenRelation::After
                } else if s1 == e2 {
                    AllenRelation::MetBy
                } else {
                    AllenRelation::OverlappedBy
                }
            }
        })
    }
}

impl From<Chronon> for Period {
    /// A chronon converts to the instant period containing it.
    fn from(c: Chronon) -> Self {
        Period::instant(c)
    }
}

impl fmt::Debug for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}, {:?})", self.start, self.end)
    }
}

impl fmt::Display for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Allen's thirteen qualitative relations between two non-empty intervals.
///
/// `LEGOL 2.0` and TQuel expose a subset (`precede`, `overlap`, `equal`);
/// the full set is provided because historical-query languages are built
/// from it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AllenRelation {
    /// `self` ends strictly before `other` starts.
    Before,
    /// `self` ends exactly where `other` starts.
    Meets,
    /// proper overlap with `self` starting first.
    Overlaps,
    /// same start, `self` ends first.
    Starts,
    /// `self` strictly inside `other`.
    During,
    /// same end, `self` starts later.
    Finishes,
    /// identical intervals.
    Equal,
    /// same end, `self` starts earlier (inverse of `Finishes`).
    FinishedBy,
    /// `other` strictly inside `self` (inverse of `During`).
    Contains,
    /// same start, `self` ends later (inverse of `Starts`).
    StartedBy,
    /// proper overlap with `other` starting first (inverse of `Overlaps`).
    OverlappedBy,
    /// `other` ends exactly where `self` starts (inverse of `Meets`).
    MetBy,
    /// `self` starts strictly after `other` ends (inverse of `Before`).
    After,
}

impl AllenRelation {
    /// The inverse relation (swap the operands).
    #[must_use]
    pub fn inverse(self) -> AllenRelation {
        use AllenRelation::*;
        match self {
            Before => After,
            Meets => MetBy,
            Overlaps => OverlappedBy,
            Starts => StartedBy,
            During => Contains,
            Finishes => FinishedBy,
            Equal => Equal,
            FinishedBy => Finishes,
            Contains => During,
            StartedBy => Starts,
            OverlappedBy => Overlaps,
            MetBy => Meets,
            After => Before,
        }
    }

    /// True for the relations in which the intervals share a chronon
    /// (TQuel `overlap`).
    pub fn is_overlapping(self) -> bool {
        use AllenRelation::*;
        !matches!(self, Before | Meets | MetBy | After)
    }
}

impl fmt::Display for AllenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AllenRelation::Before => "before",
            AllenRelation::Meets => "meets",
            AllenRelation::Overlaps => "overlaps",
            AllenRelation::Starts => "starts",
            AllenRelation::During => "during",
            AllenRelation::Finishes => "finishes",
            AllenRelation::Equal => "equal",
            AllenRelation::FinishedBy => "finished-by",
            AllenRelation::Contains => "contains",
            AllenRelation::StartedBy => "started-by",
            AllenRelation::OverlappedBy => "overlapped-by",
            AllenRelation::MetBy => "met-by",
            AllenRelation::After => "after",
        };
        f.pad(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: i64, b: i64) -> Period {
        Period::new(Chronon::new(a), Chronon::new(b)).unwrap()
    }

    #[test]
    fn construction_rejects_backwards() {
        assert!(Period::new(Chronon::new(5), Chronon::new(3)).is_none());
        assert!(Period::new(Chronon::new(3), Chronon::new(3))
            .unwrap()
            .is_empty());
        assert_eq!(
            Period::clamped(Chronon::new(5), Chronon::new(3)),
            Period::EMPTY
        );
    }

    #[test]
    fn contains_half_open() {
        let q = p(2, 5);
        assert!(!q.contains(Chronon::new(1)));
        assert!(q.contains(Chronon::new(2)));
        assert!(q.contains(Chronon::new(4)));
        assert!(!q.contains(Chronon::new(5)));
    }

    #[test]
    fn contains_point_at_infinity() {
        let open = Period::from_start(Chronon::new(3));
        assert!(open.contains_point(TimePoint::INFINITY));
        assert!(!p(0, 9).contains_point(TimePoint::INFINITY));
        assert!(Period::ALWAYS.contains_point(TimePoint::MINUS_INFINITY));
        assert!(!p(0, 9).contains_point(TimePoint::MINUS_INFINITY));
    }

    #[test]
    fn intersection_and_union() {
        assert_eq!(p(1, 5).intersect(p(3, 9)), p(3, 5));
        assert!(p(1, 3).intersect(p(3, 5)).is_empty());
        assert_eq!(p(1, 3).union(p(3, 5)), Some(p(1, 5)));
        assert_eq!(p(1, 2).union(p(4, 5)), None);
        assert_eq!(p(1, 2).extend(p(4, 5)), p(1, 5));
    }

    #[test]
    fn difference_pieces() {
        let (l, r) = p(1, 9).difference(p(3, 5));
        assert_eq!((l, r), (Some(p(1, 3)), Some(p(5, 9))));
        let (l, r) = p(1, 9).difference(p(0, 10));
        assert_eq!((l, r), (None, None));
        let (l, r) = p(1, 9).difference(p(20, 30));
        assert_eq!((l, r), (Some(p(1, 9)), None));
        let (l, r) = p(1, 9).difference(p(1, 5));
        assert_eq!((l, r), (None, Some(p(5, 9))));
    }

    #[test]
    fn tquel_predicates() {
        // Figure 6 query: Merrie's `full` period overlaps the start of
        // Tom's period.
        let merrie_full = Period::from_start(Chronon::new(100));
        let tom = Period::from_start(Chronon::new(104));
        assert!(merrie_full.overlaps(tom.start_of()));
        let merrie_assoc = p(0, 100);
        assert!(!merrie_assoc.overlaps(tom.start_of()));
        assert!(merrie_assoc.precedes(tom));
        assert!(!tom.precedes(merrie_assoc));
    }

    #[test]
    fn start_and_end_of() {
        let q = p(2, 7);
        assert_eq!(q.start_of(), Period::instant(Chronon::new(2)));
        assert_eq!(q.end_of(), Period::instant(Chronon::new(6)));
        let open = Period::from_start(Chronon::new(2));
        assert_eq!(open.end_of().start(), TimePoint::INFINITY);
        assert!(open.end_of().is_empty());
    }

    #[test]
    fn allen_all_thirteen() {
        use AllenRelation::*;
        let cases = [
            (p(0, 2), p(5, 8), Before),
            (p(0, 5), p(5, 8), Meets),
            (p(0, 6), p(5, 8), Overlaps),
            (p(5, 6), p(5, 8), Starts),
            (p(6, 7), p(5, 8), During),
            (p(6, 8), p(5, 8), Finishes),
            (p(5, 8), p(5, 8), Equal),
            (p(4, 8), p(5, 8), FinishedBy),
            (p(4, 9), p(5, 8), Contains),
            (p(5, 9), p(5, 8), StartedBy),
            (p(6, 9), p(5, 8), OverlappedBy),
            (p(8, 9), p(5, 8), MetBy),
            (p(9, 12), p(5, 8), After),
        ];
        for (a, b, expect) in cases {
            assert_eq!(a.allen(b), Some(expect), "{a:?} vs {b:?}");
            assert_eq!(b.allen(a), Some(expect.inverse()), "inverse {a:?} vs {b:?}");
        }
    }

    #[test]
    fn allen_empty_is_unclassified() {
        assert_eq!(Period::EMPTY.allen(p(0, 1)), None);
        assert_eq!(p(0, 1).allen(Period::EMPTY), None);
    }

    #[test]
    fn overlap_matches_allen() {
        let samples = [p(0, 2), p(0, 5), p(2, 5), p(4, 9), p(5, 6), Period::ALWAYS];
        for a in samples {
            for b in samples {
                let via_allen = a.allen(b).map(AllenRelation::is_overlapping);
                assert_eq!(Some(a.overlaps(b)), via_allen, "{a:?} vs {b:?}");
            }
        }
    }
}
