//! The taxonomy itself, as code.
//!
//! The paper's central contribution is a classification, so ChronosDB
//! makes the classification executable: [`TimeKind`] carries the
//! attribute matrix of Figure 12, [`DatabaseClass`] the 2×2 of Figure 10
//! and the incidence matrix of Figure 11, and [`classify`] derives a
//! database class from capability predicates.  The [`literature`]
//! submodule encodes the paper's survey tables (Figures 1 and 13).

pub mod literature;

use std::fmt;

/// What a time value models: the stored *representation* or *reality*.
///
/// This is the distinction the paper keeps (and sharpens) from the prior
/// literature, discarding the ill-defined "application dependence" as a
/// classifier (§3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Modeled {
    /// The history of database activity.
    Representation,
    /// The history of the real world.
    Reality,
}

impl fmt::Display for Modeled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Modeled::Representation => "Representation",
            Modeled::Reality => "Reality",
        })
    }
}

/// The three kinds of time (paper §4, Figure 12).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimeKind {
    /// When the information was stored in the database; DBMS-supplied.
    Transaction,
    /// When the stored information is true in reality; user-supplied and
    /// correctable.
    Valid,
    /// Additional temporal attributes the DBMS stores but never
    /// interprets.
    UserDefined,
}

impl TimeKind {
    /// All three kinds, in the paper's order.
    pub const ALL: [TimeKind; 3] = [
        TimeKind::Transaction,
        TimeKind::Valid,
        TimeKind::UserDefined,
    ];

    /// Figure 12, column "Append-Only": may values of this kind only be
    /// appended, never changed?
    pub fn append_only(self) -> bool {
        matches!(self, TimeKind::Transaction)
    }

    /// Figure 12, column "Application Independent": is the value under
    /// DBMS rather than user control, with DBMS-interpretable semantics?
    pub fn application_independent(self) -> bool {
        !matches!(self, TimeKind::UserDefined)
    }

    /// Figure 12, column "Representation vs. Reality".
    pub fn models(self) -> Modeled {
        match self {
            TimeKind::Transaction => Modeled::Representation,
            TimeKind::Valid | TimeKind::UserDefined => Modeled::Reality,
        }
    }
}

impl fmt::Display for TimeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            TimeKind::Transaction => "Transaction",
            TimeKind::Valid => "Valid",
            TimeKind::UserDefined => "User-defined",
        })
    }
}

/// The four database classes (paper §5, Figure 10).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DatabaseClass {
    /// Snapshot only (§4.1).
    Static,
    /// Static + rollback via transaction time (§4.2).
    StaticRollback,
    /// Historical queries via valid time (§4.3).
    Historical,
    /// Both: rollback over historical states (§4.4).
    Temporal,
}

impl DatabaseClass {
    /// All four classes, in the paper's order.
    pub const ALL: [DatabaseClass; 4] = [
        DatabaseClass::Static,
        DatabaseClass::StaticRollback,
        DatabaseClass::Historical,
        DatabaseClass::Temporal,
    ];

    /// Does the class support the rollback operation (⇔ transaction
    /// time)?
    pub fn supports_rollback(self) -> bool {
        matches!(
            self,
            DatabaseClass::StaticRollback | DatabaseClass::Temporal
        )
    }

    /// Does the class support historical queries (⇔ valid time)?
    pub fn supports_historical_queries(self) -> bool {
        matches!(self, DatabaseClass::Historical | DatabaseClass::Temporal)
    }

    /// "DBMS's supporting rollback are append-only, whereas those not
    /// supporting rollback allow updates of arbitrary information."
    pub fn is_append_only(self) -> bool {
        self.supports_rollback()
    }

    /// Figure 11: which kinds of time the class incorporates.
    ///
    /// User-defined time accompanies valid time: "both valid time and
    /// user-defined time concern modeling of reality, and so it is
    /// appropriate that they should appear together" (§4.3, §4.5).
    pub fn time_kinds(self) -> &'static [TimeKind] {
        match self {
            DatabaseClass::Static => &[],
            DatabaseClass::StaticRollback => &[TimeKind::Transaction],
            DatabaseClass::Historical => &[TimeKind::Valid, TimeKind::UserDefined],
            DatabaseClass::Temporal => &[
                TimeKind::Transaction,
                TimeKind::Valid,
                TimeKind::UserDefined,
            ],
        }
    }

    /// True iff the class incorporates the given kind of time.
    pub fn supports(self, kind: TimeKind) -> bool {
        self.time_kinds().contains(&kind)
    }
}

impl fmt::Display for DatabaseClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            DatabaseClass::Static => "Static",
            DatabaseClass::StaticRollback => "Static Rollback",
            DatabaseClass::Historical => "Historical",
            DatabaseClass::Temporal => "Temporal",
        })
    }
}

/// Figure 10 as a function: the class determined by the two orthogonal
/// capabilities.
pub fn classify(rollback: bool, historical_queries: bool) -> DatabaseClass {
    match (historical_queries, rollback) {
        (false, false) => DatabaseClass::Static,
        (false, true) => DatabaseClass::StaticRollback,
        (true, false) => DatabaseClass::Historical,
        (true, true) => DatabaseClass::Temporal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_12_attribute_matrix() {
        // Transaction: yes / yes / representation.
        assert!(TimeKind::Transaction.append_only());
        assert!(TimeKind::Transaction.application_independent());
        assert_eq!(TimeKind::Transaction.models(), Modeled::Representation);
        // Valid: no / yes / reality.
        assert!(!TimeKind::Valid.append_only());
        assert!(TimeKind::Valid.application_independent());
        assert_eq!(TimeKind::Valid.models(), Modeled::Reality);
        // User-defined: no / no / reality.
        assert!(!TimeKind::UserDefined.append_only());
        assert!(!TimeKind::UserDefined.application_independent());
        assert_eq!(TimeKind::UserDefined.models(), Modeled::Reality);
    }

    #[test]
    fn figure_10_classification() {
        assert_eq!(classify(false, false), DatabaseClass::Static);
        assert_eq!(classify(true, false), DatabaseClass::StaticRollback);
        assert_eq!(classify(false, true), DatabaseClass::Historical);
        assert_eq!(classify(true, true), DatabaseClass::Temporal);
    }

    #[test]
    fn figure_11_incidence() {
        use DatabaseClass as D;
        use TimeKind as T;
        assert_eq!(D::Static.time_kinds(), &[] as &[TimeKind]);
        assert_eq!(D::StaticRollback.time_kinds(), &[T::Transaction]);
        assert_eq!(D::Historical.time_kinds(), &[T::Valid, T::UserDefined]);
        assert_eq!(
            D::Temporal.time_kinds(),
            &[T::Transaction, T::Valid, T::UserDefined]
        );
        // Capability ⇔ time-kind correspondences.
        for c in D::ALL {
            assert_eq!(c.supports(T::Transaction), c.supports_rollback());
            assert_eq!(c.supports(T::Valid), c.supports_historical_queries());
            assert_eq!(c.is_append_only(), c.supports_rollback());
        }
    }

    #[test]
    fn classify_round_trips_capabilities() {
        for c in DatabaseClass::ALL {
            assert_eq!(
                classify(c.supports_rollback(), c.supports_historical_queries()),
                c
            );
        }
    }
}
