//! The paper's survey of the prior literature, encoded as data.
//!
//! Figure 1 ("Types of Time") characterizes the time attributes proposed
//! before 1985; Figure 13 ("Time Support in Existing or Proposed
//! Systems") classifies sixteen systems under the new taxonomy.  Both
//! tables are regenerated verbatim by the `figures` binary in
//! `chronos-bench` and asserted by the integration tests.
//!
//! One OCR caveat is recorded where the source scan is ambiguous; see
//! [`figure_13`].

use std::fmt;

use super::{classify, DatabaseClass, Modeled, TimeKind};

/// The "Append-Only" column of Figure 1, including the paper's qualified
/// footnote values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppendOnly {
    /// Plain "Yes".
    Yes,
    /// Plain "No".
    No,
    /// Footnote (2): "Can make corrections only".
    CorrectionsOnly,
    /// Footnote (3): "Can make changes only in the future".
    FutureChangesOnly,
}

impl fmt::Display for AppendOnly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            AppendOnly::Yes => "Yes",
            AppendOnly::No => "No",
            AppendOnly::CorrectionsOnly => "(2)",
            AppendOnly::FutureChangesOnly => "(3)",
        })
    }
}

/// The "Representation vs. Reality" column of Figure 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelsCell {
    /// A plain classification.
    Plain(Modeled),
    /// Footnote (4): "Reality is indicated only in the future" —
    /// representation, with reality only prospectively.
    RepresentationWithFutureReality,
    /// The paper leaves the cell blank (Clifford & Warren's `State`).
    Unstated,
}

impl fmt::Display for ModelsCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelsCell::Plain(m) => fmt::Display::fmt(m, f),
            ModelsCell::RepresentationWithFutureReality => f.pad("Representation (4)"),
            ModelsCell::Unstated => f.pad(""),
        }
    }
}

/// One time attribute proposed in the pre-1985 literature: a row of
/// Figure 1.
#[derive(Clone, Debug)]
pub struct PriorTime {
    /// Bibliographic reference as printed in the figure.
    pub reference: &'static str,
    /// The name the cited work gives its time attribute.
    pub terminology: &'static str,
    /// May values only be appended?
    pub append_only: AppendOnly,
    /// Is the value under DBMS rather than application control?
    pub application_independent: bool,
    /// What the value models.
    pub models: ModelsCell,
    /// Footnote (1): the attribute is described but "not actually
    /// supported by the system".
    pub unsupported: bool,
}

/// Figure 1: the characterizations of time in the prior literature.
pub fn figure_1() -> Vec<PriorTime> {
    use AppendOnly::*;
    use ModelsCell::*;
    let row =
        |reference, terminology, append_only, application_independent, models, unsupported| {
            PriorTime {
                reference,
                terminology,
                append_only,
                application_independent,
                models,
                unsupported,
            }
        };
    vec![
        row(
            "[Ariav & Morgan 1982]",
            "Time",
            Yes,
            true,
            Plain(Modeled::Representation),
            false,
        ),
        row(
            "[Ben-Zvi 1982]",
            "Registration",
            Yes,
            true,
            Plain(Modeled::Representation),
            false,
        ),
        row(
            "[Ben-Zvi 1982]",
            "Effective",
            No,
            true,
            Plain(Modeled::Reality),
            false,
        ),
        row(
            "[Clifford & Warren 1983]",
            "State",
            No,
            true,
            Unstated,
            false,
        ),
        row(
            "[Copeland & Maier 1984]",
            "Transaction",
            Yes,
            true,
            Plain(Modeled::Representation),
            false,
        ),
        row(
            "[Copeland & Maier 1984]",
            "Event",
            No,
            false,
            Plain(Modeled::Reality),
            true,
        ),
        row(
            "[Dadam et al. 1984] & [Lum et al. 1984]",
            "Physical",
            CorrectionsOnly,
            true,
            Plain(Modeled::Representation),
            false,
        ),
        row(
            "[Dadam et al. 1984] & [Lum et al. 1984]",
            "Logical",
            No,
            false,
            Plain(Modeled::Reality),
            true,
        ),
        row(
            "[Jones et al. 1979] & [Jones & Mason 1980]",
            "Start/End",
            CorrectionsOnly,
            true,
            Plain(Modeled::Reality),
            false,
        ),
        row(
            "[Jones et al. 1979] & [Jones & Mason 1980]",
            "User Defined",
            No,
            false,
            Plain(Modeled::Reality),
            false,
        ),
        row(
            "[Mueller & Steinbauer 1983]",
            "Data-Valid-Time-From/To",
            FutureChangesOnly,
            true,
            ModelsCell::RepresentationWithFutureReality,
            false,
        ),
        row(
            "[Reed 1978]",
            "Start/End",
            Yes,
            true,
            Plain(Modeled::Representation),
            false,
        ),
        row(
            "[Snodgrass 1984]",
            "Valid Time",
            No,
            true,
            Plain(Modeled::Reality),
            false,
        ),
    ]
}

/// A system or language surveyed in Figure 13, with the kinds of time it
/// supports under the new taxonomy.
#[derive(Clone, Debug)]
pub struct SurveyedSystem {
    /// Bibliographic reference as printed in the figure.
    pub reference: &'static str,
    /// System or language name.
    pub system: &'static str,
    /// Supports transaction time.
    pub transaction: bool,
    /// Supports valid time.
    pub valid: bool,
    /// Supports user-defined time.
    pub user_defined: bool,
}

impl SurveyedSystem {
    /// Whether the system supports the given kind of time.
    pub fn supports(&self, kind: TimeKind) -> bool {
        match kind {
            TimeKind::Transaction => self.transaction,
            TimeKind::Valid => self.valid,
            TimeKind::UserDefined => self.user_defined,
        }
    }

    /// The database class implied by the supported times (Figure 10):
    /// transaction time ⇔ rollback, valid time ⇔ historical queries.
    pub fn database_class(&self) -> DatabaseClass {
        classify(self.transaction, self.valid)
    }
}

/// Figure 13: time support in existing or proposed systems (1985).
///
/// The scan of the figure is partly illegible; the check-marks below
/// follow the paper's prose (§§2, 4.2, 4.3, 4.5 name the systems
/// supporting each kind) and the published history of each system.  The
/// one genuinely ambiguous cell is TODS ([Wiederhold et al. 1975]), read
/// here as valid time: the cited work records clinical histories keyed
/// by the time of the patient visit, i.e. reality.
pub fn figure_13() -> Vec<SurveyedSystem> {
    let row = |reference, system, transaction, valid, user_defined| SurveyedSystem {
        reference,
        system,
        transaction,
        valid,
        user_defined,
    };
    vec![
        row("[Ariav & Morgan 1982]", "MDM/DB", true, false, false),
        row("[Ben-Zvi 1982]", "TRM", true, true, false),
        row("[Bontempo 1983]", "QBE", false, false, true),
        row("[Breutmann et al. 1979]", "CSL", false, true, false),
        row("[Clifford & Warren 1983]", "IL_s", false, true, false),
        row("[Copeland & Maier 1984]", "GemStone", true, false, false),
        row("[Findler & Chen 1971]", "AMPPL-II", false, true, false),
        row("[Jones & Mason 1980]", "LEGOL 2.0", false, true, true),
        row("[Klopprogge 1981]", "TERM", false, true, false),
        row("[Lum et al. 1984]", "AIM", true, false, false),
        row("[Relational 1984]", "MicroINGRES", false, false, true),
        row(
            "[Mueller & Steinbauer 1983]",
            "(CAM databases)",
            true,
            false,
            false,
        ),
        row(
            "[Overmyer & Stonebraker 1982]",
            "INGRES",
            false,
            false,
            true,
        ),
        row("[Reed 1978]", "SWALLOW", true, false, false),
        row("[Snodgrass 1985]", "TQuel", true, true, true),
        row("[Tandem 1983]", "ENFORM", false, false, true),
        row("[Wiederhold et al. 1975]", "TODS", false, true, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_has_all_nine_references() {
        let rows = figure_1();
        assert_eq!(rows.len(), 13);
        let refs: std::collections::HashSet<_> = rows.iter().map(|r| r.reference).collect();
        assert_eq!(refs.len(), 9, "nine distinct reference groups");
    }

    #[test]
    fn figure_1_matches_new_taxonomy_where_clean() {
        // The rows the paper maps onto transaction time are append-only,
        // application-independent representations…
        let rows = figure_1();
        let registration = rows
            .iter()
            .find(|r| r.terminology == "Registration")
            .unwrap();
        assert_eq!(registration.append_only, AppendOnly::Yes);
        assert!(registration.application_independent);
        // …and Snodgrass's valid time matches the Valid row of Figure 12.
        let valid = rows.iter().find(|r| r.terminology == "Valid Time").unwrap();
        assert_eq!(valid.append_only, AppendOnly::No);
        assert!(valid.application_independent);
        assert_eq!(valid.models, ModelsCell::Plain(Modeled::Reality));
    }

    #[test]
    fn figure_13_has_seventeen_rows() {
        assert_eq!(figure_13().len(), 17);
    }

    #[test]
    fn figure_13_classes() {
        let rows = figure_13();
        let class_of = |name: &str| {
            rows.iter()
                .find(|r| r.system == name)
                .unwrap()
                .database_class()
        };
        // TRM supports both axes: a temporal database (§4.4).
        assert_eq!(class_of("TRM"), DatabaseClass::Temporal);
        assert_eq!(class_of("TQuel"), DatabaseClass::Temporal);
        // GemStone, SWALLOW, MDM/DB, AIM: static rollback (§4.2).
        for s in ["GemStone", "SWALLOW", "MDM/DB", "AIM"] {
            assert_eq!(class_of(s), DatabaseClass::StaticRollback, "{s}");
        }
        // CSL, TERM, IL_s, AMPPL-II, LEGOL 2.0: historical (§4.3).
        for s in ["CSL", "TERM", "IL_s", "AMPPL-II", "LEGOL 2.0"] {
            assert_eq!(class_of(s), DatabaseClass::Historical, "{s}");
        }
        // User-defined time alone leaves a system static (§4.5).
        for s in ["QBE", "ENFORM", "INGRES", "MicroINGRES"] {
            assert_eq!(class_of(s), DatabaseClass::Static, "{s}");
        }
    }

    #[test]
    fn supports_agrees_with_fields() {
        for s in figure_13() {
            assert_eq!(s.supports(TimeKind::Transaction), s.transaction);
            assert_eq!(s.supports(TimeKind::Valid), s.valid);
            assert_eq!(s.supports(TimeKind::UserDefined), s.user_defined);
        }
    }
}
