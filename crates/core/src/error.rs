//! Error types for the core crate.

use std::fmt;

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors arising from the time domain, relational model, or the relation
/// classes' capability rules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// A date literal failed to parse or validate.
    InvalidDate(String),
    /// A schema was malformed (duplicate attribute, empty, bad key).
    InvalidSchema(String),
    /// A tuple did not match its relation's schema.
    SchemaMismatch {
        /// What the schema expected.
        expected: String,
        /// What the tuple provided.
        found: String,
    },
    /// A commit timestamp did not advance the transaction clock.
    ///
    /// Transaction time is append-only (paper, Figure 12): each commit must
    /// carry a transaction time strictly after every earlier commit.
    NonMonotonicCommit {
        /// Transaction time of the latest committed transaction.
        last: String,
        /// The offending commit time.
        attempted: String,
    },
    /// An operation was applied to a relation class that cannot support it
    /// (e.g. correcting a past state of a rollback relation).
    CapabilityViolation(String),
    /// A modification referenced a row that does not exist in the current
    /// state.
    NoSuchRow(String),
    /// A validity of the wrong temporal signature was supplied (interval
    /// validity for an event relation or vice versa).
    SignatureMismatch {
        /// The relation's signature.
        expected: &'static str,
        /// The supplied validity's signature.
        found: &'static str,
    },
    /// Any other domain rule violation.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidDate(m) => write!(f, "invalid date: {m}"),
            CoreError::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            CoreError::SchemaMismatch { expected, found } => {
                write!(
                    f,
                    "tuple does not match schema: expected {expected}, found {found}"
                )
            }
            CoreError::NonMonotonicCommit { last, attempted } => write!(
                f,
                "transaction time must advance: last commit at {last}, attempted {attempted}"
            ),
            CoreError::CapabilityViolation(m) => write!(f, "capability violation: {m}"),
            CoreError::NoSuchRow(m) => write!(f, "no such row: {m}"),
            CoreError::SignatureMismatch { expected, found } => write!(
                f,
                "temporal signature mismatch: relation is {expected}, validity is {found}"
            ),
            CoreError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::NonMonotonicCommit {
            last: "12/15/82".into(),
            attempted: "12/10/82".into(),
        };
        let s = e.to_string();
        assert!(s.contains("12/15/82") && s.contains("12/10/82"));
        assert!(CoreError::InvalidDate("x".into())
            .to_string()
            .contains("invalid date"));
    }
}
