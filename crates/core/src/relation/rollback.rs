//! Static rollback relations (paper §4.2).
//!
//! A rollback relation stores "all past states, indexed by time, of the
//! static database as it evolves", supporting transaction time.  Changes
//! may be made only to the most recent state; committed states are
//! immutable (append-only).  Rolling back to time `t` yields the static
//! relation as it was stored at `t` — including any errors it contained:
//! "Errors can sometimes be overridden … but they cannot be forgotten."
//!
//! Three implementations share the [`RollbackStore`] interface:
//!
//! * [`SnapshotRollback`] — the conceptual cube of Figure 3: one complete
//!   static relation per transaction.  The paper judges this
//!   "impractical, due to excessive duplication"; benchmark E14 measures
//!   exactly that.
//! * [`TimestampedRollback`] — the practical encoding of Figure 4: each
//!   tuple carries a transaction-time period `[start, end)`, with `∞` for
//!   still-current tuples.
//! * [`CheckpointedRollback`] — the accelerated encoding: the commit log
//!   plus a materialized state every `K` commits, making `rollback(t)`
//!   sublinear in history length (experiment E14b sweeps `K`).
//!
//! All must agree on every `rollback(t)`; that equivalence is checked by
//! the tests here and by property tests in the integration suite.

use crate::chronon::Chronon;
use crate::error::{CoreError, CoreResult};
use crate::period::Period;
use crate::relation::static_rel::StaticRelation;
use crate::relation::StaticOp;
use crate::schema::Schema;
use crate::timepoint::TimePoint;
use crate::tuple::Tuple;

/// Common interface of the two rollback-relation implementations.
pub trait RollbackStore {
    /// The relation's schema.
    fn schema(&self) -> &Schema;

    /// Commits a transaction of static operations at transaction time
    /// `tx_time`.  Fails (leaving the store unchanged) when the
    /// operations are invalid against the current state or when `tx_time`
    /// does not advance the transaction clock.
    fn commit(&mut self, tx_time: Chronon, ops: &[StaticOp]) -> CoreResult<()>;

    /// The paper's *rollback* operation: the static state as stored at
    /// transaction time `t`.  Before the first commit the result is the
    /// null relation.
    fn rollback(&self, t: Chronon) -> StaticRelation;

    /// The most recent state (the only one that may be modified).
    fn current(&self) -> StaticRelation;

    /// The transaction time of the latest commit, if any.
    fn last_commit(&self) -> Option<Chronon>;

    /// Number of committed transactions.
    fn transactions(&self) -> usize;

    /// Total tuples physically stored — the space metric of experiment
    /// E14 (snapshot cubes duplicate unchanged tuples; timestamped stores
    /// do not).
    fn stored_tuples(&self) -> usize;

    /// Starts a transaction builder.
    fn begin(&mut self) -> RollbackTx<'_, Self>
    where
        Self: Sized,
    {
        RollbackTx {
            store: self,
            ops: Vec::new(),
        }
    }
}

/// A transaction being assembled against a rollback store.
///
/// Operations accumulate and apply atomically on [`commit`].
///
/// [`commit`]: RollbackTx::commit
#[must_use = "a transaction does nothing until committed"]
pub struct RollbackTx<'a, S: RollbackStore> {
    store: &'a mut S,
    ops: Vec<StaticOp>,
}

impl<S: RollbackStore> RollbackTx<'_, S> {
    /// Stages an insertion.
    pub fn insert(mut self, t: Tuple) -> Self {
        self.ops.push(StaticOp::Insert(t));
        self
    }

    /// Stages a deletion.
    pub fn delete(mut self, t: Tuple) -> Self {
        self.ops.push(StaticOp::Delete(t));
        self
    }

    /// Stages a replacement.
    pub fn replace(mut self, old: Tuple, new: Tuple) -> Self {
        self.ops.push(StaticOp::Replace { old, new });
        self
    }

    /// Commits at `tx_time`.
    pub fn commit(self, tx_time: Chronon) -> CoreResult<()> {
        self.store.commit(tx_time, &self.ops)
    }
}

fn check_monotonic(last: Option<Chronon>, attempted: Chronon) -> CoreResult<()> {
    match last {
        Some(l) if attempted <= l => Err(CoreError::NonMonotonicCommit {
            last: l.to_string(),
            attempted: attempted.to_string(),
        }),
        _ => Ok(()),
    }
}

/// The conceptual cube: a sequence of complete static relations indexed
/// by transaction time (Figure 3).
#[derive(Clone, Debug)]
pub struct SnapshotRollback {
    schema: Schema,
    /// `(commit time, complete state after that commit)`, ascending.
    states: Vec<(Chronon, StaticRelation)>,
}

impl SnapshotRollback {
    /// Creates an empty rollback relation.
    pub fn new(schema: Schema) -> SnapshotRollback {
        SnapshotRollback {
            schema,
            states: Vec::new(),
        }
    }

    /// The committed states, oldest first (used by figure rendering).
    pub fn states(&self) -> &[(Chronon, StaticRelation)] {
        &self.states
    }

    /// Borrows the state committed at index `i` (oldest first).
    ///
    /// Unlike [`rollback`](RollbackStore::rollback) and
    /// [`current`](RollbackStore::current), the borrowed accessors copy
    /// nothing, so benchmark and figure code measuring the *store* does
    /// not also measure a clone of the result.
    pub fn state_at(&self, i: usize) -> Option<&StaticRelation> {
        self.states.get(i).map(|(_, s)| s)
    }

    /// Borrows the most recent state, if any commit has happened.
    pub fn current_ref(&self) -> Option<&StaticRelation> {
        self.states.last().map(|(_, s)| s)
    }

    /// Borrows the state as stored at transaction time `t` (`None`
    /// before the first commit) — the allocation-free rollback.
    pub fn rollback_ref(&self, t: Chronon) -> Option<&StaticRelation> {
        // States are committed in ascending transaction time.
        let idx = self.states.partition_point(|(commit, _)| *commit <= t);
        idx.checked_sub(1).map(|i| &self.states[i].1)
    }
}

impl RollbackStore for SnapshotRollback {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn commit(&mut self, tx_time: Chronon, ops: &[StaticOp]) -> CoreResult<()> {
        check_monotonic(self.last_commit(), tx_time)?;
        let mut next = self.current();
        next.apply(ops)?;
        // "Each transaction results in a new static relation being
        // appended to the front of the cube."
        self.states.push((tx_time, next));
        Ok(())
    }

    fn rollback(&self, t: Chronon) -> StaticRelation {
        self.rollback_ref(t)
            .cloned()
            .unwrap_or_else(|| StaticRelation::new(self.schema.clone()))
    }

    fn current(&self) -> StaticRelation {
        self.current_ref()
            .cloned()
            .unwrap_or_else(|| StaticRelation::new(self.schema.clone()))
    }

    fn last_commit(&self) -> Option<Chronon> {
        self.states.last().map(|(c, _)| *c)
    }

    fn transactions(&self) -> usize {
        self.states.len()
    }

    fn stored_tuples(&self) -> usize {
        self.states.iter().map(|(_, s)| s.len()).sum()
    }
}

/// A tuple-timestamped rollback row: the tuple plus its transaction-time
/// period (Figure 4's `(start)` and `(end)` columns).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RollbackRow {
    /// The explicit attribute values.
    pub tuple: Tuple,
    /// When the tuple was in the database: `[start, end)`, end `∞` while
    /// current.
    pub tx: Period,
}

impl RollbackRow {
    /// True iff the row is in the current state.
    pub fn is_current(&self) -> bool {
        self.tx.end() == TimePoint::PlusInfinity
    }
}

/// The practical encoding: transaction-time start/end appended to each
/// tuple (Figure 4).
#[derive(Clone, Debug)]
pub struct TimestampedRollback {
    schema: Schema,
    rows: Vec<RollbackRow>,
    last_commit: Option<Chronon>,
    transactions: usize,
}

impl TimestampedRollback {
    /// Creates an empty rollback relation.
    pub fn new(schema: Schema) -> TimestampedRollback {
        TimestampedRollback {
            schema,
            rows: Vec::new(),
            last_commit: None,
            transactions: 0,
        }
    }

    /// All physical rows, in creation order (used by figure rendering).
    pub fn rows(&self) -> &[RollbackRow] {
        &self.rows
    }

    /// Reconstructs a store from checkpointed parts, validating the
    /// invariants a live store maintains (schema-conformant tuples, no
    /// duplicate current tuples, no transaction period beyond
    /// `last_commit`).
    pub fn from_parts(
        schema: Schema,
        rows: Vec<RollbackRow>,
        last_commit: Option<Chronon>,
        transactions: usize,
    ) -> CoreResult<TimestampedRollback> {
        let mut current = std::collections::HashSet::new();
        for row in &rows {
            schema.check(&row.tuple)?;
            if row.is_current() && !current.insert(&row.tuple) {
                return Err(CoreError::Invalid(format!(
                    "checkpoint holds duplicate current tuple {}",
                    row.tuple
                )));
            }
            let horizon = last_commit.map_or(TimePoint::MINUS_INFINITY, TimePoint::at);
            if row.tx.start() > horizon {
                return Err(CoreError::Invalid(format!(
                    "checkpoint row committed at {} after last commit {horizon}",
                    row.tx.start()
                )));
            }
        }
        Ok(TimestampedRollback {
            schema,
            rows,
            last_commit,
            transactions,
        })
    }

    fn current_row_index(&self, t: &Tuple) -> Option<usize> {
        self.rows
            .iter()
            .position(|r| r.is_current() && &r.tuple == t)
    }

    fn apply_one(&mut self, tx_time: Chronon, op: &StaticOp) -> CoreResult<()> {
        match op {
            StaticOp::Insert(t) => {
                self.schema.check(t)?;
                if self.current_row_index(t).is_some() {
                    return Err(CoreError::Invalid(format!("duplicate tuple {t}")));
                }
                self.rows.push(RollbackRow {
                    tuple: t.clone(),
                    tx: Period::from_start(tx_time),
                });
                Ok(())
            }
            StaticOp::Delete(t) => {
                let idx = self
                    .current_row_index(t)
                    .ok_or_else(|| CoreError::NoSuchRow(t.to_string()))?;
                let row = &mut self.rows[idx];
                row.tx = Period::clamped(row.tx.start(), TimePoint::at(tx_time));
                Ok(())
            }
            StaticOp::Replace { old, new } => {
                self.apply_one(tx_time, &StaticOp::Delete(old.clone()))?;
                self.apply_one(tx_time, &StaticOp::Insert(new.clone()))
            }
        }
    }
}

impl RollbackStore for TimestampedRollback {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn commit(&mut self, tx_time: Chronon, ops: &[StaticOp]) -> CoreResult<()> {
        check_monotonic(self.last_commit, tx_time)?;
        // Validate against a scratch copy so a failing transaction leaves
        // the store untouched.
        let mut scratch = self.rows.clone();
        std::mem::swap(&mut scratch, &mut self.rows);
        for op in ops {
            if let Err(e) = self.apply_one(tx_time, op) {
                self.rows = scratch; // restore
                return Err(e);
            }
        }
        self.last_commit = Some(tx_time);
        self.transactions += 1;
        Ok(())
    }

    fn rollback(&self, t: Chronon) -> StaticRelation {
        let mut out = StaticRelation::new(self.schema.clone());
        for row in &self.rows {
            if row.tx.contains(t) {
                out.insert(row.tuple.clone())
                    .expect("rollback state of a valid store is duplicate-free");
            }
        }
        out
    }

    fn current(&self) -> StaticRelation {
        let mut out = StaticRelation::new(self.schema.clone());
        for row in self.rows.iter().filter(|r| r.is_current()) {
            out.insert(row.tuple.clone())
                .expect("current state of a valid store is duplicate-free");
        }
        out
    }

    fn last_commit(&self) -> Option<Chronon> {
        self.last_commit
    }

    fn transactions(&self) -> usize {
        self.transactions
    }

    fn stored_tuples(&self) -> usize {
        self.rows.len()
    }
}

/// The accelerated encoding: a commit log plus a materialized state
/// every `K` commits.
///
/// The two paper encodings sit at the ends of a spectrum: the snapshot
/// cube ([`SnapshotRollback`]) answers `rollback(t)` in one lookup but
/// duplicates every unchanged tuple per transaction, while the
/// tuple-timestamped store ([`TimestampedRollback`]) stores each version
/// once but reconstructs a past state by scanning *every* row ever
/// stored — linear in history length.  `CheckpointedRollback` keeps the
/// per-commit operation log and materializes the full state only every
/// `interval` commits, so `rollback(t)` binary-searches the checkpoint
/// list and replays at most `interval − 1` delta transactions:
/// `O(log n + |state| + K·ops)` instead of `O(history)`.
///
/// `interval = 1` degenerates to the cube (every commit checkpointed);
/// large intervals approach pure log replay.  Experiment E14b sweeps the
/// latency/space trade-off.
///
/// Observational equivalence with the other two stores is enforced by
/// the tests below and the integration property suite.
#[derive(Clone, Debug)]
pub struct CheckpointedRollback {
    schema: Schema,
    /// Checkpoint every this many commits (≥ 1).
    interval: usize,
    /// The live state (the only one that may be modified).
    current: StaticRelation,
    /// Every commit, in order: `(tx_time, ops)` — the replay log.
    log: Vec<(Chronon, Vec<StaticOp>)>,
    /// `(commits covered, state after that many commits)`, ascending.
    /// A checkpoint at `(c, s)` means `s` is the state after `log[..c]`.
    checkpoints: Vec<(usize, StaticRelation)>,
}

impl CheckpointedRollback {
    /// Default checkpoint interval: a good latency/space balance in the
    /// E14b sweep (see EXPERIMENTS.md).
    pub const DEFAULT_INTERVAL: usize = 64;

    /// Creates an empty store with the default checkpoint interval.
    pub fn new(schema: Schema) -> CheckpointedRollback {
        CheckpointedRollback::with_interval(schema, Self::DEFAULT_INTERVAL)
    }

    /// Creates an empty store checkpointing every `interval` commits
    /// (`interval` is clamped to at least 1).
    pub fn with_interval(schema: Schema, interval: usize) -> CheckpointedRollback {
        CheckpointedRollback {
            current: StaticRelation::new(schema.clone()),
            schema,
            interval: interval.max(1),
            log: Vec::new(),
            checkpoints: Vec::new(),
        }
    }

    /// The configured checkpoint interval.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Number of materialized checkpoints.
    pub fn checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// Tuples held by checkpoints alone (the space overhead relative to
    /// a pure log — the E14b space metric).
    pub fn checkpoint_tuples(&self) -> usize {
        self.checkpoints.iter().map(|(_, s)| s.len()).sum()
    }

    /// Borrows the most recent state without cloning it.
    pub fn current_ref(&self) -> &StaticRelation {
        &self.current
    }

    /// The state after the first `commits` log entries, reconstructed
    /// from the nearest checkpoint at or before it.
    fn state_after(&self, commits: usize) -> StaticRelation {
        self.state_after_traced(commits).0
    }

    fn state_after_traced(&self, commits: usize) -> (StaticRelation, RollbackAccess) {
        let idx = self.checkpoints.partition_point(|(c, _)| *c <= commits);
        let (seed, mut replay_from, mut state) = match idx.checked_sub(1) {
            Some(i) => {
                let (c, s) = &self.checkpoints[i];
                (Some(*c), *c, s.clone())
            }
            None => (None, 0, StaticRelation::new(self.schema.clone())),
        };
        while replay_from < commits {
            let (_, ops) = &self.log[replay_from];
            state
                .apply(ops)
                .expect("committed operations replay cleanly");
            replay_from += 1;
        }
        let access = RollbackAccess {
            visible: commits,
            checkpoint_seed: seed,
            replayed: commits - seed.unwrap_or(0),
            interval: self.interval,
        };
        (state, access)
    }

    /// [`rollback`](RollbackStore::rollback) plus a description of the
    /// access path taken — whether a checkpoint seeded the
    /// reconstruction and how many delta transactions were replayed on
    /// top.  The observability layer names the path ("checkpoint hit"
    /// vs "full replay") from this.
    pub fn rollback_traced(&self, t: Chronon) -> (StaticRelation, RollbackAccess) {
        let visible = self.log.partition_point(|(commit, _)| *commit <= t);
        self.state_after_traced(visible)
    }
}

/// How a [`CheckpointedRollback::rollback_traced`] reconstruction was
/// answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollbackAccess {
    /// Commits visible at the rollback time.
    pub visible: usize,
    /// Commit count of the checkpoint that seeded the state, if any.
    pub checkpoint_seed: Option<usize>,
    /// Delta transactions replayed on top of the seed.
    pub replayed: usize,
    /// The store's checkpoint interval `K`.
    pub interval: usize,
}

impl RollbackAccess {
    /// True iff a materialized checkpoint seeded the reconstruction.
    pub fn checkpoint_hit(&self) -> bool {
        self.checkpoint_seed.is_some()
    }
}

impl RollbackStore for CheckpointedRollback {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn commit(&mut self, tx_time: Chronon, ops: &[StaticOp]) -> CoreResult<()> {
        check_monotonic(self.last_commit(), tx_time)?;
        // Validate on a scratch copy so a failing transaction leaves the
        // store untouched (same guarantee as the other stores).
        let mut next = self.current.clone();
        next.apply(ops)?;
        self.current = next;
        self.log.push((tx_time, ops.to_vec()));
        if self.log.len().is_multiple_of(self.interval) {
            self.checkpoints
                .push((self.log.len(), self.current.clone()));
        }
        Ok(())
    }

    fn rollback(&self, t: Chronon) -> StaticRelation {
        // Commits are strictly ascending in transaction time, so the
        // number of commits visible at `t` is a binary search away.
        let visible = self.log.partition_point(|(commit, _)| *commit <= t);
        self.state_after(visible)
    }

    fn current(&self) -> StaticRelation {
        self.current.clone()
    }

    fn last_commit(&self) -> Option<Chronon> {
        self.log.last().map(|(t, _)| *t)
    }

    fn transactions(&self) -> usize {
        self.log.len()
    }

    fn stored_tuples(&self) -> usize {
        // One "physical row" per logged operation (the log is the
        // authoritative store) plus every tuple a checkpoint duplicates.
        self.log.iter().map(|(_, ops)| ops.len()).sum::<usize>() + self.checkpoint_tuples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::date;
    use crate::schema::faculty_schema;
    use crate::tuple::tuple;

    /// Drives both stores through the paper's Figure 4 history.
    fn figure_4_history<S: RollbackStore>(s: &mut S) {
        s.begin()
            .insert(tuple(["Merrie", "associate"]))
            .commit(date("08/25/77").unwrap())
            .unwrap();
        s.begin()
            .insert(tuple(["Tom", "associate"]))
            .commit(date("12/07/82").unwrap())
            .unwrap();
        s.begin()
            .replace(tuple(["Merrie", "associate"]), tuple(["Merrie", "full"]))
            .commit(date("12/15/82").unwrap())
            .unwrap();
        s.begin()
            .insert(tuple(["Mike", "assistant"]))
            .commit(date("01/10/83").unwrap())
            .unwrap();
        s.begin()
            .delete(tuple(["Mike", "assistant"]))
            .commit(date("02/25/84").unwrap())
            .unwrap();
    }

    #[test]
    fn figure_4_rows() {
        let mut s = TimestampedRollback::new(faculty_schema());
        figure_4_history(&mut s);
        let rows = s.rows();
        // Exactly the four rows of Figure 4 (plus closure semantics).
        assert_eq!(rows.len(), 4);
        let find = |name: &str, rank: &str| {
            rows.iter()
                .find(|r| r.tuple == tuple([name, rank]))
                .unwrap_or_else(|| panic!("{name}/{rank} missing"))
        };
        let m1 = find("Merrie", "associate");
        assert_eq!(m1.tx.start(), TimePoint::at(date("08/25/77").unwrap()));
        assert_eq!(m1.tx.end(), TimePoint::at(date("12/15/82").unwrap()));
        let m2 = find("Merrie", "full");
        assert_eq!(m2.tx.start(), TimePoint::at(date("12/15/82").unwrap()));
        assert_eq!(m2.tx.end(), TimePoint::INFINITY);
        let tom = find("Tom", "associate");
        assert_eq!(tom.tx.start(), TimePoint::at(date("12/07/82").unwrap()));
        assert!(tom.is_current());
        let mike = find("Mike", "assistant");
        assert_eq!(mike.tx.start(), TimePoint::at(date("01/10/83").unwrap()));
        assert_eq!(mike.tx.end(), TimePoint::at(date("02/25/84").unwrap()));
    }

    #[test]
    fn as_of_12_10_82_sees_associate() {
        // TQuel: retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"
        let mut s = TimestampedRollback::new(faculty_schema());
        figure_4_history(&mut s);
        let state = s.rollback(date("12/10/82").unwrap());
        let ranks: Vec<_> = state
            .iter()
            .filter(|t| t.get(0).as_str() == Some("Merrie"))
            .map(|t| t.get(1).as_str().unwrap().to_string())
            .collect();
        assert_eq!(ranks, ["associate"]);
    }

    #[test]
    fn snapshot_and_timestamped_agree_everywhere() {
        let mut a = SnapshotRollback::new(faculty_schema());
        let mut b = TimestampedRollback::new(faculty_schema());
        figure_4_history(&mut a);
        figure_4_history(&mut b);
        let lo = date("01/01/77").unwrap().ticks();
        let hi = date("12/31/84").unwrap().ticks();
        for t in (lo..=hi).step_by(7) {
            let t = Chronon::new(t);
            assert_eq!(a.rollback(t), b.rollback(t), "divergence at {t}");
        }
        assert_eq!(a.current(), b.current());
        assert_eq!(a.transactions(), b.transactions());
    }

    #[test]
    fn checkpointed_agrees_with_timestamped_at_every_interval() {
        for interval in [1usize, 2, 3, 100] {
            let mut a = CheckpointedRollback::with_interval(faculty_schema(), interval);
            let mut b = TimestampedRollback::new(faculty_schema());
            figure_4_history(&mut a);
            figure_4_history(&mut b);
            let lo = date("01/01/77").unwrap().ticks();
            let hi = date("12/31/84").unwrap().ticks();
            for t in (lo..=hi).step_by(3) {
                let t = Chronon::new(t);
                assert_eq!(
                    a.rollback(t),
                    b.rollback(t),
                    "divergence at {t} (interval {interval})"
                );
            }
            assert_eq!(a.current(), b.current());
            assert_eq!(a.current_ref(), &b.current());
            assert_eq!(a.transactions(), b.transactions());
            assert_eq!(a.last_commit(), b.last_commit());
            // interval 1 checkpoints every commit (the cube's layout).
            let expected = 5 / interval;
            assert_eq!(a.checkpoints(), expected, "interval {interval}");
        }
    }

    #[test]
    fn rollback_traced_names_the_access_path() {
        let mut s = CheckpointedRollback::with_interval(faculty_schema(), 2);
        figure_4_history(&mut s); // 5 commits → checkpoints after 2 and 4
                                  // Before the first checkpoint: full replay from empty.
        let (state, access) = s.rollback_traced(date("12/01/82").unwrap());
        assert_eq!(state, s.rollback(date("12/01/82").unwrap()));
        assert!(!access.checkpoint_hit());
        assert_eq!(access.visible, 1);
        assert_eq!(access.replayed, 1);
        assert_eq!(access.interval, 2);
        // After the second checkpoint: seeded, one delta replayed.
        let (state, access) = s.rollback_traced(date("06/01/84").unwrap());
        assert_eq!(state, s.rollback(date("06/01/84").unwrap()));
        assert!(access.checkpoint_hit());
        assert_eq!(access.checkpoint_seed, Some(4));
        assert_eq!(access.visible, 5);
        assert_eq!(access.replayed, 1);
        // Three commits visible → seeded at 2, one delta on top.
        let (_, access) = s.rollback_traced(date("12/15/82").unwrap());
        assert_eq!(access.checkpoint_seed, Some(2));
        assert_eq!(access.visible, 3);
        assert_eq!(access.replayed, 1);
    }

    #[test]
    fn checkpointed_failed_transaction_leaves_store_unchanged() {
        let mut s = CheckpointedRollback::with_interval(faculty_schema(), 2);
        figure_4_history(&mut s);
        let before = s.current();
        let r = s
            .begin()
            .insert(tuple(["New", "prof"]))
            .delete(tuple(["Ghost", "prof"]))
            .commit(date("06/01/84").unwrap());
        assert!(r.is_err());
        assert_eq!(s.current(), before);
        assert_eq!(s.transactions(), 5);
        assert_eq!(s.last_commit(), Some(date("02/25/84").unwrap()));
    }

    #[test]
    fn snapshot_borrowed_accessors_match_owned() {
        let mut s = SnapshotRollback::new(faculty_schema());
        assert!(s.current_ref().is_none());
        assert!(s.rollback_ref(Chronon::new(0)).is_none());
        figure_4_history(&mut s);
        assert_eq!(s.current_ref(), Some(&s.current()));
        assert_eq!(s.state_at(0), Some(&s.states()[0].1));
        assert!(s.state_at(99).is_none());
        let lo = date("01/01/77").unwrap().ticks();
        let hi = date("12/31/84").unwrap().ticks();
        for t in (lo..=hi).step_by(7) {
            let t = Chronon::new(t);
            match s.rollback_ref(t) {
                Some(state) => assert_eq!(state, &s.rollback(t)),
                None => assert!(s.rollback(t).is_empty()),
            }
        }
    }

    #[test]
    fn snapshot_duplication_vs_timestamped() {
        let mut a = SnapshotRollback::new(faculty_schema());
        let mut b = TimestampedRollback::new(faculty_schema());
        figure_4_history(&mut a);
        figure_4_history(&mut b);
        // The cube duplicates unchanged tuples in every state…
        assert_eq!(a.stored_tuples(), 1 + 2 + 2 + 3 + 2);
        // …while tuple timestamping stores each version once.
        assert_eq!(b.stored_tuples(), 4);
    }

    #[test]
    fn commits_are_append_only() {
        let mut s = TimestampedRollback::new(faculty_schema());
        figure_4_history(&mut s);
        let early = s
            .begin()
            .insert(tuple(["Late", "entry"]))
            .commit(date("01/01/80").unwrap());
        assert!(matches!(early, Err(CoreError::NonMonotonicCommit { .. })));
        // Same transaction time as the last commit is also rejected.
        let same = s
            .begin()
            .insert(tuple(["Late", "entry"]))
            .commit(date("02/25/84").unwrap());
        assert!(same.is_err());
    }

    #[test]
    fn failed_transaction_leaves_store_unchanged() {
        let mut s = TimestampedRollback::new(faculty_schema());
        figure_4_history(&mut s);
        let before_rows = s.rows().to_vec();
        let r = s
            .begin()
            .insert(tuple(["New", "prof"]))
            .delete(tuple(["Ghost", "prof"]))
            .commit(date("06/01/84").unwrap());
        assert!(r.is_err());
        assert_eq!(s.rows(), &before_rows[..]);
        assert_eq!(s.last_commit(), Some(date("02/25/84").unwrap()));
        assert_eq!(s.transactions(), 5);
    }

    #[test]
    fn rollback_before_first_commit_is_null_relation() {
        let mut s = TimestampedRollback::new(faculty_schema());
        figure_4_history(&mut s);
        assert!(s.rollback(date("01/01/70").unwrap()).is_empty());
        let mut c = SnapshotRollback::new(faculty_schema());
        figure_4_history(&mut c);
        assert!(c.rollback(date("01/01/70").unwrap()).is_empty());
    }

    #[test]
    fn past_states_are_immutable_under_later_transactions() {
        let mut s = TimestampedRollback::new(faculty_schema());
        figure_4_history(&mut s);
        let t = date("12/10/82").unwrap();
        let before = s.rollback(t);
        s.begin()
            .insert(tuple(["New", "prof"]))
            .delete(tuple(["Tom", "associate"]))
            .commit(date("06/01/84").unwrap())
            .unwrap();
        assert_eq!(s.rollback(t), before, "append-only: the past never changes");
    }

    #[test]
    fn delete_then_reinsert_same_tuple() {
        let mut s = TimestampedRollback::new(faculty_schema());
        let t = tuple(["Mike", "assistant"]);
        s.begin()
            .insert(t.clone())
            .commit(Chronon::new(10))
            .unwrap();
        s.begin()
            .delete(t.clone())
            .commit(Chronon::new(20))
            .unwrap();
        s.begin()
            .insert(t.clone())
            .commit(Chronon::new(30))
            .unwrap();
        assert!(!s.rollback(Chronon::new(25)).contains(&t));
        assert!(s.rollback(Chronon::new(35)).contains(&t));
        assert_eq!(s.stored_tuples(), 2, "two versions of the tuple");
    }
}
