//! Static relations (paper §4.1).
//!
//! "Conventional databases model the real world, as it changes
//! dynamically, by a snapshot at a particular point in time. … In this
//! process, past states of the database, and those of the real world, are
//! discarded and forgotten completely."
//!
//! [`StaticRelation`] is that snapshot: a set of tuples under a schema,
//! mutated destructively.  It is also the *result type* of a rollback
//! operation ("the result of a query on a static rollback database is a
//! pure static relation") and the building block of the snapshot-cube
//! stores.

use std::collections::HashSet;

use crate::error::{CoreError, CoreResult};
use crate::relation::StaticOp;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// A set of tuples under a schema, in first-insertion order.
#[derive(Clone, Debug)]
pub struct StaticRelation {
    schema: Schema,
    tuples: Vec<Tuple>,
    present: HashSet<Tuple>,
}

impl StaticRelation {
    /// Creates an empty relation.
    pub fn new(schema: Schema) -> StaticRelation {
        StaticRelation {
            schema,
            tuples: Vec::new(),
            present: HashSet::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples (the paper's "null
    /// relation").
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// True iff the tuple is present.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.present.contains(t)
    }

    /// Iterates tuples in first-insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Adds a tuple.  Errors on schema mismatch or duplicate (relations
    /// are sets).
    pub fn insert(&mut self, t: Tuple) -> CoreResult<()> {
        self.schema.check(&t)?;
        if !self.present.insert(t.clone()) {
            return Err(CoreError::Invalid(format!("duplicate tuple {t}")));
        }
        self.tuples.push(t);
        Ok(())
    }

    /// Removes a tuple.  Errors if absent.
    pub fn delete(&mut self, t: &Tuple) -> CoreResult<()> {
        if !self.present.remove(t) {
            return Err(CoreError::NoSuchRow(t.to_string()));
        }
        let idx = self
            .tuples
            .iter()
            .position(|u| u == t)
            .expect("present set and tuple list agree");
        self.tuples.remove(idx);
        Ok(())
    }

    /// Removes every tuple satisfying `pred`, returning how many were
    /// removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Tuple) -> bool) -> usize {
        let before = self.tuples.len();
        let present = &mut self.present;
        self.tuples.retain(|t| {
            if pred(t) {
                present.remove(t);
                false
            } else {
                true
            }
        });
        before - self.tuples.len()
    }

    /// Replaces `old` by `new` atomically.
    pub fn replace(&mut self, old: &Tuple, new: Tuple) -> CoreResult<()> {
        self.schema.check(&new)?;
        if !self.present.contains(old) {
            return Err(CoreError::NoSuchRow(old.to_string()));
        }
        if old != &new && self.present.contains(&new) {
            return Err(CoreError::Invalid(format!("duplicate tuple {new}")));
        }
        let idx = self
            .tuples
            .iter()
            .position(|u| u == old)
            .expect("present set and tuple list agree");
        self.present.remove(old);
        self.present.insert(new.clone());
        self.tuples[idx] = new;
        Ok(())
    }

    /// Applies a batch of static operations in order; on any error the
    /// relation is left unchanged.
    pub fn apply(&mut self, ops: &[StaticOp]) -> CoreResult<()> {
        let mut scratch = self.clone();
        for op in ops {
            match op {
                StaticOp::Insert(t) => scratch.insert(t.clone())?,
                StaticOp::Delete(t) => scratch.delete(t)?,
                StaticOp::Replace { old, new } => scratch.replace(old, new.clone())?,
            }
        }
        *self = scratch;
        Ok(())
    }

    /// Set equality, ignoring tuple order.
    pub fn set_eq(&self, other: &StaticRelation) -> bool {
        self.schema == other.schema && self.present == other.present
    }

    /// The tuples as a sorted vector (canonical order for comparisons and
    /// rendering).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v = self.tuples.clone();
        v.sort();
        v
    }
}

impl PartialEq for StaticRelation {
    /// Relations are sets: equality ignores insertion order.
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl Eq for StaticRelation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::faculty_schema;
    use crate::tuple::tuple;

    fn rel() -> StaticRelation {
        StaticRelation::new(faculty_schema())
    }

    #[test]
    fn figure_2_static_relation() {
        // An instance of a relation `faculty` at a certain moment.
        let mut r = rel();
        r.insert(tuple(["Merrie", "full"])).unwrap();
        r.insert(tuple(["Tom", "associate"])).unwrap();
        assert_eq!(r.len(), 2);
        // Quel: retrieve (f.rank) where f.name = "Merrie"  =>  full
        let ranks: Vec<_> = r
            .iter()
            .filter(|t| t.get(0).as_str() == Some("Merrie"))
            .map(|t| t.get(1).as_str().unwrap().to_string())
            .collect();
        assert_eq!(ranks, ["full"]);
    }

    #[test]
    fn set_semantics() {
        let mut r = rel();
        let t = tuple(["Tom", "associate"]);
        r.insert(t.clone()).unwrap();
        assert!(r.insert(t.clone()).is_err());
        assert!(r.contains(&t));
        r.delete(&t).unwrap();
        assert!(r.delete(&t).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn replace_is_atomic() {
        let mut r = rel();
        r.insert(tuple(["Merrie", "associate"])).unwrap();
        r.insert(tuple(["Merrie", "full"])).unwrap();
        // Replacing onto an existing tuple must fail and change nothing.
        let err = r.replace(&tuple(["Merrie", "associate"]), tuple(["Merrie", "full"]));
        assert!(err.is_err());
        assert_eq!(r.len(), 2);
        r.replace(
            &tuple(["Merrie", "associate"]),
            tuple(["Merrie", "emeritus"]),
        )
        .unwrap();
        assert!(r.contains(&tuple(["Merrie", "emeritus"])));
        assert!(!r.contains(&tuple(["Merrie", "associate"])));
    }

    #[test]
    fn apply_is_all_or_nothing() {
        let mut r = rel();
        r.insert(tuple(["Tom", "associate"])).unwrap();
        let bad = [
            StaticOp::Insert(tuple(["Mike", "assistant"])),
            StaticOp::Delete(tuple(["Nobody", "here"])),
        ];
        assert!(r.apply(&bad).is_err());
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&tuple(["Mike", "assistant"])));
        let good = [
            StaticOp::Insert(tuple(["Mike", "assistant"])),
            StaticOp::Replace {
                old: tuple(["Tom", "associate"]),
                new: tuple(["Tom", "full"]),
            },
        ];
        r.apply(&good).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&tuple(["Tom", "full"])));
    }

    #[test]
    fn delete_where_and_equality() {
        let mut a = rel();
        a.insert(tuple(["Merrie", "full"])).unwrap();
        a.insert(tuple(["Tom", "associate"])).unwrap();
        let mut b = rel();
        b.insert(tuple(["Tom", "associate"])).unwrap();
        b.insert(tuple(["Merrie", "full"])).unwrap();
        assert_eq!(a, b); // order-insensitive
        let n = a.delete_where(|t| t.get(1).as_str() == Some("associate"));
        assert_eq!(n, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn schema_enforced() {
        let mut r = rel();
        assert!(r
            .insert(Tuple::new(vec![crate::value::Value::Int(3)]))
            .is_err());
    }
}
