//! The four relation classes of the paper, as executable semantics.
//!
//! | class                | module        | time carried        | updates        |
//! |----------------------|---------------|---------------------|----------------|
//! | static (§4.1)        | [`static_rel`]| none                | destructive    |
//! | static rollback (§4.2)| [`rollback`] | transaction time    | append-only    |
//! | historical (§4.3)    | [`historical`]| valid time          | arbitrary      |
//! | temporal (§4.4)      | [`temporal`]  | both                | append-only    |
//!
//! The rollback and temporal classes each come in **two** implementations:
//!
//! * a *snapshot* ("cube") form that literally stores one complete state
//!   per transaction — the conceptual picture of the paper's Figures 3, 5
//!   and 7, which the paper notes is "impractical, due to excessive
//!   duplication"; and
//! * a *tuple-timestamped* form that appends `[start, end)` timestamps to
//!   each tuple — the practical representation of Figures 4, 6 and 8.
//!
//! The snapshot form is the specification; the timestamped form is the
//! implementation.  Their observational equivalence (equal `rollback`
//! results at every instant, for every transaction history) is asserted
//! by unit and property tests and is what makes the timestamped encodings
//! *correct*.

pub mod historical;
pub mod rollback;
pub mod static_rel;
pub mod temporal;

use std::fmt;

use crate::chronon::Chronon;
use crate::error::{CoreError, CoreResult};
use crate::period::Period;
use crate::schema::TemporalSignature;
use crate::tuple::Tuple;

/// The valid-time stamp of a tuple: a period for interval relations, a
/// single instant for event relations (paper Figure 9).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Validity {
    /// The tuple models a state holding over `[from, to)`.
    Interval(Period),
    /// The tuple models an event at a single chronon.
    Event(Chronon),
}

impl Validity {
    /// The validity as a period (events become one-chronon periods), so
    /// temporal predicates apply uniformly.
    pub fn period(self) -> Period {
        match self {
            Validity::Interval(p) => p,
            Validity::Event(c) => Period::instant(c),
        }
    }

    /// The signature this validity belongs to.
    pub fn signature(self) -> TemporalSignature {
        match self {
            Validity::Interval(_) => TemporalSignature::Interval,
            Validity::Event(_) => TemporalSignature::Event,
        }
    }

    /// True iff the stored information is valid at chronon `t`.
    pub fn valid_at(self, t: Chronon) -> bool {
        match self {
            Validity::Interval(p) => p.contains(t),
            Validity::Event(c) => c == t,
        }
    }

    /// Checks this validity against a relation signature.
    pub fn check_signature(self, expected: TemporalSignature) -> CoreResult<()> {
        if self.signature() == expected {
            Ok(())
        } else {
            Err(CoreError::SignatureMismatch {
                expected: match expected {
                    TemporalSignature::Interval => "interval",
                    TemporalSignature::Event => "event",
                },
                found: match self.signature() {
                    TemporalSignature::Interval => "interval",
                    TemporalSignature::Event => "event",
                },
            })
        }
    }
}

impl From<Period> for Validity {
    fn from(p: Period) -> Validity {
        Validity::Interval(p)
    }
}

impl From<Chronon> for Validity {
    fn from(c: Chronon) -> Validity {
        Validity::Event(c)
    }
}

impl fmt::Display for Validity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Validity::Interval(p) => fmt::Display::fmt(p, f),
            Validity::Event(c) => fmt::Display::fmt(c, f),
        }
    }
}

/// Identifies rows of a historical state for modification.
///
/// A selector matches rows whose explicit tuple equals `tuple` and — when
/// `validity` is given — whose validity equals it too.  Reference
/// semantics address rows by content, not by storage identity, so the
/// same operation stream drives every implementation identically.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RowSelector {
    /// The explicit attribute values the row must carry.
    pub tuple: Tuple,
    /// When given, the validity the row must carry.
    pub validity: Option<Validity>,
}

impl RowSelector {
    /// Selects rows with the given tuple (any validity).
    pub fn tuple(tuple: Tuple) -> RowSelector {
        RowSelector {
            tuple,
            validity: None,
        }
    }

    /// Selects rows with the given tuple and exact validity.
    pub fn exact(tuple: Tuple, validity: impl Into<Validity>) -> RowSelector {
        RowSelector {
            tuple,
            validity: Some(validity.into()),
        }
    }

    /// True iff a row matches this selector.
    pub fn matches(&self, tuple: &Tuple, validity: Validity) -> bool {
        &self.tuple == tuple && self.validity.is_none_or(|v| v == validity)
    }
}

/// A modification of a historical state.
///
/// These are the operations a historical DBMS supports directly and a
/// temporal DBMS records as transactions (paper §4.3–4.4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HistoricalOp {
    /// Record new information: `tuple` holds (or occurred) over
    /// `validity`.
    Insert {
        /// The explicit attribute values.
        tuple: Tuple,
        /// When the information is true in reality.
        validity: Validity,
    },
    /// Remove rows — either retracting an erroneous fact entirely or as
    /// half of a correction.
    Remove {
        /// Which rows to remove.
        selector: RowSelector,
    },
    /// Correct *when* a fact held: replace the validity of the selected
    /// rows (e.g. closing Merrie's `associate` period upon her promotion,
    /// Figure 8's transaction of 12/15/82).
    SetValidity {
        /// Which rows to re-stamp.
        selector: RowSelector,
        /// The corrected validity.
        validity: Validity,
    },
}

impl HistoricalOp {
    /// Convenience constructor for [`HistoricalOp::Insert`].
    pub fn insert(tuple: Tuple, validity: impl Into<Validity>) -> HistoricalOp {
        HistoricalOp::Insert {
            tuple,
            validity: validity.into(),
        }
    }

    /// Convenience constructor for [`HistoricalOp::Remove`].
    pub fn remove(selector: RowSelector) -> HistoricalOp {
        HistoricalOp::Remove { selector }
    }

    /// Convenience constructor for [`HistoricalOp::SetValidity`].
    pub fn set_validity(selector: RowSelector, validity: impl Into<Validity>) -> HistoricalOp {
        HistoricalOp::SetValidity {
            selector,
            validity: validity.into(),
        }
    }
}

/// A modification of a static state (used by static and rollback
/// relations, which know nothing of valid time).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StaticOp {
    /// Add a tuple (error if already present — relations are sets).
    Insert(Tuple),
    /// Remove a tuple (error if absent).
    Delete(Tuple),
    /// Replace `old` by `new` atomically.
    Replace {
        /// The tuple to remove.
        old: Tuple,
        /// The tuple to add.
        new: Tuple,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::tuple;

    #[test]
    fn validity_period_uniformity() {
        let e = Validity::Event(Chronon::new(5));
        assert_eq!(e.period(), Period::instant(Chronon::new(5)));
        assert!(e.valid_at(Chronon::new(5)));
        assert!(!e.valid_at(Chronon::new(6)));

        let i = Validity::Interval(Period::new(Chronon::new(1), Chronon::new(4)).unwrap());
        assert!(i.valid_at(Chronon::new(3)));
        assert!(!i.valid_at(Chronon::new(4)));
    }

    #[test]
    fn signature_checking() {
        let e = Validity::Event(Chronon::ZERO);
        assert!(e.check_signature(TemporalSignature::Event).is_ok());
        assert!(e.check_signature(TemporalSignature::Interval).is_err());
    }

    #[test]
    fn selector_matching() {
        let t = tuple(["Tom", "full"]);
        let v = Validity::Interval(Period::from_start(Chronon::new(9)));
        let any = RowSelector::tuple(t.clone());
        assert!(any.matches(&t, v));
        let exact = RowSelector::exact(t.clone(), Period::from_start(Chronon::new(9)));
        assert!(exact.matches(&t, v));
        let wrong = RowSelector::exact(t.clone(), Period::from_start(Chronon::new(8)));
        assert!(!wrong.matches(&t, v));
        assert!(!any.matches(&tuple(["Tom", "associate"]), v));
    }
}
