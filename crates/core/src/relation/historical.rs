//! Historical relations (paper §4.3).
//!
//! "Historical databases record a single historical state per relation,
//! storing the history as it is best known.  As errors are discovered,
//! they are corrected by modifying the database.  Previous states are not
//! retained…  Historical databases must represent valid time, the time
//! that the stored information models reality."
//!
//! A [`HistoricalRelation`] is therefore a *mutable* set of valid-time
//! stamped tuples: inserts record newly learned facts, removals retract
//! errors, and [`set_validity`] corrects *when* a fact held.  Unlike
//! rollback relations there is no memory of the corrections themselves —
//! that requires a temporal relation.
//!
//! [`set_validity`]: HistoricalRelation::set_validity

use crate::chronon::Chronon;
use crate::error::{CoreError, CoreResult};
use crate::period::Period;
use crate::relation::static_rel::StaticRelation;
use crate::relation::{HistoricalOp, RowSelector, Validity};
use crate::schema::{Schema, TemporalSignature};
use crate::tuple::Tuple;

/// A valid-time stamped row of a historical relation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct HistoricalRow {
    /// The explicit attribute values.
    pub tuple: Tuple,
    /// When the information is true in reality (Figure 6's `(from)`/`(to)`
    /// columns, or Figure 9's `(at)`).
    pub validity: Validity,
}

/// The single, correctable historical state of a relation.
#[derive(Clone, Debug)]
pub struct HistoricalRelation {
    schema: Schema,
    signature: TemporalSignature,
    rows: Vec<HistoricalRow>,
    /// Exact-row index for O(1) duplicate detection (rows are unique).
    present: std::collections::HashSet<HistoricalRow>,
}

impl HistoricalRelation {
    /// Creates an empty historical relation.
    pub fn new(schema: Schema, signature: TemporalSignature) -> HistoricalRelation {
        HistoricalRelation {
            schema,
            signature,
            rows: Vec::new(),
            present: std::collections::HashSet::new(),
        }
    }

    /// The relation's schema (explicit attributes only — valid time is
    /// tuple overhead, not a schema column).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Interval or event relation.
    pub fn signature(&self) -> TemporalSignature {
        self.signature
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows in insertion order.
    pub fn rows(&self) -> &[HistoricalRow] {
        &self.rows
    }

    /// Iterates `(tuple, validity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &HistoricalRow> {
        self.rows.iter()
    }

    /// Records new information.  Errors on schema or signature mismatch,
    /// or an exact duplicate row.
    pub fn insert(&mut self, tuple: Tuple, validity: impl Into<Validity>) -> CoreResult<()> {
        let validity = validity.into();
        self.schema.check(&tuple)?;
        validity.check_signature(self.signature)?;
        if let Validity::Interval(p) = validity {
            if p.is_empty() {
                return Err(CoreError::Invalid(format!(
                    "empty validity period {p} for tuple {tuple}"
                )));
            }
        }
        let row = HistoricalRow { tuple, validity };
        if !self.present.insert(row.clone()) {
            return Err(CoreError::Invalid(format!(
                "duplicate historical row {} valid {}",
                row.tuple, row.validity
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Retracts rows matching the selector, returning how many were
    /// removed.  Errors if none match (retracting nothing is almost
    /// always a bug in the caller).
    pub fn remove(&mut self, selector: &RowSelector) -> CoreResult<usize> {
        let before = self.rows.len();
        let present = &mut self.present;
        self.rows.retain(|r| {
            if selector.matches(&r.tuple, r.validity) {
                present.remove(r);
                false
            } else {
                true
            }
        });
        let removed = before - self.rows.len();
        if removed == 0 {
            return Err(CoreError::NoSuchRow(format!(
                "no row matches {:?}",
                selector.tuple.to_string()
            )));
        }
        Ok(removed)
    }

    /// Corrects the validity of the matching rows, returning how many
    /// were restamped.  Errors if none match, on signature mismatch, or
    /// if the correction would duplicate an existing row.
    pub fn set_validity(
        &mut self,
        selector: &RowSelector,
        validity: impl Into<Validity>,
    ) -> CoreResult<usize> {
        let validity = validity.into();
        validity.check_signature(self.signature)?;
        if let Validity::Interval(p) = validity {
            if p.is_empty() {
                return Err(CoreError::Invalid(format!("empty corrected period {p}")));
            }
        }
        let targets: Vec<usize> = self
            .rows
            .iter()
            .enumerate()
            .filter(|(_, r)| selector.matches(&r.tuple, r.validity))
            .map(|(i, _)| i)
            .collect();
        if targets.is_empty() {
            return Err(CoreError::NoSuchRow(format!(
                "no row matches {:?}",
                selector.tuple.to_string()
            )));
        }
        // Restamp through the exact-row index: drop the targets' old
        // keys, then claim the new ones, undoing on a clash so the
        // relation is unchanged on error.
        for &i in &targets {
            self.present.remove(&self.rows[i]);
        }
        for (n, &i) in targets.iter().enumerate() {
            let would_be = HistoricalRow {
                tuple: self.rows[i].tuple.clone(),
                validity,
            };
            if !self.present.insert(would_be) {
                // Undo: release the new keys claimed so far, restore the
                // old ones.
                for &j in &targets[..n] {
                    self.present.remove(&HistoricalRow {
                        tuple: self.rows[j].tuple.clone(),
                        validity,
                    });
                }
                for &j in &targets {
                    self.present.insert(self.rows[j].clone());
                }
                return Err(CoreError::Invalid(format!(
                    "correction would duplicate row {} valid {validity}",
                    self.rows[i].tuple
                )));
            }
        }
        for i in targets.iter() {
            self.rows[*i].validity = validity;
        }
        Ok(targets.len())
    }

    /// Applies a batch of historical operations; on any error the relation
    /// is left unchanged.
    pub fn apply(&mut self, ops: &[HistoricalOp]) -> CoreResult<()> {
        let mut scratch = self.clone();
        for op in ops {
            match op {
                HistoricalOp::Insert { tuple, validity } => {
                    scratch.insert(tuple.clone(), *validity)?;
                }
                HistoricalOp::Remove { selector } => {
                    scratch.remove(selector)?;
                }
                HistoricalOp::SetValidity { selector, validity } => {
                    scratch.set_validity(selector, *validity)?;
                }
            }
        }
        *self = scratch;
        Ok(())
    }

    /// The historical timeslice τ_t: the static relation of tuples valid
    /// at chronon `t`, *as currently best known*.
    pub fn valid_at(&self, t: Chronon) -> StaticRelation {
        let mut out = StaticRelation::new(self.schema.clone());
        for row in &self.rows {
            if row.validity.valid_at(t) && !out.contains(&row.tuple) {
                out.insert(row.tuple.clone())
                    .expect("schema-checked tuples re-insert cleanly");
            }
        }
        out
    }

    /// Rows whose validity period overlaps `p`.
    pub fn overlapping(&self, p: Period) -> impl Iterator<Item = &HistoricalRow> {
        self.rows
            .iter()
            .filter(move |r| r.validity.period().overlaps(p))
    }

    /// Canonical sorted copy of the rows (for order-insensitive
    /// comparison and rendering).
    pub fn sorted_rows(&self) -> Vec<HistoricalRow> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            (
                &a.tuple,
                a.validity.period().start(),
                a.validity.period().end(),
            )
                .cmp(&(
                    &b.tuple,
                    b.validity.period().start(),
                    b.validity.period().end(),
                ))
        });
        rows
    }
}

impl PartialEq for HistoricalRelation {
    /// Order-insensitive: two historical relations are equal when they
    /// hold the same set of rows.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.signature == other.signature
            && self.sorted_rows() == other.sorted_rows()
    }
}

impl Eq for HistoricalRelation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::date;
    use crate::schema::faculty_schema;
    use crate::tuple::tuple;

    /// Builds the paper's Figure 6 historical `faculty` relation.
    pub(crate) fn figure_6() -> HistoricalRelation {
        let mut r = HistoricalRelation::new(faculty_schema(), TemporalSignature::Interval);
        r.insert(
            tuple(["Merrie", "associate"]),
            Period::new(date("09/01/77").unwrap(), date("12/01/82").unwrap()).unwrap(),
        )
        .unwrap();
        r.insert(
            tuple(["Merrie", "full"]),
            Period::from_start(date("12/01/82").unwrap()),
        )
        .unwrap();
        r.insert(
            tuple(["Tom", "associate"]),
            Period::from_start(date("12/05/82").unwrap()),
        )
        .unwrap();
        r.insert(
            tuple(["Mike", "assistant"]),
            Period::new(date("01/01/83").unwrap(), date("03/01/84").unwrap()).unwrap(),
        )
        .unwrap();
        r
    }

    #[test]
    fn figure_6_timeslices() {
        let r = figure_6();
        assert_eq!(r.len(), 4);
        // On 12/03/82 Merrie is full (promoted 12/01) and Tom not yet hired.
        let s = r.valid_at(date("12/03/82").unwrap());
        assert!(s.contains(&tuple(["Merrie", "full"])));
        assert!(!s.contains(&tuple(["Tom", "associate"])));
        // Historical query: Merrie's rank two years before 12/82.
        let s = r.valid_at(date("12/01/80").unwrap());
        assert!(s.contains(&tuple(["Merrie", "associate"])));
        assert!(!s.contains(&tuple(["Merrie", "full"])));
        // After Mike left.
        let s = r.valid_at(date("03/01/84").unwrap());
        assert!(!s.contains(&tuple(["Mike", "assistant"])));
    }

    #[test]
    fn corrections_modify_in_place() {
        let mut r = figure_6();
        // Merrie's promotion is discovered to have been 11/01/82.
        r.set_validity(
            &RowSelector::exact(
                tuple(["Merrie", "full"]),
                Period::from_start(date("12/01/82").unwrap()),
            ),
            Period::from_start(date("11/01/82").unwrap()),
        )
        .unwrap();
        let s = r.valid_at(date("11/15/82").unwrap());
        assert!(s.contains(&tuple(["Merrie", "full"])));
        // No record remains of the old belief: the relation simply *is*
        // the corrected history.
        assert!(!r.rows().iter().any(|row| row.validity.period().start()
            == crate::timepoint::TimePoint::at(date("12/01/82").unwrap())));
    }

    #[test]
    fn remove_retracts_errors_completely() {
        let mut r = figure_6();
        let removed = r
            .remove(&RowSelector::tuple(tuple(["Tom", "associate"])))
            .unwrap();
        assert_eq!(removed, 1);
        assert!(r
            .remove(&RowSelector::tuple(tuple(["Tom", "associate"])))
            .is_err());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn duplicate_rows_rejected() {
        let mut r = figure_6();
        let err = r.insert(
            tuple(["Merrie", "full"]),
            Period::from_start(date("12/01/82").unwrap()),
        );
        assert!(err.is_err());
        // Same tuple with a different validity is fine (re-appointment).
        r.insert(
            tuple(["Mike", "assistant"]),
            Period::from_start(date("01/01/85").unwrap()),
        )
        .unwrap();
    }

    #[test]
    fn empty_periods_rejected() {
        let mut r = figure_6();
        let d = date("01/01/83").unwrap();
        assert!(r
            .insert(tuple(["X", "y"]), Period::new(d, d).unwrap())
            .is_err());
        assert!(r
            .set_validity(
                &RowSelector::tuple(tuple(["Tom", "associate"])),
                Period::new(d, d).unwrap(),
            )
            .is_err());
    }

    #[test]
    fn event_relations_take_instants() {
        let mut r = HistoricalRelation::new(faculty_schema(), TemporalSignature::Event);
        let d = date("12/11/82").unwrap();
        r.insert(tuple(["Merrie", "full"]), d).unwrap();
        assert!(r
            .insert(tuple(["Tom", "full"]), Period::from_start(d))
            .is_err());
        assert!(r.valid_at(d).contains(&tuple(["Merrie", "full"])));
        assert!(r.valid_at(d.succ()).is_empty());
    }

    #[test]
    fn apply_is_atomic() {
        let mut r = figure_6();
        let snapshot = r.clone();
        let bad = [
            HistoricalOp::remove(RowSelector::tuple(tuple(["Tom", "associate"]))),
            HistoricalOp::remove(RowSelector::tuple(tuple(["Nobody", "x"]))),
        ];
        assert!(r.apply(&bad).is_err());
        assert_eq!(r, snapshot);
    }

    #[test]
    fn equality_is_order_insensitive() {
        let a = figure_6();
        let mut b = HistoricalRelation::new(faculty_schema(), TemporalSignature::Interval);
        for row in a.sorted_rows().into_iter().rev() {
            b.insert(row.tuple, row.validity).unwrap();
        }
        assert_eq!(a, b);
    }

    #[test]
    fn overlapping_scan() {
        let r = figure_6();
        let q = Period::new(date("01/01/83").unwrap(), date("01/01/84").unwrap()).unwrap();
        let names: Vec<_> = r
            .overlapping(q)
            .map(|row| row.tuple.get(0).as_str().unwrap().to_string())
            .collect();
        assert!(names.contains(&"Merrie".to_string())); // full, open-ended
        assert!(names.contains(&"Tom".to_string()));
        assert!(names.contains(&"Mike".to_string()));
        assert_eq!(names.len(), 3);
    }
}
