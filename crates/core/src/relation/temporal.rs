//! Temporal (bitemporal) relations (paper §4.4).
//!
//! "A temporal relation may be thought of as a sequence of historical
//! states, each of which is a complete historical relation.  The rollback
//! operation on a temporal relation selects a particular historical
//! state, on which an historical query may be performed.  Each
//! transaction causes a new historical state to be created; hence,
//! temporal relations are append-only."
//!
//! As with rollback relations, two implementations share the
//! [`TemporalStore`] interface:
//!
//! * [`SnapshotTemporal`] — the conceptual form of Figure 7: one complete
//!   historical relation per transaction;
//! * [`BitemporalTable`] — the practical form of Figure 8: each tuple
//!   carries both a valid-time stamp and a transaction-time period.
//!
//! A temporal relation "makes it possible to view tuples valid at some
//! moment seen as of some other moment, completely capturing the history
//! of retroactive/postactive changes".

use crate::chronon::Chronon;
use crate::error::{CoreError, CoreResult};
use crate::period::Period;
use crate::relation::historical::HistoricalRelation;
use crate::relation::{HistoricalOp, RowSelector, Validity};
use crate::schema::{Schema, TemporalSignature};
use crate::timepoint::TimePoint;
use crate::tuple::Tuple;

/// Common interface of the two temporal-relation implementations.
pub trait TemporalStore {
    /// The relation's schema.
    fn schema(&self) -> &Schema;

    /// Interval or event relation.
    fn signature(&self) -> TemporalSignature;

    /// Commits a transaction of historical operations at transaction time
    /// `tx_time`, creating a new historical state.  Fails atomically on
    /// invalid operations or a non-advancing transaction time.
    fn commit(&mut self, tx_time: Chronon, ops: &[HistoricalOp]) -> CoreResult<()>;

    /// The rollback operation: the complete historical state as of
    /// transaction time `t` (the null relation before the first commit).
    fn rollback(&self, t: Chronon) -> HistoricalRelation;

    /// The most recent historical state — what a plain historical DBMS
    /// would hold.
    fn current(&self) -> HistoricalRelation;

    /// The transaction time of the latest commit, if any.
    fn last_commit(&self) -> Option<Chronon>;

    /// Number of committed transactions.
    fn transactions(&self) -> usize;

    /// Total rows physically stored (space metric of experiment E15).
    fn stored_tuples(&self) -> usize;

    /// Starts a transaction builder.
    fn begin(&mut self) -> TemporalTx<'_, Self>
    where
        Self: Sized,
    {
        TemporalTx {
            store: self,
            ops: Vec::new(),
        }
    }
}

/// A transaction being assembled against a temporal store.
#[must_use = "a transaction does nothing until committed"]
pub struct TemporalTx<'a, S: TemporalStore> {
    store: &'a mut S,
    ops: Vec<HistoricalOp>,
}

impl<S: TemporalStore> TemporalTx<'_, S> {
    /// Stages recording new information.
    pub fn insert(mut self, tuple: Tuple, validity: impl Into<Validity>) -> Self {
        self.ops.push(HistoricalOp::insert(tuple, validity));
        self
    }

    /// Stages retracting rows.
    pub fn remove(mut self, selector: RowSelector) -> Self {
        self.ops.push(HistoricalOp::remove(selector));
        self
    }

    /// Stages correcting a validity.
    pub fn set_validity(mut self, selector: RowSelector, validity: impl Into<Validity>) -> Self {
        self.ops
            .push(HistoricalOp::set_validity(selector, validity));
        self
    }

    /// Commits at `tx_time`.
    pub fn commit(self, tx_time: Chronon) -> CoreResult<()> {
        self.store.commit(tx_time, &self.ops)
    }
}

fn check_monotonic(last: Option<Chronon>, attempted: Chronon) -> CoreResult<()> {
    match last {
        Some(l) if attempted <= l => Err(CoreError::NonMonotonicCommit {
            last: l.to_string(),
            attempted: attempted.to_string(),
        }),
        _ => Ok(()),
    }
}

/// The conceptual form: a complete historical relation per transaction
/// (Figure 7's sequence of historical states).
#[derive(Clone, Debug)]
pub struct SnapshotTemporal {
    schema: Schema,
    signature: TemporalSignature,
    states: Vec<(Chronon, HistoricalRelation)>,
}

impl SnapshotTemporal {
    /// Creates an empty temporal relation.
    pub fn new(schema: Schema, signature: TemporalSignature) -> SnapshotTemporal {
        SnapshotTemporal {
            schema,
            signature,
            states: Vec::new(),
        }
    }

    /// The committed historical states, oldest first.
    pub fn states(&self) -> &[(Chronon, HistoricalRelation)] {
        &self.states
    }
}

impl TemporalStore for SnapshotTemporal {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn signature(&self) -> TemporalSignature {
        self.signature
    }

    fn commit(&mut self, tx_time: Chronon, ops: &[HistoricalOp]) -> CoreResult<()> {
        check_monotonic(self.last_commit(), tx_time)?;
        let mut next = self.current();
        next.apply(ops)?;
        self.states.push((tx_time, next));
        Ok(())
    }

    fn rollback(&self, t: Chronon) -> HistoricalRelation {
        self.states
            .iter()
            .rev()
            .find(|(commit, _)| *commit <= t)
            .map(|(_, state)| state.clone())
            .unwrap_or_else(|| HistoricalRelation::new(self.schema.clone(), self.signature))
    }

    fn current(&self) -> HistoricalRelation {
        self.states
            .last()
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| HistoricalRelation::new(self.schema.clone(), self.signature))
    }

    fn last_commit(&self) -> Option<Chronon> {
        self.states.last().map(|(c, _)| *c)
    }

    fn transactions(&self) -> usize {
        self.states.len()
    }

    fn stored_tuples(&self) -> usize {
        self.states.iter().map(|(_, s)| s.len()).sum()
    }
}

/// A bitemporal row: the tuple plus both timestamps (one row of the
/// paper's Figure 8).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitemporalRow {
    /// The explicit attribute values.
    pub tuple: Tuple,
    /// Valid time: when the information is true in reality.
    pub validity: Validity,
    /// Transaction time: when this version was in the database, end `∞`
    /// while current.
    pub tx: Period,
}

impl BitemporalRow {
    /// True iff the row belongs to the current historical state.
    pub fn is_current(&self) -> bool {
        self.tx.end() == TimePoint::PlusInfinity
    }
}

/// The practical form: valid-time and transaction-time stamps appended to
/// each tuple (Figure 8).
#[derive(Clone, Debug)]
pub struct BitemporalTable {
    schema: Schema,
    signature: TemporalSignature,
    rows: Vec<BitemporalRow>,
    /// Incrementally maintained mirror of the current historical state
    /// (the rows with open transaction periods).
    current: HistoricalRelation,
    last_commit: Option<Chronon>,
    transactions: usize,
}

impl BitemporalTable {
    /// Creates an empty temporal relation.
    pub fn new(schema: Schema, signature: TemporalSignature) -> BitemporalTable {
        BitemporalTable {
            current: HistoricalRelation::new(schema.clone(), signature),
            schema,
            signature,
            rows: Vec::new(),
            last_commit: None,
            transactions: 0,
        }
    }

    /// All physical rows in creation order (closed versions included).
    pub fn rows(&self) -> &[BitemporalRow] {
        &self.rows
    }

    /// Bitemporal point query: the tuples valid at `valid` as the
    /// database knew them at transaction time `as_of` — the full
    /// four-dimensional view of §4.4.
    pub fn valid_at_as_of(&self, valid: Chronon, as_of: Chronon) -> Vec<&BitemporalRow> {
        self.rows
            .iter()
            .filter(|r| r.tx.contains(as_of) && r.validity.valid_at(valid))
            .collect()
    }

    fn apply_rows(&mut self, tx_time: Chronon, ops: &[HistoricalOp]) {
        let t = TimePoint::at(tx_time);
        for op in ops {
            match op {
                HistoricalOp::Insert { tuple, validity } => {
                    self.rows.push(BitemporalRow {
                        tuple: tuple.clone(),
                        validity: *validity,
                        tx: Period::from_start(tx_time),
                    });
                }
                HistoricalOp::Remove { selector } => {
                    for row in self.rows.iter_mut() {
                        if row.is_current() && selector.matches(&row.tuple, row.validity) {
                            row.tx = Period::clamped(row.tx.start(), t);
                        }
                    }
                }
                HistoricalOp::SetValidity { selector, validity } => {
                    let mut corrected = Vec::new();
                    for row in self.rows.iter_mut() {
                        if row.is_current() && selector.matches(&row.tuple, row.validity) {
                            row.tx = Period::clamped(row.tx.start(), t);
                            corrected.push(row.tuple.clone());
                        }
                    }
                    for tuple in corrected {
                        self.rows.push(BitemporalRow {
                            tuple,
                            validity: *validity,
                            tx: Period::from_start(tx_time),
                        });
                    }
                }
            }
        }
    }
}

impl TemporalStore for BitemporalTable {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn signature(&self) -> TemporalSignature {
        self.signature
    }

    fn commit(&mut self, tx_time: Chronon, ops: &[HistoricalOp]) -> CoreResult<()> {
        check_monotonic(self.last_commit, tx_time)?;
        // Validate through the reference semantics: the ops must form a
        // legal transition of the current historical state.  This is what
        // guarantees the timestamped encoding stays observationally
        // equivalent to the snapshot form.
        let mut state = self.current.clone();
        state.apply(ops)?;
        self.apply_rows(tx_time, ops);
        self.current = state;
        self.last_commit = Some(tx_time);
        self.transactions += 1;
        Ok(())
    }

    fn rollback(&self, t: Chronon) -> HistoricalRelation {
        let mut out = HistoricalRelation::new(self.schema.clone(), self.signature);
        for row in &self.rows {
            if row.tx.contains(t) {
                out.insert(row.tuple.clone(), row.validity)
                    .expect("any past state of a valid store is itself valid");
            }
        }
        out
    }

    fn current(&self) -> HistoricalRelation {
        self.current.clone()
    }

    fn last_commit(&self) -> Option<Chronon> {
        self.last_commit
    }

    fn transactions(&self) -> usize {
        self.transactions
    }

    fn stored_tuples(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::date;
    use crate::schema::faculty_schema;
    use crate::tuple::tuple;

    fn d(s: &str) -> Chronon {
        date(s).unwrap()
    }

    fn p(from: &str, to: &str) -> Period {
        Period::new(d(from), d(to)).unwrap()
    }

    /// Drives a temporal store through the six transactions that produce
    /// the paper's Figure 8.
    pub(crate) fn figure_8_history<S: TemporalStore>(s: &mut S) {
        // Merrie hired, entered postactively.
        s.begin()
            .insert(
                tuple(["Merrie", "associate"]),
                Period::from_start(d("09/01/77")),
            )
            .commit(d("08/25/77"))
            .unwrap();
        // Tom entered as full…
        s.begin()
            .insert(tuple(["Tom", "full"]), Period::from_start(d("12/05/82")))
            .commit(d("12/01/82"))
            .unwrap();
        // …corrected to associate.
        s.begin()
            .remove(RowSelector::tuple(tuple(["Tom", "full"])))
            .insert(
                tuple(["Tom", "associate"]),
                Period::from_start(d("12/05/82")),
            )
            .commit(d("12/07/82"))
            .unwrap();
        // Merrie's promotion recorded retroactively.
        s.begin()
            .set_validity(
                RowSelector::tuple(tuple(["Merrie", "associate"])),
                p("09/01/77", "12/01/82"),
            )
            .insert(tuple(["Merrie", "full"]), Period::from_start(d("12/01/82")))
            .commit(d("12/15/82"))
            .unwrap();
        // Mike hired.
        s.begin()
            .insert(
                tuple(["Mike", "assistant"]),
                Period::from_start(d("01/01/83")),
            )
            .commit(d("01/10/83"))
            .unwrap();
        // Mike leaves effective 03/01/84, recorded 02/25/84.
        s.begin()
            .set_validity(
                RowSelector::tuple(tuple(["Mike", "assistant"])),
                p("01/01/83", "03/01/84"),
            )
            .commit(d("02/25/84"))
            .unwrap();
    }

    #[test]
    fn figure_8_rows_exact() {
        let mut s = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
        figure_8_history(&mut s);
        let expect = [
            (
                "Merrie",
                "associate",
                "09/01/77",
                None,
                "08/25/77",
                Some("12/15/82"),
            ),
            (
                "Merrie",
                "associate",
                "09/01/77",
                Some("12/01/82"),
                "12/15/82",
                None,
            ),
            ("Merrie", "full", "12/01/82", None, "12/15/82", None),
            (
                "Tom",
                "full",
                "12/05/82",
                None,
                "12/01/82",
                Some("12/07/82"),
            ),
            ("Tom", "associate", "12/05/82", None, "12/07/82", None),
            (
                "Mike",
                "assistant",
                "01/01/83",
                None,
                "01/10/83",
                Some("02/25/84"),
            ),
            (
                "Mike",
                "assistant",
                "01/01/83",
                Some("03/01/84"),
                "02/25/84",
                None,
            ),
        ];
        assert_eq!(
            s.rows().len(),
            expect.len(),
            "exactly the 7 rows of Figure 8"
        );
        for (name, rank, vf, vt, ts, te) in expect {
            let validity = Validity::Interval(match vt {
                Some(vt) => p(vf, vt),
                None => Period::from_start(d(vf)),
            });
            let tx = match te {
                Some(te) => p(ts, te),
                None => Period::from_start(d(ts)),
            };
            assert!(
                s.rows().iter().any(|r| r.tuple == tuple([name, rank])
                    && r.validity == validity
                    && r.tx == tx),
                "missing Figure 8 row: {name} {rank} valid {validity} tx {tx}"
            );
        }
    }

    #[test]
    fn bitemporal_query_of_section_4_4() {
        // Merrie's rank when Tom arrived (12/05/82), as of 12/10/82 vs
        // 12/20/82 — the paper's flagship query pair.
        let mut s = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
        figure_8_history(&mut s);
        let when_tom_arrived = d("12/05/82");
        let as_of_early: Vec<_> = s
            .valid_at_as_of(when_tom_arrived, d("12/10/82"))
            .into_iter()
            .filter(|r| r.tuple.get(0).as_str() == Some("Merrie"))
            .collect();
        assert_eq!(as_of_early.len(), 1);
        let row = as_of_early[0];
        assert_eq!(row.tuple.get(1).as_str(), Some("associate"));
        assert_eq!(row.validity.period(), Period::from_start(d("09/01/77")));
        assert_eq!(row.tx, p("08/25/77", "12/15/82"));

        let as_of_late: Vec<_> = s
            .valid_at_as_of(when_tom_arrived, d("12/20/82"))
            .into_iter()
            .filter(|r| r.tuple.get(0).as_str() == Some("Merrie"))
            .collect();
        assert_eq!(as_of_late.len(), 1);
        assert_eq!(as_of_late[0].tuple.get(1).as_str(), Some("full"));
    }

    #[test]
    fn snapshot_and_bitemporal_agree_everywhere() {
        let mut a = SnapshotTemporal::new(faculty_schema(), TemporalSignature::Interval);
        let mut b = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
        figure_8_history(&mut a);
        figure_8_history(&mut b);
        let lo = d("01/01/77").ticks();
        let hi = d("12/31/84").ticks();
        for t in (lo..=hi).step_by(5) {
            let t = Chronon::new(t);
            assert_eq!(a.rollback(t), b.rollback(t), "divergence at {t}");
        }
        assert_eq!(a.current(), b.current());
    }

    #[test]
    fn rollback_yields_historical_states() {
        let mut s = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
        figure_8_history(&mut s);
        // As of 12/10/82 the database believed Merrie had been associate
        // since 09/01/77 with no end, and Tom was (correctly) associate.
        let h = s.rollback(d("12/10/82"));
        assert_eq!(h.len(), 2);
        let merrie: Vec<_> = h
            .rows()
            .iter()
            .filter(|r| r.tuple.get(0).as_str() == Some("Merrie"))
            .collect();
        assert_eq!(merrie.len(), 1);
        assert_eq!(merrie[0].tuple.get(1).as_str(), Some("associate"));
        assert_eq!(
            merrie[0].validity.period(),
            Period::from_start(d("09/01/77"))
        );
        // The database was inconsistent with reality 12/01–12/15: the
        // historical relation would already show `full`, the rollback
        // state does not.
    }

    #[test]
    fn current_matches_figure_6() {
        let mut s = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
        figure_8_history(&mut s);
        let h = s.current();
        assert_eq!(h.len(), 4);
        let rows = h.sorted_rows();
        let as_strings: Vec<String> = rows
            .iter()
            .map(|r| format!("{} {} {}", r.tuple.get(0), r.tuple.get(1), r.validity))
            .collect();
        assert_eq!(
            as_strings,
            [
                "Merrie associate [09/01/77, 12/01/82)",
                "Merrie full [12/01/82, ∞)",
                "Mike assistant [01/01/83, 03/01/84)",
                "Tom associate [12/05/82, ∞)",
            ]
        );
    }

    #[test]
    fn append_only_and_atomicity() {
        let mut s = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
        figure_8_history(&mut s);
        let frozen = s.rollback(d("12/10/82"));
        // Non-monotonic commit rejected.
        let err = s
            .begin()
            .insert(tuple(["X", "y"]), Period::from_start(d("01/01/83")))
            .commit(d("01/01/80"));
        assert!(matches!(err, Err(CoreError::NonMonotonicCommit { .. })));
        // Failing transaction leaves rows untouched.
        let before = s.rows().to_vec();
        let err = s
            .begin()
            .remove(RowSelector::tuple(tuple(["Ghost", "prof"])))
            .commit(d("06/01/84"));
        assert!(err.is_err());
        assert_eq!(s.rows(), &before[..]);
        // Later valid commits never disturb past rollback states.
        s.begin()
            .insert(tuple(["New", "prof"]), Period::from_start(d("07/01/84")))
            .commit(d("06/15/84"))
            .unwrap();
        assert_eq!(s.rollback(d("12/10/82")), frozen);
    }

    #[test]
    fn storage_metrics_show_duplication() {
        let mut a = SnapshotTemporal::new(faculty_schema(), TemporalSignature::Interval);
        let mut b = BitemporalTable::new(faculty_schema(), TemporalSignature::Interval);
        figure_8_history(&mut a);
        figure_8_history(&mut b);
        // Historical states: 1, 2, 2, 3, 4, 4 rows.
        assert_eq!(a.stored_tuples(), 1 + 2 + 2 + 3 + 4 + 4);
        assert_eq!(b.stored_tuples(), 7);
        assert_eq!(a.transactions(), 6);
        assert_eq!(b.transactions(), 6);
    }

    #[test]
    fn event_temporal_relation_like_figure_9() {
        use crate::schema::Attribute;
        use crate::value::AttrType;
        // promotion (name, rank, effective) — `effective` is user-defined
        // time: an ordinary date attribute the engine never interprets.
        let schema = Schema::new(vec![
            Attribute::new("name", AttrType::Str),
            Attribute::new("rank", AttrType::Str),
            Attribute::new("effective", AttrType::Date),
        ])
        .unwrap();
        let mut s = BitemporalTable::new(schema, TemporalSignature::Event);
        let merrie_assoc = Tuple::new(vec![
            "Merrie".into(),
            "associate".into(),
            crate::value::Value::Date(d("09/01/77")),
        ]);
        s.begin()
            .insert(merrie_assoc.clone(), d("08/25/77"))
            .commit(d("08/25/77"))
            .unwrap();
        let h = s.current();
        assert!(h.valid_at(d("08/25/77")).contains(&merrie_assoc));
        assert!(h.valid_at(d("08/26/77")).is_empty());
        // Interval validity is rejected on an event relation.
        let err = s
            .begin()
            .insert(merrie_assoc, Period::from_start(d("12/11/82")))
            .commit(d("12/15/82"));
        assert!(matches!(err, Err(CoreError::SignatureMismatch { .. })));
    }
}
