//! Plain-text table rendering.
//!
//! The paper's figures are tables; the `figures` binary and several
//! integration tests render ChronosDB state in the same tabular shape.
//! [`TextTable`] is a minimal, dependency-free column-aligned renderer
//! with support for the paper's double-bar separator between explicit
//! attributes and implicit temporal columns ("the double vertical bars
//! separate the non-temporal domains from the DBMS-maintained temporal
//! domains").

use std::fmt::Write as _;

/// A column-aligned plain-text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Column index before which the double bar `||` is drawn.
    double_bar_before: Option<usize>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            double_bar_before: None,
        }
    }

    /// Draws the paper's double bar before column `idx` (separating
    /// explicit attributes from implicit temporal columns).
    #[must_use]
    pub fn with_double_bar_before(mut self, idx: usize) -> TextTable {
        self.double_bar_before = Some(idx);
        self
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with one space of padding, a header rule, and
    /// `|` column separators (`||` at the double bar).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| display_width(h)).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(display_width(cell));
            }
        }
        let sep_for = |i: usize| -> &'static str {
            if self.double_bar_before == Some(i) {
                " || "
            } else if i == 0 {
                ""
            } else {
                " | "
            }
        };
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(sep_for(i));
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                out.push_str(cell);
                for _ in 0..w.saturating_sub(display_width(cell)) {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        // Header rule.
        let mut rule = String::new();
        for (i, w) in widths.iter().enumerate() {
            rule.push_str(match sep_for(i) {
                " || " => "-++-",
                " | " => "-+-",
                _ => "",
            });
            for _ in 0..*w {
                rule.push('-');
            }
        }
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Character count treating the multi-byte `∞` and `✓` glyphs as width 1.
fn display_width(s: &str) -> usize {
    s.chars().count()
}

/// Renders a check-mark cell the way the paper's Figures 11 and 13 do.
pub fn check(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "rank"]);
        t.push_row(["Merrie", "full"]);
        t.push_row(["Tom", "associate"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-' || c == '+'));
        assert!(lines[2].starts_with("Merrie | full"));
        assert!(lines[3].starts_with("Tom"));
        // Columns align: the separator offset is identical in all rows.
        let bar = lines[2].find('|').unwrap();
        assert_eq!(lines[3].find('|').unwrap(), bar);
    }

    #[test]
    fn double_bar_between_attribute_groups() {
        let mut t =
            TextTable::new(["name", "rank", "tx start", "tx end"]).with_double_bar_before(2);
        t.push_row(["Merrie", "full", "12/15/82", "∞"]);
        let s = t.render();
        assert!(s.lines().nth(2).unwrap().contains("|| 12/15/82"));
        assert!(s.lines().nth(1).unwrap().contains("++"));
    }

    #[test]
    fn infinity_counts_one_column() {
        assert_eq!(display_width("∞"), 1);
        assert_eq!(display_width("12/15/82"), 8);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.push_row(["x"]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.lines().nth(2).unwrap().starts_with("x"));
    }

    #[test]
    fn check_marks() {
        assert_eq!(check(true), "✓");
        assert_eq!(check(false), "");
    }
}
