//! The indivisible unit of the time axis.
//!
//! The paper treats time as a discrete axis of indivisible instants; the
//! temporal-database literature later settled on the name *chronon* for
//! such an instant.  ChronosDB uses a single signed 64-bit chronon axis for
//! every kind of time — transaction time, valid time and user-defined time
//! all take values from the same domain, exactly as in the paper where all
//! three are calendar dates such as `12/01/82`.
//!
//! The interpretation of one chronon tick is fixed by the [`calendar`]
//! module (one tick = one day, with tick 0 = 1970-01-01); nothing in this
//! module depends on that choice.
//!
//! [`calendar`]: crate::calendar

use std::fmt;
use std::ops::{Add, Sub};

/// A discrete instant on the global time axis.
///
/// `Chronon` is a transparent wrapper over `i64` ticks.  It is `Copy`,
/// totally ordered, and supports saturating tick arithmetic (the axis is
/// bounded, and [`TimePoint`](crate::TimePoint) supplies the `±∞`
/// sentinels the paper's figures use, so overflow must not wrap).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Chronon(i64);

impl Chronon {
    /// The smallest representable chronon.
    pub const MIN: Chronon = Chronon(i64::MIN);
    /// The largest representable chronon.
    pub const MAX: Chronon = Chronon(i64::MAX);
    /// The axis origin (1970-01-01 under the day calendar).
    pub const ZERO: Chronon = Chronon(0);

    /// Creates a chronon from raw ticks.
    #[inline]
    pub const fn new(ticks: i64) -> Self {
        Chronon(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// The immediately following chronon (saturating at the axis end).
    #[inline]
    #[must_use]
    pub const fn succ(self) -> Self {
        Chronon(self.0.saturating_add(1))
    }

    /// The immediately preceding chronon (saturating at the axis start).
    #[inline]
    #[must_use]
    pub const fn pred(self) -> Self {
        Chronon(self.0.saturating_sub(1))
    }

    /// Signed distance in ticks from `other` to `self`.
    #[inline]
    pub const fn since(self, other: Chronon) -> i64 {
        self.0.saturating_sub(other.0)
    }

    /// The earlier of two chronons.
    #[inline]
    #[must_use]
    pub fn min_of(self, other: Chronon) -> Chronon {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two chronons.
    #[inline]
    #[must_use]
    pub fn max_of(self, other: Chronon) -> Chronon {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<i64> for Chronon {
    type Output = Chronon;

    #[inline]
    fn add(self, rhs: i64) -> Chronon {
        Chronon(self.0.saturating_add(rhs))
    }
}

impl Sub<i64> for Chronon {
    type Output = Chronon;

    #[inline]
    fn sub(self, rhs: i64) -> Chronon {
        Chronon(self.0.saturating_sub(rhs))
    }
}

impl Sub<Chronon> for Chronon {
    type Output = i64;

    #[inline]
    fn sub(self, rhs: Chronon) -> i64 {
        self.since(rhs)
    }
}

impl From<i64> for Chronon {
    #[inline]
    fn from(ticks: i64) -> Self {
        Chronon(ticks)
    }
}

impl fmt::Debug for Chronon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chronon({})", self.0)
    }
}

impl fmt::Display for Chronon {
    /// Displays through the day calendar when the value is within calendar
    /// range, falling back to raw ticks.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::calendar::Date::from_chronon(*self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = Chronon::new(10);
        let b = Chronon::new(12);
        assert!(a < b);
        assert_eq!(a + 2, b);
        assert_eq!(b - 2, a);
        assert_eq!(b - a, 2);
        assert_eq!(a.succ(), Chronon::new(11));
        assert_eq!(a.pred(), Chronon::new(9));
        assert_eq!(a.min_of(b), a);
        assert_eq!(a.max_of(b), b);
    }

    #[test]
    fn saturation_at_bounds() {
        assert_eq!(Chronon::MAX.succ(), Chronon::MAX);
        assert_eq!(Chronon::MIN.pred(), Chronon::MIN);
        assert_eq!(Chronon::MAX + 5, Chronon::MAX);
        assert_eq!(Chronon::MIN - 5, Chronon::MIN);
    }

    #[test]
    fn distance_is_signed() {
        let a = Chronon::new(10);
        let b = Chronon::new(3);
        assert_eq!(a.since(b), 7);
        assert_eq!(b.since(a), -7);
    }
}
